//! Causal per-session lifecycle tracing: a bounded, lock-free, sharded
//! event ring answering "what happened to *this* session?".
//!
//! Where the flight recorder ([`crate::flight`]) keeps the last N fleet
//! ops as one global diagnostic ring, the trace ring records structured
//! **lifecycle events** — registered, admit attempt/outcome, WAIT
//! scheduling and dispatch, hop commits, swap conflicts, evacuation,
//! departure, recovery installs — each stamped with a **global
//! monotonic sequence** (total order across the fleet) plus a
//! **per-session chain** counter (strictly increasing along one
//! session's events), so the causal path of any session is
//! reconstructible from a dump even after concurrent interleaving.
//!
//! The ring is sharded by session so concurrent emitters on different
//! sessions land on different slot regions, and every slot uses the
//! same torn-tolerant publication protocol as the flight recorder: the
//! sequence word is zeroed, the data words are written relaxed, and the
//! sequence is published *last* with `Release` — a reader that observes
//! it also observes the data; a torn slot decodes to an unknown kind or
//! a zero seq and is skipped at dump time.
//!
//! Dumps export as Chrome-trace / Perfetto JSON
//! ([`TraceRing::chrome_json`]): one track (`tid`) per session, instant
//! events carrying `seq`/`chain`/`payload` args, loadable directly in
//! `ui.perfetto.dev` or `chrome://tracing`.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// A per-session lifecycle event kind.
///
/// The `payload` word of a [`TraceEvent`] is kind-specific; the
/// encoding is documented per variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceKind {
    /// The conference joined the universe (`Fleet::register_session`).
    /// `payload` = number of users in the session.
    Registered = 1,
    /// An admission search ran (`payload` = deepest engine tier
    /// reached: 0 enumeration, 1 greedy+repair, 2 ranked fallback,
    /// 3 legacy ranked walk). Emitted just before its outcome event so
    /// the per-session chain reads attempt → `Admitted`/`Refused`.
    AdmitAttempt = 2,
    /// The session went live. `payload` = FNV-1a hash of the committed
    /// placement (user/task → agent pairs), so two admissions landing
    /// identical placements are recognizable across restarts.
    Admitted = 3,
    /// The admission was refused. `payload` = stage: 0 user-fit,
    /// 1 task-fit, 2 global check, 3 no capacity, 4 delay bound,
    /// 5 already live.
    Refused = 4,
    /// A WAIT countdown was armed. `payload` = virtual-clock deadline
    /// in µs.
    WaitScheduled = 5,
    /// The scheduler popped the timer and dispatched the hop.
    /// `payload` = the deadline (µs) that fired.
    WakeupDispatched = 6,
    /// A HOP migrated the session. `payload` = `f64::to_bits` of the
    /// per-session potential delta (`delta_phi`) the move realized.
    HopCommitted = 7,
    /// A HOP lost its ledger `try_swap` race. `payload` = the capacity
    /// shard the conflict was attributed to.
    SwapConflict = 8,
    /// The session was force-moved off a failed agent.
    /// `payload` = the agent it evacuated onto.
    Evacuated = 9,
    /// The session departed and released capacity. `payload` = 0.
    Departed = 10,
    /// Recovery replayed the journaled placement — installed, never
    /// re-searched. `payload` = the journal sequence replayed.
    RecoveryInstalled = 11,
    /// The session entered (or re-entered) the re-admission queue.
    /// `payload` = virtual due time (µs) of the next attempt.
    ReadmitQueued = 12,
    /// A queued session was admitted back. `payload` = the attempt
    /// index that succeeded.
    ReadmitAdmitted = 13,
    /// A queued session was dropped (queue overflow or retry
    /// exhaustion). `payload` = attempts spent (0 for overflow).
    ReadmitDropped = 14,
    /// The write-ahead journal degraded: a storage fault exhausted its
    /// fsync retries and appends now buffer in memory. Fleet-scoped —
    /// `session` is `u32::MAX`. `payload` = sync retries burned so far.
    DurabilityDegraded = 15,
}

impl TraceKind {
    /// Stable snake-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Registered => "registered",
            TraceKind::AdmitAttempt => "admit_attempt",
            TraceKind::Admitted => "admitted",
            TraceKind::Refused => "refused",
            TraceKind::WaitScheduled => "wait_scheduled",
            TraceKind::WakeupDispatched => "wakeup_dispatched",
            TraceKind::HopCommitted => "hop_committed",
            TraceKind::SwapConflict => "swap_conflict",
            TraceKind::Evacuated => "evacuated",
            TraceKind::Departed => "departed",
            TraceKind::RecoveryInstalled => "recovery_installed",
            TraceKind::ReadmitQueued => "readmit_queued",
            TraceKind::ReadmitAdmitted => "readmit_admitted",
            TraceKind::ReadmitDropped => "readmit_dropped",
            TraceKind::DurabilityDegraded => "durability_degraded",
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => TraceKind::Registered,
            2 => TraceKind::AdmitAttempt,
            3 => TraceKind::Admitted,
            4 => TraceKind::Refused,
            5 => TraceKind::WaitScheduled,
            6 => TraceKind::WakeupDispatched,
            7 => TraceKind::HopCommitted,
            8 => TraceKind::SwapConflict,
            9 => TraceKind::Evacuated,
            10 => TraceKind::Departed,
            11 => TraceKind::RecoveryInstalled,
            12 => TraceKind::ReadmitQueued,
            13 => TraceKind::ReadmitAdmitted,
            14 => TraceKind::ReadmitDropped,
            15 => TraceKind::DurabilityDegraded,
            _ => return None,
        })
    }
}

/// One decoded lifecycle event.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Global monotonic sequence (1-based; gaps mean overwritten slots).
    pub seq: u64,
    /// Microseconds since the observability plane was created.
    pub t_us: u64,
    /// Event kind.
    pub kind: TraceKind,
    /// The session the event belongs to.
    pub session: u32,
    /// Per-session chain ordinal: strictly increasing along one
    /// session's events (allocated from a striped counter, so values
    /// are monotone per session but not dense).
    pub chain: u32,
    /// Kind-specific payload (see [`TraceKind`]).
    pub payload: u64,
}

impl TraceEvent {
    /// One JSON object for raw dumps.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\": {}, \"t_us\": {}, \"event\": \"{}\", \"session\": {}, \"chain\": {}, \"payload\": {}}}",
            self.seq,
            self.t_us,
            self.kind.name(),
            self.session,
            self.chain,
            self.payload
        )
    }

    /// One Chrome-trace instant event (`ph: "i"`), one track per
    /// session (`tid` = session index).
    pub fn to_chrome_json(&self) -> String {
        format!(
            "{{\"name\": \"{}\", \"cat\": \"session\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {}, \"pid\": 1, \"tid\": {}, \"args\": {{\"seq\": {}, \"chain\": {}, \"payload\": {}}}}}",
            self.kind.name(),
            self.t_us,
            self.session,
            self.seq,
            self.chain,
            self.payload
        )
    }
}

struct Slot {
    // 0 = empty; otherwise the global 1-based sequence, stored *last*
    // with Release (same protocol as the flight recorder).
    seq: AtomicU64,
    // t_us << 8 | kind
    time_kind: AtomicU64,
    // session << 32 | chain
    ids: AtomicU64,
    payload: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Self {
            seq: AtomicU64::new(0),
            time_kind: AtomicU64::new(0),
            ids: AtomicU64::new(0),
            payload: AtomicU64::new(0),
        }
    }
}

struct Shard {
    slots: Vec<Slot>,
    /// `slots.len() - 1` (power-of-two capacity → mask, no division).
    mask: u64,
    cursor: AtomicU64,
}

/// How many striped per-session chain counters a ring keeps. Sessions
/// map onto stripes by index mask; a stripe shared between sessions
/// still hands each of them strictly increasing chain values (the
/// counter only grows), which is all causal reconstruction needs.
const CHAIN_STRIPES: usize = 1024;

/// The sharded lifecycle event ring. See module docs for the
/// concurrency model and export formats.
pub struct TraceRing {
    shards: Vec<Shard>,
    shard_mask: u64,
    next_seq: AtomicU64,
    chains: Vec<AtomicU32>,
}

impl TraceRing {
    /// A ring holding roughly the last `capacity` events, spread over
    /// `shards` session-sharded regions (both rounded up to powers of
    /// two; minimum one slot per shard).
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard = (capacity.max(1) / shards).max(1).next_power_of_two();
        let mut v = Vec::with_capacity(shards);
        for _ in 0..shards {
            let mut slots = Vec::with_capacity(per_shard);
            slots.resize_with(per_shard, Slot::empty);
            v.push(Shard {
                slots,
                mask: per_shard as u64 - 1,
                cursor: AtomicU64::new(0),
            });
        }
        let mut chains = Vec::with_capacity(CHAIN_STRIPES);
        chains.resize_with(CHAIN_STRIPES, || AtomicU32::new(0));
        Self {
            shards: v,
            shard_mask: shards as u64 - 1,
            next_seq: AtomicU64::new(0),
            chains,
        }
    }

    /// Total slots across all shards (the bound).
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.slots.len()).sum()
    }

    /// Record one lifecycle event. Lock-free: two `fetch_add`s (global
    /// seq + chain stripe) and four stores on the session's shard.
    ///
    /// Emitters racing on the *same* session (possible only in the
    /// narrow window after the fleet's per-session lock drops) may
    /// publish chain values out of seq order; the ring is diagnostic
    /// and dumps sort by seq, so a rare inversion is visible, not
    /// corrupting. Under the fleet's per-session serialization both
    /// counters are monotone along a session's chain.
    #[inline]
    pub fn record(&self, t_us: u64, kind: TraceKind, session: u32, payload: u64) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let chain = self.chains[(session as usize) & (CHAIN_STRIPES - 1)]
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_add(1);
        let shard = &self.shards[(session as u64 & self.shard_mask) as usize];
        let idx = (shard.cursor.fetch_add(1, Ordering::Relaxed) & shard.mask) as usize;
        let slot = &shard.slots[idx];
        slot.seq.store(0, Ordering::Relaxed);
        slot.time_kind
            .store((t_us << 8) | kind as u64, Ordering::Relaxed);
        slot.ids
            .store(((session as u64) << 32) | chain as u64, Ordering::Relaxed);
        slot.payload.store(payload, Ordering::Relaxed);
        slot.seq.store(seq, Ordering::Release);
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn total(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Best-effort decoded snapshot across all shards, sorted by global
    /// sequence (oldest first), torn slots skipped.
    pub fn dump(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.capacity());
        for shard in &self.shards {
            for slot in &shard.slots {
                let seq = slot.seq.load(Ordering::Acquire);
                if seq == 0 {
                    continue;
                }
                let tk = slot.time_kind.load(Ordering::Relaxed);
                let ids = slot.ids.load(Ordering::Relaxed);
                let payload = slot.payload.load(Ordering::Relaxed);
                let Some(kind) = TraceKind::from_u8((tk & 0xFF) as u8) else {
                    continue; // torn slot — skip
                };
                out.push(TraceEvent {
                    seq,
                    t_us: tk >> 8,
                    kind,
                    session: (ids >> 32) as u32,
                    chain: (ids & 0xFFFF_FFFF) as u32,
                    payload,
                });
            }
        }
        out.sort_by_key(|e| e.seq);
        out.dedup_by_key(|e| e.seq);
        out
    }

    /// The dump as a raw JSON array.
    pub fn dump_json(&self) -> String {
        let events: Vec<String> = self.dump().iter().map(TraceEvent::to_json).collect();
        format!("[{}]", events.join(", "))
    }

    /// The dump as a Chrome-trace / Perfetto JSON document: one
    /// instant-event track per session, loadable in `ui.perfetto.dev`.
    pub fn chrome_json(&self) -> String {
        let events: Vec<String> = self.dump().iter().map(TraceEvent::to_chrome_json).collect();
        format!(
            "{{\"displayTimeUnit\": \"ms\", \"traceEvents\": [{}]}}",
            events.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_seq_sorted() {
        let ring = TraceRing::new(4, 32);
        for i in 0..500u32 {
            ring.record(i as u64, TraceKind::HopCommitted, i % 16, i as u64);
        }
        let events = ring.dump();
        assert!(events.len() <= ring.capacity());
        assert_eq!(ring.total(), 500);
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }

    #[test]
    fn per_session_chain_is_strictly_increasing() {
        let ring = TraceRing::new(2, 256);
        for i in 0..100u64 {
            ring.record(i, TraceKind::WaitScheduled, 7, i);
            ring.record(i, TraceKind::WakeupDispatched, 9, i);
        }
        let events = ring.dump();
        for sid in [7u32, 9u32] {
            let chains: Vec<u32> = events
                .iter()
                .filter(|e| e.session == sid)
                .map(|e| e.chain)
                .collect();
            assert!(!chains.is_empty());
            for w in chains.windows(2) {
                assert!(w[0] < w[1], "session {sid} chain not monotone: {chains:?}");
            }
        }
    }

    #[test]
    fn payload_and_ids_round_trip() {
        let ring = TraceRing::new(1, 8);
        let phi = f64::to_bits(-3.25);
        ring.record(42, TraceKind::HopCommitted, 0xDEAD, phi);
        let e = ring.dump()[0];
        assert_eq!(e.t_us, 42);
        assert_eq!(e.session, 0xDEAD);
        assert_eq!(e.chain, 1);
        assert_eq!(f64::from_bits(e.payload), -3.25);
        assert_eq!(e.kind, TraceKind::HopCommitted);
    }

    #[test]
    fn chrome_export_has_one_track_per_session() {
        let ring = TraceRing::new(2, 64);
        ring.record(1, TraceKind::Registered, 3, 5);
        ring.record(2, TraceKind::Admitted, 3, 99);
        ring.record(3, TraceKind::Registered, 4, 2);
        let json = ring.chrome_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"tid\": 3"));
        assert!(json.contains("\"tid\": 4"));
        assert!(json.contains("\"name\": \"admitted\""));
        assert!(json.contains("\"ph\": \"i\""));
    }

    #[test]
    fn concurrent_records_stay_bounded_and_ordered() {
        let ring = std::sync::Arc::new(TraceRing::new(4, 64));
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let ring = ring.clone();
                s.spawn(move || {
                    for i in 0..1000u32 {
                        ring.record(i as u64, TraceKind::HopCommitted, t * 100 + (i % 3), 0);
                    }
                });
            }
        });
        assert_eq!(ring.total(), 4000);
        let events = ring.dump();
        assert!(events.len() <= ring.capacity());
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }
}
