//! A bounded, lock-free flight recorder: the last N fleet operations.
//!
//! Every fleet op (admit, reject, depart, fail, restore, hop, stay,
//! register, checkpoint, recover-replay) stores one fixed-size event
//! into a ring of atomic slots — a `fetch_add` for the sequence number
//! plus three plain stores, no locks, so hot paths pay nanoseconds.
//! Reads are best-effort: a slot being overwritten concurrently can
//! surface a torn event, which the dump tolerates (events are sorted
//! and de-duplicated by sequence; the recorder is diagnostic, never
//! authoritative — the journal owns the serialization order).

use std::sync::atomic::{AtomicU64, Ordering};

/// What kind of fleet operation an event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum OpKind {
    /// A session was admitted (`a` = session, `b` = engine tier).
    Admit = 1,
    /// An admission was refused (`a` = session).
    Reject = 2,
    /// A session departed (`a` = session).
    Depart = 3,
    /// An agent failed (`a` = agent, `b` = sessions evacuated).
    FailAgent = 4,
    /// An agent came back (`a` = agent).
    RestoreAgent = 5,
    /// A HOP migrated a session (`a` = session, `b` = old agent).
    Hop = 6,
    /// A HOP stayed put / lost its swap race (`a` = session).
    Stay = 7,
    /// A new conference joined the universe online (`a` = session).
    RegisterSession = 8,
    /// A snapshot checkpoint was taken.
    Checkpoint = 9,
    /// Recovery replayed a journal record (`a` = low bits of seq).
    Recover = 10,
}

impl OpKind {
    /// Stable lower-case name used in post-mortem JSON.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Admit => "admit",
            OpKind::Reject => "reject",
            OpKind::Depart => "depart",
            OpKind::FailAgent => "fail_agent",
            OpKind::RestoreAgent => "restore_agent",
            OpKind::Hop => "hop",
            OpKind::Stay => "stay",
            OpKind::RegisterSession => "register_session",
            OpKind::Checkpoint => "checkpoint",
            OpKind::Recover => "recover",
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => OpKind::Admit,
            2 => OpKind::Reject,
            3 => OpKind::Depart,
            4 => OpKind::FailAgent,
            5 => OpKind::RestoreAgent,
            6 => OpKind::Hop,
            7 => OpKind::Stay,
            8 => OpKind::RegisterSession,
            9 => OpKind::Checkpoint,
            10 => OpKind::Recover,
            _ => return None,
        })
    }
}

/// One decoded flight event.
#[derive(Clone, Copy, Debug)]
pub struct FlightEvent {
    /// Global op sequence number (1-based; gaps mean overwritten slots).
    pub seq: u64,
    /// Microseconds since the observability plane was created.
    pub t_us: u64,
    /// Operation kind.
    pub kind: OpKind,
    /// First payload word (usually a session or agent index).
    pub a: u32,
    /// Second payload word (kind-specific).
    pub b: u32,
}

impl FlightEvent {
    /// One JSON object line for post-mortem dumps.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\": {}, \"t_us\": {}, \"op\": \"{}\", \"a\": {}, \"b\": {}}}",
            self.seq,
            self.t_us,
            self.kind.name(),
            self.a,
            self.b
        )
    }
}

struct Slot {
    // 0 = empty; otherwise the 1-based sequence number, stored *last*
    // with Release so a reader that sees it also sees the data words.
    seq: AtomicU64,
    // t_us << 8 | kind
    time_kind: AtomicU64,
    // a << 32 | b
    payload: AtomicU64,
}

/// The bounded ring itself. See module docs for the concurrency model.
pub struct FlightRecorder {
    slots: Vec<Slot>,
    /// `slots.len() - 1`; the capacity is a power of two so the ring
    /// index is a mask, not a division (this runs on every fleet op).
    mask: u64,
    next: AtomicU64,
}

impl FlightRecorder {
    /// A recorder holding the last `capacity` events (rounded up to the
    /// next power of two, minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1).next_power_of_two();
        let mut slots = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            slots.push(Slot {
                seq: AtomicU64::new(0),
                time_kind: AtomicU64::new(0),
                payload: AtomicU64::new(0),
            });
        }
        Self {
            slots,
            mask: capacity as u64 - 1,
            next: AtomicU64::new(0),
        }
    }

    /// Pre-invalidate the slot the next `record` will (probably) write.
    ///
    /// The ring cycles through ~100 cachelines, so by the time an op
    /// wraps back to a slot its line has been evicted and the `record`
    /// stores stall on an exclusive-ownership miss. Calling this at the
    /// *start* of a long op claims the line early — the miss resolves
    /// in the background while the op runs, and the closing `record`
    /// hits L1. It is the same invalidating store `record` opens with,
    /// just hoisted; under concurrency it may zero a slot another
    /// thread claims in the meantime, which drops one stale event from
    /// a best-effort diagnostic ring (see the module docs).
    #[inline]
    pub fn warm_next(&self) {
        let idx = ((self.next.load(Ordering::Relaxed) + 1) & self.mask) as usize;
        self.slots[idx].seq.store(0, Ordering::Relaxed);
    }

    /// Record one event. Lock-free: one `fetch_add` + three stores.
    #[inline]
    pub fn record(&self, t_us: u64, kind: OpKind, a: u32, b: u32) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed) + 1;
        let slot = &self.slots[(seq & self.mask) as usize];
        // Invalidate, write data, then publish the new seq with Release.
        slot.seq.store(0, Ordering::Relaxed);
        slot.time_kind
            .store((t_us << 8) | kind as u64, Ordering::Relaxed);
        slot.payload
            .store(((a as u64) << 32) | b as u64, Ordering::Relaxed);
        slot.seq.store(seq, Ordering::Release);
    }

    /// Total ops ever recorded (including overwritten ones).
    pub fn total(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Best-effort decoded snapshot of the ring, oldest first.
    pub fn dump(&self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == 0 {
                continue;
            }
            let tk = slot.time_kind.load(Ordering::Relaxed);
            let pl = slot.payload.load(Ordering::Relaxed);
            let Some(kind) = OpKind::from_u8((tk & 0xFF) as u8) else {
                continue; // torn slot — skip
            };
            out.push(FlightEvent {
                seq,
                t_us: tk >> 8,
                kind,
                a: (pl >> 32) as u32,
                b: (pl & 0xFFFF_FFFF) as u32,
            });
        }
        out.sort_by_key(|e| e.seq);
        out.dedup_by_key(|e| e.seq);
        out
    }

    /// The dump as a JSON array.
    pub fn dump_json(&self) -> String {
        let events: Vec<String> = self.dump().iter().map(FlightEvent::to_json).collect();
        format!("[{}]", events.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_only_the_last_n() {
        let fr = FlightRecorder::new(8);
        for i in 0..20u32 {
            fr.record(i as u64, OpKind::Hop, i, 0);
        }
        let events = fr.dump();
        assert_eq!(events.len(), 8);
        assert_eq!(events.first().unwrap().seq, 13);
        assert_eq!(events.last().unwrap().seq, 20);
        assert_eq!(fr.total(), 20);
        for e in &events {
            assert_eq!(e.kind, OpKind::Hop);
            assert_eq!(e.a as u64 + 1, e.seq);
        }
    }

    #[test]
    fn payload_words_round_trip() {
        let fr = FlightRecorder::new(4);
        fr.record(123_456, OpKind::Admit, 0xDEAD, 0xBEEF);
        let e = fr.dump()[0];
        assert_eq!(e.t_us, 123_456);
        assert_eq!(e.a, 0xDEAD);
        assert_eq!(e.b, 0xBEEF);
        assert_eq!(e.kind, OpKind::Admit);
        assert!(e.to_json().contains("\"op\": \"admit\""));
    }

    #[test]
    fn concurrent_records_never_panic_and_stay_bounded() {
        let fr = std::sync::Arc::new(FlightRecorder::new(32));
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let fr = fr.clone();
                s.spawn(move || {
                    for i in 0..1000u32 {
                        fr.record(i as u64, OpKind::Stay, t, i);
                    }
                });
            }
        });
        assert_eq!(fr.total(), 4000);
        let events = fr.dump();
        assert!(events.len() <= 32);
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }
}
