//! Shared fixtures for the crate's unit tests.

use crate::UapProblem;
use vc_cost::CostModel;
use vc_model::{AgentSpec, DelayMatrices, InstanceBuilder, Matrix, ReprLadder};

/// Two agents A (speed 1.0), B (speed 2.0); `D_AB = 40`;
/// `H = [[10, 25], [30, 5]]`. One session: u0 (720p up, wants 360p),
/// u1 (360p up, wants 360p). Exactly one task: (u0→u1, 360p).
pub fn two_agent_problem() -> UapProblem {
    let ladder = ReprLadder::standard_four();
    let r360 = ladder.by_name("360p").unwrap().id();
    let r720 = ladder.by_name("720p").unwrap().id();
    let mut b = InstanceBuilder::new(ladder);
    b.add_agent(AgentSpec::builder("a").speed_factor(1.0).build());
    b.add_agent(AgentSpec::builder("b").speed_factor(2.0).build());
    let s = b.add_session();
    b.add_user(s, r720, r360);
    b.add_user(s, r360, r360);
    let d = Matrix::from_rows(2, 2, vec![0.0, 40.0, 40.0, 0.0]).unwrap();
    let h = Matrix::from_rows(2, 2, vec![10.0, 25.0, 30.0, 5.0]).unwrap();
    b.delays(DelayMatrices::new(d, h).unwrap());
    UapProblem::new(b.build().unwrap(), CostModel::paper_default())
}

/// Three agents A, B, C (all speed 1.0 except B = 2.0);
/// `D`: A–B 40, A–C 30, B–C 20; same session shape as
/// [`two_agent_problem`].
pub fn three_agent_problem() -> UapProblem {
    let ladder = ReprLadder::standard_four();
    let r360 = ladder.by_name("360p").unwrap().id();
    let r720 = ladder.by_name("720p").unwrap().id();
    let mut b = InstanceBuilder::new(ladder);
    b.add_agent(AgentSpec::builder("a").speed_factor(1.0).build());
    b.add_agent(AgentSpec::builder("b").speed_factor(2.0).build());
    b.add_agent(AgentSpec::builder("c").speed_factor(1.0).build());
    let s = b.add_session();
    b.add_user(s, r720, r360);
    b.add_user(s, r360, r360);
    let d = Matrix::from_rows(
        3,
        3,
        vec![
            0.0, 40.0, 30.0, //
            40.0, 0.0, 20.0, //
            30.0, 20.0, 0.0,
        ],
    )
    .unwrap();
    let h = Matrix::from_rows(3, 2, vec![10.0, 25.0, 30.0, 5.0, 50.0, 50.0]).unwrap();
    b.delays(DelayMatrices::new(d, h).unwrap());
    UapProblem::new(b.build().unwrap(), CostModel::paper_default())
}

/// Alias used by modules that only need "some valid small problem".
pub fn small_problem() -> UapProblem {
    two_agent_problem()
}

/// Two sessions over three agents, with capacity limits tight enough that
/// some assignments are infeasible — exercises the constraint machinery.
pub fn capacity_limited_problem() -> UapProblem {
    let ladder = ReprLadder::standard_four();
    let r360 = ladder.by_name("360p").unwrap().id();
    let r720 = ladder.by_name("720p").unwrap().id();
    let mut b = InstanceBuilder::new(ladder);
    b.add_agent(
        AgentSpec::builder("a")
            .upload_mbps(30.0)
            .download_mbps(30.0)
            .transcode_slots(2)
            .build(),
    );
    b.add_agent(
        AgentSpec::builder("b")
            .upload_mbps(12.0)
            .download_mbps(12.0)
            .transcode_slots(1)
            .speed_factor(1.5)
            .build(),
    );
    b.add_agent(
        AgentSpec::builder("c")
            .upload_mbps(8.0)
            .download_mbps(8.0)
            .transcode_slots(0)
            .speed_factor(2.0)
            .build(),
    );
    let s0 = b.add_session();
    b.add_user(s0, r720, r360);
    b.add_user(s0, r360, r360);
    b.add_user(s0, r720, r720);
    let s1 = b.add_session();
    b.add_user(s1, r720, r720);
    b.add_user(s1, r720, r360);
    b.symmetric_delays(
        |l, k| 20.0 + 10.0 * ((l as f64) - (k as f64)).abs(),
        |l, u| 8.0 + 6.0 * ((l + u) % 3) as f64,
    );
    UapProblem::new(b.build().unwrap(), CostModel::paper_default())
}
