//! The optimizable problem: instance + derived task table + cost model.

use crate::TaskTable;
use serde::{Deserialize, Serialize};
use vc_cost::CostModel;
use vc_model::{AgentDef, AgentId, Instance, ModelError, SessionDef, SessionId, UserId};

/// A complete UAP problem: the conferencing instance, the transcoding
/// tasks derived from its `θ` matrix, and the cost model defining the
/// objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UapProblem {
    instance: Instance,
    tasks: TaskTable,
    cost: CostModel,
    /// Per-user total demanded downstream bandwidth (Mbps) —
    /// `Σ_v κ(r^d_{uv})` over the user's participants. Assignment-
    /// independent, so it is computed once here instead of inside every
    /// candidate evaluation of the hop hot path.
    demanded_mbps: Vec<f64>,
}

impl UapProblem {
    /// Builds the problem from an instance and cost model (derives the
    /// task table).
    pub fn new(instance: Instance, cost: CostModel) -> Self {
        let tasks = TaskTable::build(&instance);
        let demanded_mbps = Self::compute_demanded(&instance);
        Self {
            instance,
            tasks,
            cost,
            demanded_mbps,
        }
    }

    /// Same summation order as the evaluation loop it replaces, so the
    /// cached value is bitwise identical to the inline sum.
    fn compute_demanded(instance: &Instance) -> Vec<f64> {
        instance
            .user_ids()
            .map(|u| {
                instance
                    .participants(u)
                    .map(|v| instance.kappa(instance.user(u).downstream_from(v)))
                    .sum()
            })
            .collect()
    }

    /// `Σ_v κ(r^d_{uv})`: the total last-mile downstream bandwidth user
    /// `u` demands (Mbps), independent of the assignment.
    pub fn demanded_mbps(&self, u: UserId) -> f64 {
        self.demanded_mbps[u.index()]
    }

    /// Registers a never-before-seen conference online (open-world
    /// growth): extends the instance, derives the new session's
    /// transcoding tasks, and caches its users' demanded bandwidth — all
    /// append-only, so the problem equals one built over the grown
    /// instance up front (task ids and cached `f64`s included).
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from
    /// [`Instance::register_session`], and refuses with
    /// [`ModelError::LateJoinExtension`] if the instance carries a late
    /// joiner (`Instance::register_user`) in a session whose tasks were
    /// already derived — extension would silently miss the new user's
    /// flows. The problem is unchanged on error.
    pub fn register_session(&mut self, def: &SessionDef) -> Result<SessionId, ModelError> {
        // Guard first: the instance must not be mutated if extension is
        // unsound, so the all-or-nothing contract holds. (The scan runs
        // once — `extend_unchecked` skips the re-check.)
        self.tasks.check_extension(&self.instance)?;
        let s = self.instance.register_session(def)?;
        self.tasks.extend_unchecked(&self.instance);
        // Same summation order as `compute_demanded` for the new tail.
        let instance = &self.instance;
        self.demanded_mbps
            .extend(instance.session(s).users().iter().map(|&u| {
                instance
                    .participants(u)
                    .map(|v| instance.kappa(instance.user(u).downstream_from(v)))
                    .sum::<f64>()
            }));
        Ok(s)
    }

    /// Registers a never-before-seen agent online (elastic capacity):
    /// extends the instance's agent pool and delay matrices. The task
    /// table and cached demands are agent-independent, so they are
    /// untouched — the grown problem equals one built over the grown
    /// instance up front.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from [`Instance::register_agent`]; the
    /// problem is unchanged on error.
    pub fn register_agent(&mut self, def: &AgentDef) -> Result<AgentId, ModelError> {
        self.instance.register_agent(def)
    }

    /// The underlying conferencing instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The transcoding task table.
    pub fn tasks(&self) -> &TaskTable {
        &self.tasks
    }

    /// The cost model (shapes of `F`, `g_l`, `h_l` and the α weights).
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Returns a copy with a different cost model (the assignment space is
    /// unchanged, so derived tables are reused).
    pub fn with_cost(&self, cost: CostModel) -> Self {
        Self {
            instance: self.instance.clone(),
            tasks: self.tasks.clone(),
            cost,
            demanded_mbps: self.demanded_mbps.clone(),
        }
    }

    /// Dimensions of the decision space: `(users, tasks)`. The number of
    /// assignments is `L^(U + θ_sum)`, the paper's `O(L^{U+θ_sum})`.
    pub fn decision_dims(&self) -> (usize, usize) {
        (self.instance.num_users(), self.tasks.len())
    }

    /// `log |F|` upper bound used in the optimality-gap expressions
    /// (Eqs. 10/12): `(U + θ_sum) · log L`.
    pub fn log_state_space(&self) -> f64 {
        let (u, t) = self.decision_dims();
        ((u + t) as f64) * (self.instance.num_agents() as f64).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::small_problem;
    use vc_cost::ObjectiveWeights;

    #[test]
    fn derives_task_table() {
        let p = small_problem();
        assert_eq!(p.tasks().len(), p.instance().theta_sum());
    }

    #[test]
    fn log_state_space_matches_formula() {
        let p = small_problem();
        let (u, t) = p.decision_dims();
        let expected = ((u + t) as f64) * (p.instance().num_agents() as f64).ln();
        assert!((p.log_state_space() - expected).abs() < 1e-12);
    }

    #[test]
    fn with_cost_changes_only_cost() {
        let p = small_problem();
        let q =
            p.with_cost(CostModel::paper_default().with_weights(ObjectiveWeights::delay_only()));
        assert_eq!(p.tasks(), q.tasks());
        assert_eq!(q.cost().weights.alpha_traffic(), 0.0);
    }
}
