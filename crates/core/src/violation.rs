//! Constraint violations: which of (5)–(8) an assignment breaks, and where.

use std::fmt;
use vc_model::{AgentId, SessionId};

/// A violated UAP constraint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Violation {
    /// Constraint (5): an agent's download capacity is exceeded.
    Download {
        /// The overloaded agent.
        agent: AgentId,
        /// Offered load in Mbps.
        load_mbps: f64,
        /// Capacity `d_l` in Mbps.
        capacity_mbps: f64,
    },
    /// Constraint (6): an agent's upload capacity is exceeded.
    Upload {
        /// The overloaded agent.
        agent: AgentId,
        /// Offered load in Mbps.
        load_mbps: f64,
        /// Capacity `u_l` in Mbps.
        capacity_mbps: f64,
    },
    /// Constraint (7): an agent's transcoding capacity is exceeded.
    Transcode {
        /// The overloaded agent.
        agent: AgentId,
        /// Occupied transcoding units.
        units: u32,
        /// Capacity `t_l` in units.
        capacity: u32,
    },
    /// Constraint (8): a session contains a flow exceeding `Dmax`.
    Delay {
        /// The violating session.
        session: SessionId,
        /// Worst flow delay in the session, ms.
        delay_ms: f64,
        /// The bound `Dmax` in ms.
        bound_ms: f64,
    },
    /// An agent marked unavailable (failed / drained) still carries users
    /// or transcoding tasks.
    Unavailable {
        /// The unavailable agent.
        agent: AgentId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Download {
                agent,
                load_mbps,
                capacity_mbps,
            } => write!(
                f,
                "download capacity exceeded at {agent}: {load_mbps:.2} > {capacity_mbps:.2} Mbps"
            ),
            Violation::Upload {
                agent,
                load_mbps,
                capacity_mbps,
            } => write!(
                f,
                "upload capacity exceeded at {agent}: {load_mbps:.2} > {capacity_mbps:.2} Mbps"
            ),
            Violation::Transcode {
                agent,
                units,
                capacity,
            } => write!(
                f,
                "transcoding capacity exceeded at {agent}: {units} > {capacity} units"
            ),
            Violation::Delay {
                session,
                delay_ms,
                bound_ms,
            } => write!(
                f,
                "delay bound exceeded in {session}: {delay_ms:.1} > {bound_ms:.1} ms"
            ),
            Violation::Unavailable { agent } => {
                write!(f, "unavailable agent {agent} still carries load")
            }
        }
    }
}

impl std::error::Error for Violation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_constraint() {
        let v = Violation::Download {
            agent: AgentId::new(2),
            load_mbps: 120.5,
            capacity_mbps: 100.0,
        };
        let s = v.to_string();
        assert!(s.contains("download"));
        assert!(s.contains("a2"));
        let v = Violation::Delay {
            session: SessionId::new(1),
            delay_ms: 450.0,
            bound_ms: 400.0,
        };
        assert!(v.to_string().contains("s1"));
    }

    #[test]
    fn violation_is_send_sync_error() {
        fn check<T: std::error::Error + Send + Sync>() {}
        check::<Violation>();
    }
}
