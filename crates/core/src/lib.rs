//! UAP — the User-to-agent Assignment Problem (Sec. III of the paper).
//!
//! This crate turns a [`vc_model::Instance`] into an optimizable problem:
//!
//! * [`TaskTable`] enumerates the transcoding tasks implied by the
//!   transcoding matrix `θ` (one per directed flow `u→v` whose upstream
//!   and demanded representations differ);
//! * [`Assignment`] holds the decision variables — `λ_lu` as a
//!   user→agent map and `γ_lruv` as a task→agent map;
//! * [`evaluate::SessionLoad`] computes, per session, the exact traffic
//!   accounting `μ_klu` of the paper's capacity constraints (5)–(6), the
//!   transcoding occupancy `ν_lru` of (7), the end-to-end flow delays
//!   `d_uv` of (8), and the local objective
//!   `Φ_s = α1·F(d_s) + α2·G(x_s) + α3·H(y_s)`;
//! * [`SystemState`] maintains the global picture incrementally: apply a
//!   single-decision change and only the affected session is re-evaluated,
//!   with global capacity checks against cached per-agent totals;
//! * [`neighborhood`] enumerates the feasible single-decision-change moves
//!   that both Alg. 1 (Markov hopping) and the local-search baselines use.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use vc_core::{Assignment, SystemState, UapProblem};
//! use vc_cost::CostModel;
//!
//! let instance = vc_net_free_example();
//! let problem = Arc::new(UapProblem::new(instance, CostModel::paper_default()));
//! // Assign everyone to agent 0, tasks to agent 0.
//! let assignment = Assignment::all_to_agent(&problem, 0u32.into());
//! let state = SystemState::new(problem, assignment);
//! assert!(state.objective() > 0.0);
//!
//! # use vc_model::{AgentSpec, Instance, InstanceBuilder, ReprLadder};
//! # fn vc_net_free_example() -> Instance {
//! #     let ladder = ReprLadder::standard_four();
//! #     let hi = ladder.highest();
//! #     let lo = ladder.lowest();
//! #     let mut b = InstanceBuilder::new(ladder);
//! #     b.add_agent(AgentSpec::builder("a").build());
//! #     b.add_agent(AgentSpec::builder("b").build());
//! #     let s = b.add_session();
//! #     b.add_user(s, hi, lo);
//! #     b.add_user(s, lo, lo);
//! #     b.symmetric_delays(|_, _| 30.0, |l, u| 10.0 + (l as f64) * 5.0 + (u as f64));
//! #     b.build().unwrap()
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
pub mod evaluate;
pub mod neighborhood;
mod problem;
pub mod report;
mod state;
mod tasks;
#[cfg(test)]
pub(crate) mod test_fixtures;
mod violation;

pub use assignment::{Assignment, Decision};
pub use evaluate::{AssignmentView, EvalScratch, OverlayView, SessionLoad};
pub use problem::UapProblem;
pub use report::SystemReport;
pub use state::{AgentTotals, SystemState, CAPACITY_EPS};
pub use tasks::{TaskId, TaskTable, TranscodeTask};
pub use violation::Violation;
