//! Incrementally-maintained global system state.
//!
//! [`SystemState`] caches one [`SessionLoad`] per session plus per-agent
//! load totals. Because a [`Decision`] touches exactly one session, a
//! candidate move re-evaluates only that session and checks global
//! capacities against `totals − old_load + new_load` — the same
//! information Alg. 1's HOP step fetches as "the updated list of residual
//! capacities of agents".

use crate::evaluate::{evaluate_session, EvalScratch, OverlayView, SessionLoad};
use crate::{Assignment, Decision, UapProblem, Violation};
use std::sync::{Arc, Mutex};
use vc_model::{AgentId, SessionId};

/// Aggregate per-agent loads across all *active* sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentTotals {
    /// Download load per agent (Mbps), constraint (5) LHS.
    pub download: Vec<f64>,
    /// Upload load per agent (Mbps), constraint (6) LHS.
    pub upload: Vec<f64>,
    /// Transcoding units per agent, constraint (7) LHS.
    pub transcode: Vec<u32>,
}

impl AgentTotals {
    /// All-zero totals over `num_agents` agents.
    pub fn zero(num_agents: usize) -> Self {
        Self {
            download: vec![0.0; num_agents],
            upload: vec![0.0; num_agents],
            transcode: vec![0; num_agents],
        }
    }

    /// Adds one session's load — sparse, touching only the agents the
    /// load touches.
    pub fn add(&mut self, load: &SessionLoad) {
        for &a in &load.touched {
            let l = a as usize;
            self.download[l] += load.download[l];
            self.upload[l] += load.upload[l];
            self.transcode[l] += load.transcode_units[l];
        }
    }

    /// Removes one session's load (the exact inverse of [`add`](Self::add)).
    pub fn remove(&mut self, load: &SessionLoad) {
        for &a in &load.touched {
            let l = a as usize;
            self.download[l] -= load.download[l];
            self.upload[l] -= load.upload[l];
            self.transcode[l] -= load.transcode_units[l];
        }
    }
}

/// The global state of the conferencing system under one assignment:
/// cached per-session loads, per-agent totals, and the set of active
/// sessions.
#[derive(Debug)]
pub struct SystemState {
    problem: Arc<UapProblem>,
    assignment: Assignment,
    active: Vec<bool>,
    loads: Vec<SessionLoad>,
    totals: AgentTotals,
    /// Per-agent availability: failed or drained agents accept no new
    /// users/tasks and are reported as violations while still loaded.
    available: Vec<bool>,
    /// Internal evaluation scratch so the convenience paths
    /// ([`candidate`](Self::candidate), [`try_apply`](Self::try_apply))
    /// stay clone-free; hot loops pass their own scratch to
    /// [`candidate_into`](Self::candidate_into) instead.
    scratch: Mutex<EvalScratch>,
}

impl Clone for SystemState {
    fn clone(&self) -> Self {
        Self {
            problem: self.problem.clone(),
            assignment: self.assignment.clone(),
            active: self.active.clone(),
            loads: self.loads.clone(),
            totals: self.totals.clone(),
            available: self.available.clone(),
            scratch: Mutex::new(EvalScratch::new()),
        }
    }
}

/// Numerical slack for capacity comparisons, guarding against float drift
/// in the incrementally-maintained totals. Shared with the orchestrator's
/// ledger and hop feasibility checks so every layer accepts and refuses
/// the same moves.
pub const CAPACITY_EPS: f64 = 1e-6;

impl SystemState {
    /// Creates a state with **all** sessions active.
    pub fn new(problem: Arc<UapProblem>, assignment: Assignment) -> Self {
        let n = problem.instance().num_sessions();
        Self::with_active(problem, assignment, vec![true; n])
    }

    /// Creates a state with an explicit active-session mask (dynamic
    /// scenarios start some sessions later).
    ///
    /// # Panics
    ///
    /// Panics if `active.len()` differs from the session count.
    pub fn with_active(
        problem: Arc<UapProblem>,
        assignment: Assignment,
        active: Vec<bool>,
    ) -> Self {
        assert_eq!(
            active.len(),
            problem.instance().num_sessions(),
            "active mask must cover all sessions"
        );
        let nl = problem.instance().num_agents();
        let mut loads = Vec::with_capacity(active.len());
        let mut totals = AgentTotals::zero(nl);
        let mut scratch = EvalScratch::new();
        for s in problem.instance().session_ids() {
            if active[s.index()] {
                let load = scratch.evaluate(&problem, &assignment, s).clone();
                totals.add(&load);
                loads.push(load);
            } else {
                loads.push(SessionLoad::empty(nl));
            }
        }
        let available = vec![true; nl];
        Self {
            problem,
            assignment,
            active,
            loads,
            totals,
            available,
            scratch: Mutex::new(scratch),
        }
    }

    /// Marks an agent available/unavailable (failure injection or
    /// drain-for-maintenance). Unavailable agents reject all new moves;
    /// load still assigned there is reported by [`violations`](Self::violations).
    pub fn set_agent_available(&mut self, l: AgentId, available: bool) {
        self.available[l.index()] = available;
    }

    /// Whether agent `l` currently accepts load.
    pub fn is_agent_available(&self, l: AgentId) -> bool {
        self.available[l.index()]
    }

    /// The underlying problem.
    pub fn problem(&self) -> &Arc<UapProblem> {
        &self.problem
    }

    /// The current assignment.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// Whether session `s` is active.
    pub fn is_active(&self, s: SessionId) -> bool {
        self.active[s.index()]
    }

    /// Ids of the currently active sessions.
    pub fn active_sessions(&self) -> impl Iterator<Item = SessionId> + '_ {
        self.problem
            .instance()
            .session_ids()
            .filter(move |s| self.active[s.index()])
    }

    /// Cached load of session `s` (zeroed if inactive).
    pub fn session_load(&self, s: SessionId) -> &SessionLoad {
        &self.loads[s.index()]
    }

    /// Per-agent load totals over active sessions.
    pub fn totals(&self) -> &AgentTotals {
        &self.totals
    }

    /// Global objective `Φ = Σ_s Φ_s` over active sessions.
    pub fn objective(&self) -> f64 {
        self.active_sessions()
            .map(|s| self.loads[s.index()].phi)
            .sum()
    }

    /// Local objective `Φ_s` of one session.
    pub fn session_objective(&self, s: SessionId) -> f64 {
        self.loads[s.index()].phi
    }

    /// Total inter-agent traffic in Mbps (the paper's headline cost metric).
    pub fn total_traffic_mbps(&self) -> f64 {
        self.active_sessions()
            .map(|s| self.loads[s.index()].total_ingress_mbps())
            .sum()
    }

    /// Average conferencing delay over all active users (the paper's
    /// headline experience metric): mean of `d_u`.
    pub fn mean_delay_ms(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for s in self.active_sessions() {
            for d in &self.loads[s.index()].user_delay {
                sum += d;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// All constraint violations of the current state.
    pub fn violations(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let inst = self.problem.instance();
        for l in inst.agent_ids() {
            let cap = inst.agent(l).capacity();
            let dl = self.totals.download[l.index()];
            if dl > cap.download_mbps + CAPACITY_EPS {
                out.push(Violation::Download {
                    agent: l,
                    load_mbps: dl,
                    capacity_mbps: cap.download_mbps,
                });
            }
            let ul = self.totals.upload[l.index()];
            if ul > cap.upload_mbps + CAPACITY_EPS {
                out.push(Violation::Upload {
                    agent: l,
                    load_mbps: ul,
                    capacity_mbps: cap.upload_mbps,
                });
            }
            let tl = self.totals.transcode[l.index()];
            if tl > cap.transcode_slots {
                out.push(Violation::Transcode {
                    agent: l,
                    units: tl,
                    capacity: cap.transcode_slots,
                });
            }
        }
        for s in self.active_sessions() {
            let load = &self.loads[s.index()];
            if load.max_flow_delay > inst.d_max_ms() + CAPACITY_EPS {
                out.push(Violation::Delay {
                    session: s,
                    delay_ms: load.max_flow_delay,
                    bound_ms: inst.d_max_ms(),
                });
            }
        }
        // Unavailable agents still carrying users or tasks.
        for l in inst.agent_ids() {
            if self.available[l.index()] {
                continue;
            }
            let hosts_load = self.active_sessions().any(|s| {
                inst.session(s)
                    .users()
                    .iter()
                    .any(|&u| self.assignment.agent_of_user(u) == l)
                    || self
                        .problem
                        .tasks()
                        .of_session(s)
                        .iter()
                        .any(|&t| self.assignment.agent_of_task(t) == l)
            });
            if hosts_load {
                out.push(Violation::Unavailable { agent: l });
            }
        }
        out
    }

    /// Whether the current state satisfies constraints (5)–(8).
    pub fn is_feasible(&self) -> bool {
        self.violations().is_empty()
    }

    /// The session a decision belongs to.
    pub fn session_of(&self, decision: Decision) -> SessionId {
        match decision {
            Decision::User(u, _) => self.problem.instance().user(u).session(),
            Decision::Task(t, _) => {
                let task = self.problem.tasks().task(t);
                self.problem.instance().user(task.src).session()
            }
        }
    }

    /// Evaluates a candidate decision without committing: returns the new
    /// session load and the first violation it would introduce, if any.
    ///
    /// Feasibility is judged *globally*: capacities are checked against
    /// `totals − old + new`; the delay bound against the new session load.
    /// Convenience wrapper over [`candidate_into`](Self::candidate_into)
    /// (which is what the hop hot path calls with its own scratch).
    pub fn candidate(&self, decision: Decision) -> (SessionLoad, Result<(), Violation>) {
        let mut scratch = self.scratch.lock().expect("scratch lock");
        let verdict = self.candidate_into(decision, &mut scratch);
        (scratch.load().clone(), verdict)
    }

    /// Evaluates a candidate decision into `scratch` — the allocation-free
    /// primitive of the HOP path. The evaluated load is left in the
    /// scratch (read it with [`EvalScratch::load`]); no global state is
    /// cloned: the candidate is an [`OverlayView`] over the committed
    /// assignment.
    pub fn candidate_into(
        &self,
        decision: Decision,
        scratch: &mut EvalScratch,
    ) -> Result<(), Violation> {
        let s = self.session_of(decision);
        let target = match decision {
            Decision::User(_, a) | Decision::Task(_, a) => a,
        };
        let view = OverlayView::new(&self.assignment, decision);
        scratch.evaluate(&self.problem, &view, s);
        if !self.available[target.index()] {
            Err(Violation::Unavailable { agent: target })
        } else if self.active[s.index()] {
            self.check_swap(s, scratch.load())
        } else {
            Ok(())
        }
    }

    /// Checks whether replacing `s`'s load with `new_load` keeps the
    /// system feasible. Scans only the agents whose load changes (the
    /// union of old and new touched sets) — an agent neither load
    /// touches sees `totals − 0 + 0` and cannot newly violate. (A
    /// pre-existing overshoot on an *untouched* agent — possible after a
    /// forced evacuation — therefore no longer vetoes unrelated moves.)
    fn check_swap(&self, s: SessionId, new_load: &SessionLoad) -> Result<(), Violation> {
        let inst = self.problem.instance();
        let old = &self.loads[s.index()];
        // Sorted-merge of the two ascending touched lists.
        let (ta, tb) = (&old.touched, &new_load.touched);
        let (mut ia, mut ib) = (0usize, 0usize);
        while ia < ta.len() || ib < tb.len() {
            let i = match (ta.get(ia), tb.get(ib)) {
                (Some(&a), Some(&b)) if a == b => {
                    ia += 1;
                    ib += 1;
                    a as usize
                }
                (Some(&a), Some(&b)) if a < b => {
                    ia += 1;
                    a as usize
                }
                (Some(_), Some(&b)) => {
                    ib += 1;
                    b as usize
                }
                (Some(&a), None) => {
                    ia += 1;
                    a as usize
                }
                (None, Some(&b)) => {
                    ib += 1;
                    b as usize
                }
                (None, None) => unreachable!("loop condition"),
            };
            let l = AgentId::from(i);
            let cap = inst.agent(l).capacity();
            let dl = self.totals.download[i] - old.download[i] + new_load.download[i];
            if dl > cap.download_mbps + CAPACITY_EPS {
                return Err(Violation::Download {
                    agent: l,
                    load_mbps: dl,
                    capacity_mbps: cap.download_mbps,
                });
            }
            let ul = self.totals.upload[i] - old.upload[i] + new_load.upload[i];
            if ul > cap.upload_mbps + CAPACITY_EPS {
                return Err(Violation::Upload {
                    agent: l,
                    load_mbps: ul,
                    capacity_mbps: cap.upload_mbps,
                });
            }
            let tl =
                self.totals.transcode[i] - old.transcode_units[i] + new_load.transcode_units[i];
            if tl > cap.transcode_slots {
                return Err(Violation::Transcode {
                    agent: l,
                    units: tl,
                    capacity: cap.transcode_slots,
                });
            }
        }
        if new_load.max_flow_delay > inst.d_max_ms() + CAPACITY_EPS {
            return Err(Violation::Delay {
                session: s,
                delay_ms: new_load.max_flow_delay,
                bound_ms: inst.d_max_ms(),
            });
        }
        Ok(())
    }

    /// Applies a decision if it keeps the system feasible.
    ///
    /// # Errors
    ///
    /// Returns the violation the move would introduce; the state is
    /// unchanged on error.
    pub fn try_apply(&mut self, decision: Decision) -> Result<(), Violation> {
        let mut scratch = std::mem::take(self.scratch.get_mut().expect("scratch lock"));
        let result = self.candidate_into(decision, &mut scratch);
        if result.is_ok() {
            self.commit_scratch(decision, &mut scratch);
        }
        *self.scratch.get_mut().expect("scratch lock") = scratch;
        result
    }

    /// Applies a decision unconditionally (the state may become
    /// infeasible; `violations()` will report it).
    pub fn apply_unchecked(&mut self, decision: Decision) {
        let mut scratch = std::mem::take(self.scratch.get_mut().expect("scratch lock"));
        let _ = self.candidate_into(decision, &mut scratch);
        self.commit_scratch(decision, &mut scratch);
        *self.scratch.get_mut().expect("scratch lock") = scratch;
    }

    /// Commits the decision whose candidate load `scratch` currently
    /// holds (from [`candidate_into`](Self::candidate_into) for the same
    /// decision): applies the assignment change, swaps the evaluated
    /// load into the session's slot, and updates the per-agent totals
    /// sparsely. No allocation.
    pub fn commit_scratch(&mut self, decision: Decision, scratch: &mut EvalScratch) {
        let s = self.session_of(decision);
        self.assignment.apply(decision);
        if self.active[s.index()] {
            self.totals.remove(&self.loads[s.index()]);
            self.totals.add(scratch.load());
        }
        std::mem::swap(&mut self.loads[s.index()], scratch.load_mut());
    }

    /// Grows the state to a problem whose universe was extended online
    /// (open-world growth): the assignment gains agent-0 slots for the
    /// new users/tasks, the active mask and load cache gain inactive
    /// zeroed entries for the new sessions, and — when the agent pool
    /// grew too ([`UapProblem::register_agent`]) — the per-agent totals,
    /// availability mask, and every cached load extend with zeros for
    /// the new agents. Nothing about existing sessions or agents changes
    /// — totals, loads and the objective are bitwise untouched, so a
    /// state grown online equals one built over the full universe with
    /// the same active set.
    ///
    /// # Panics
    ///
    /// Panics if `problem` covers fewer agents/sessions/users/tasks than
    /// the current one (growth is append-only).
    pub fn grow_to(&mut self, problem: Arc<UapProblem>) {
        let nl = problem.instance().num_agents();
        assert!(
            nl >= self.problem.instance().num_agents(),
            "state covers more agents than the problem — growth is append-only"
        );
        let n = problem.instance().num_sessions();
        assert!(
            n >= self.active.len(),
            "state covers more sessions than the problem — growth is append-only"
        );
        if nl > self.problem.instance().num_agents() {
            self.totals.download.resize(nl, 0.0);
            self.totals.upload.resize(nl, 0.0);
            self.totals.transcode.resize(nl, 0);
            self.available.resize(nl, true);
            for load in &mut self.loads {
                load.grow(nl);
            }
        }
        self.assignment.grow(&problem);
        self.active.resize(n, false);
        self.loads.resize_with(n, || SessionLoad::empty(nl));
        self.problem = problem;
    }

    /// Activates session `s` (a session arrival), adding its load under
    /// the current assignment.
    pub fn activate(&mut self, s: SessionId) {
        if self.active[s.index()] {
            return;
        }
        let load = evaluate_session(&self.problem, &self.assignment, s);
        self.totals.add(&load);
        self.loads[s.index()] = load;
        self.active[s.index()] = true;
    }

    /// Deactivates session `s` (a session departure), releasing its
    /// resources.
    pub fn deactivate(&mut self, s: SessionId) {
        if !self.active[s.index()] {
            return;
        }
        self.totals.remove(&self.loads[s.index()]);
        self.loads[s.index()] = SessionLoad::empty(self.problem.instance().num_agents());
        self.active[s.index()] = false;
    }

    /// Replaces the assignment of one session wholesale (bootstrap /
    /// repair), re-evaluating it. Other sessions are untouched.
    pub fn reassign_session(
        &mut self,
        s: SessionId,
        user_agents: &[(vc_model::UserId, AgentId)],
        task_agents: &[(crate::TaskId, AgentId)],
    ) {
        for &(u, a) in user_agents {
            debug_assert_eq!(self.problem.instance().user(u).session(), s);
            self.assignment.set_user(u, a);
        }
        for &(t, a) in task_agents {
            self.assignment.set_task(t, a);
        }
        if self.active[s.index()] {
            let new_load = evaluate_session(&self.problem, &self.assignment, s);
            self.totals.remove(&self.loads[s.index()]);
            self.totals.add(&new_load);
            self.loads[s.index()] = new_load;
        } else {
            // Inactive sessions carry no load (the deactivate convention);
            // activation evaluates the new assignment exactly once. This
            // keeps reassign+activate — the admission hot path — at one
            // evaluation instead of two.
            self.loads[s.index()] = SessionLoad::empty(self.problem.instance().num_agents());
        }
    }

    /// Rebuilds all cached loads and totals from scratch, squashing any
    /// accumulated floating-point drift. Returns the largest absolute
    /// total-load correction applied (useful for drift monitoring).
    /// Agent availability is preserved.
    pub fn rebuild(&mut self) -> f64 {
        let mut fresh = SystemState::with_active(
            self.problem.clone(),
            self.assignment.clone(),
            self.active.clone(),
        );
        fresh.available = self.available.clone();
        let mut drift: f64 = 0.0;
        for l in 0..self.totals.download.len() {
            drift = drift.max((self.totals.download[l] - fresh.totals.download[l]).abs());
            drift = drift.max((self.totals.upload[l] - fresh.totals.upload[l]).abs());
        }
        self.loads = fresh.loads;
        self.totals = fresh.totals;
        drift
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{capacity_limited_problem, two_agent_problem};
    use crate::TaskId;
    use vc_model::UserId;

    const A: AgentId = AgentId::new(0);
    const B: AgentId = AgentId::new(1);

    fn state() -> SystemState {
        let p = Arc::new(two_agent_problem());
        let asg = Assignment::all_to_agent(&p, A);
        SystemState::new(p, asg)
    }

    #[test]
    fn objective_matches_session_sum() {
        let st = state();
        let s = SessionId::new(0);
        assert!((st.objective() - st.session_objective(s)).abs() < 1e-12);
        assert!(st.objective() > 0.0);
    }

    #[test]
    fn apply_updates_incrementally_and_consistently() {
        let mut st = state();
        st.apply_unchecked(Decision::User(UserId::new(1), B));
        st.apply_unchecked(Decision::Task(TaskId::new(0), B));
        let incremental = (st.objective(), st.total_traffic_mbps(), st.totals().clone());
        let drift = st.rebuild();
        assert!(drift < 1e-9, "drift {drift}");
        assert!((st.objective() - incremental.0).abs() < 1e-9);
        assert!((st.total_traffic_mbps() - incremental.1).abs() < 1e-9);
        assert_eq!(st.totals(), &incremental.2);
    }

    #[test]
    fn try_apply_rejects_capacity_violation() {
        let p = Arc::new(capacity_limited_problem());
        let asg = Assignment::all_to_agent(&p, A);
        let mut st = SystemState::new(p, asg);
        // Agent c has zero transcoding slots: moving any task there must fail.
        let err = st.try_apply(Decision::Task(TaskId::new(0), AgentId::new(2)));
        assert!(matches!(err, Err(Violation::Transcode { .. })));
        // State unchanged.
        assert_eq!(st.assignment().agent_of_task(TaskId::new(0)), A);
    }

    #[test]
    fn deactivate_releases_resources() {
        let mut st = state();
        let s = SessionId::new(0);
        let before = st.totals().download[A.index()];
        assert!(before > 0.0);
        st.deactivate(s);
        assert_eq!(st.totals().download[A.index()], 0.0);
        assert_eq!(st.objective(), 0.0);
        assert_eq!(st.mean_delay_ms(), 0.0);
        st.activate(s);
        assert!((st.totals().download[A.index()] - before).abs() < 1e-12);
    }

    #[test]
    fn activate_is_idempotent() {
        let mut st = state();
        let s = SessionId::new(0);
        let obj = st.objective();
        st.activate(s);
        st.activate(s);
        assert!((st.objective() - obj).abs() < 1e-12);
    }

    #[test]
    fn mean_delay_averages_users() {
        let mut st = state();
        st.apply_unchecked(Decision::User(UserId::new(1), B));
        let load = st.session_load(SessionId::new(0));
        let expected = (load.user_delay[0] + load.user_delay[1]) / 2.0;
        assert!((st.mean_delay_ms() - expected).abs() < 1e-12);
    }

    #[test]
    fn candidate_does_not_mutate() {
        let st = state();
        let before = st.assignment().clone();
        let (_, verdict) = st.candidate(Decision::User(UserId::new(0), B));
        assert!(verdict.is_ok());
        assert_eq!(st.assignment(), &before);
    }

    #[test]
    fn unlimited_capacity_state_is_feasible() {
        let st = state();
        assert!(st.is_feasible(), "violations: {:?}", st.violations());
    }

    #[test]
    fn unavailable_agents_reject_moves_and_report_load() {
        let mut st = state();
        st.set_agent_available(B, false);
        let err = st.try_apply(Decision::User(UserId::new(0), B));
        assert!(matches!(err, Err(Violation::Unavailable { agent }) if agent == B));
        // Nothing on B yet: no violation reported.
        assert!(st.is_feasible());
        // Force a user onto B, then mark B down: the violation appears.
        st.set_agent_available(B, true);
        st.try_apply(Decision::User(UserId::new(0), B)).unwrap();
        st.set_agent_available(B, false);
        assert!(st
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::Unavailable { agent } if *agent == B)));
        // Moving the user back to A repairs it.
        st.try_apply(Decision::User(UserId::new(0), A)).unwrap();
        // The task may still sit on A; B carries nothing.
        assert!(st.is_feasible(), "violations: {:?}", st.violations());
        // Rebuild preserves availability.
        st.rebuild();
        assert!(!st.is_agent_available(B));
    }

    /// Pins the PR 3 semantic change in `check_swap`: feasibility of a
    /// move scans only the agents whose load changes (the union of the
    /// old and new touched sets). A **pre-existing** capacity overshoot
    /// on an agent the move does not touch — the artifact of a forced
    /// evacuation — must therefore NOT veto the unrelated move. (The
    /// seed's dense scan re-checked every agent, so a single overshot
    /// agent froze every session in place; the overshoot itself is
    /// still reported by `violations()` and drained by moves that do
    /// touch the agent.)
    #[test]
    fn untouched_agent_overshoot_does_not_veto_unrelated_moves() {
        let p = Arc::new(capacity_limited_problem());
        let mut asg = Assignment::all_to_agent(&p, A);
        // Session 0 alone would overshoot A's 2 transcode slots with all
        // three of its tasks there; park one on B so the agents of the
        // unrelated move below are themselves clean.
        let spill = p
            .tasks()
            .find(UserId::new(1), UserId::new(2))
            .expect("u1→u2 needs transcoding");
        asg.set_task(spill, B);
        let mut st = SystemState::new(p.clone(), asg);
        let c = AgentId::new(2);
        // Force session 1 wholesale onto agent c (8 Mbps, 0 slots): a
        // deliberate overshoot, as a forced evacuation would leave.
        let s1 = SessionId::new(1);
        for &u in p.instance().session(s1).users() {
            st.apply_unchecked(Decision::User(u, c));
        }
        for &t in p.tasks().of_session(s1) {
            st.apply_unchecked(Decision::Task(t, c));
        }
        assert!(
            st.violations()
                .iter()
                .any(|v| matches!(v, Violation::Download { agent, .. } if *agent == c)),
            "fixture no longer overshoots agent c: {:?}",
            st.violations()
        );
        // An unrelated session-0 move between a and b touches only
        // {a, b}; the overshoot on c must not veto it.
        let verdict = st.try_apply(Decision::User(UserId::new(1), B));
        assert_eq!(verdict, Ok(()), "untouched overshoot vetoed the move");
        // Sanity: a move that DOES touch c and adds load there is still
        // refused by the same sparse check.
        let err = st.try_apply(Decision::User(UserId::new(0), c));
        let refused_on_c = match err {
            Err(Violation::Download { agent, .. }) | Err(Violation::Upload { agent, .. }) => {
                agent == c
            }
            _ => false,
        };
        assert!(
            refused_on_c,
            "move onto the overshot agent was not refused: {err:?}"
        );
    }

    #[test]
    fn grow_to_extends_without_touching_existing_state() {
        let p = Arc::new(two_agent_problem());
        let asg = Assignment::all_to_agent(&p, A);
        let mut st = SystemState::new(p.clone(), asg);
        st.try_apply(Decision::User(UserId::new(1), B)).unwrap();
        let objective = st.objective();
        let totals = st.totals().clone();

        // Grow the universe by one conference and the state with it.
        let mut grown = (*p).clone();
        let inst = grown.instance();
        let r360 = inst.ladder().by_name("360p").unwrap().id();
        let r720 = inst.ladder().by_name("720p").unwrap().id();
        let def = vc_model::SessionDef {
            users: vec![
                vc_model::UserDef {
                    upstream: r720,
                    downstream: vc_model::DownstreamDemand::uniform(r360),
                    agent_delays_ms: vec![6.0, 7.0],
                    site_index: None,
                },
                vc_model::UserDef {
                    upstream: r360,
                    downstream: vc_model::DownstreamDemand::uniform(r360),
                    agent_delays_ms: vec![8.0, 9.0],
                    site_index: None,
                },
            ],
        };
        let s = grown.register_session(&def).expect("registers");
        let grown = Arc::new(grown);
        st.grow_to(grown.clone());
        // Existing state is bitwise untouched; the new session is inert.
        assert_eq!(st.objective().to_bits(), objective.to_bits());
        assert_eq!(st.totals(), &totals);
        assert!(!st.is_active(s));
        // Activating it accounts its load like any other arrival.
        st.activate(s);
        assert!(st.session_objective(s) > 0.0);
        let drift = st.rebuild();
        assert!(drift < 1e-9, "drift {drift}");
    }

    #[test]
    fn grow_to_extends_the_agent_axis_with_zeros() {
        let p = Arc::new(two_agent_problem());
        let asg = Assignment::all_to_agent(&p, A);
        let mut st = SystemState::new(p.clone(), asg);
        st.try_apply(Decision::User(UserId::new(1), B)).unwrap();
        let objective = st.objective();
        let totals = st.totals().clone();

        // Grow the agent pool by one and the state with it.
        let mut grown = (*p).clone();
        let def = vc_model::AgentDef {
            spec: vc_model::AgentSpec::builder("late").build(),
            inter_agent_ms: vec![12.0, 18.0],
            user_delays_ms: (0..grown.instance().num_users())
                .map(|u| 5.0 + u as f64)
                .collect(),
        };
        let l = grown.register_agent(&def).expect("registers");
        let grown = Arc::new(grown);
        st.grow_to(grown.clone());
        // Existing state is bitwise untouched; the new agent is empty.
        assert_eq!(st.objective().to_bits(), objective.to_bits());
        assert_eq!(st.totals().download[..2], totals.download[..]);
        assert_eq!(st.totals().download[l.index()], 0.0);
        assert_eq!(st.totals().transcode[l.index()], 0);
        assert!(st.is_agent_available(l));
        // Moving a user onto the new agent accounts like any other.
        st.apply_unchecked(Decision::User(UserId::new(0), l));
        let drift = st.rebuild();
        assert!(drift < 1e-9, "drift {drift}");
    }

    #[test]
    fn reassign_session_wholesale() {
        let mut st = state();
        st.reassign_session(
            SessionId::new(0),
            &[(UserId::new(0), B), (UserId::new(1), B)],
            &[(TaskId::new(0), B)],
        );
        assert_eq!(st.assignment().agent_of_user(UserId::new(0)), B);
        assert_eq!(st.total_traffic_mbps(), 0.0); // everyone co-located on B
        let drift = st.rebuild();
        assert!(drift < 1e-9);
    }
}
