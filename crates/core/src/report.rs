//! Operator-facing system report: who uses what, where the budget goes.
//!
//! [`SystemReport`] snapshots a [`SystemState`] into per-agent utilization
//! rows and per-session summaries with delay decompositions — the view a
//! conferencing provider's dashboard would render. Everything is plain
//! data; [`std::fmt::Display`] renders an aligned text table.

use crate::evaluate::flow_delay_breakdown;
use crate::SystemState;
use std::fmt;
use vc_model::{AgentId, SessionId};

/// Utilization of one agent.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentRow {
    /// The agent.
    pub agent: AgentId,
    /// Site name.
    pub name: String,
    /// Users subscribed to this agent (active sessions only).
    pub users: usize,
    /// Transcoding units in use.
    pub transcode_units: u32,
    /// Download load vs capacity (Mbps; capacity may be infinite).
    pub download_mbps: (f64, f64),
    /// Upload load vs capacity (Mbps).
    pub upload_mbps: (f64, f64),
    /// Whether the agent currently accepts load.
    pub available: bool,
}

/// Summary of one active session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRow {
    /// The session.
    pub session: SessionId,
    /// Number of participants.
    pub users: usize,
    /// Distinct agents serving the session.
    pub agents_used: usize,
    /// Inter-agent traffic (Mbps).
    pub traffic_mbps: f64,
    /// Mean per-user worst receive delay (ms).
    pub mean_delay_ms: f64,
    /// Worst flow delay (ms) and its decomposition:
    /// (last-mile, inter-agent, transcode).
    pub worst_flow_ms: (f64, f64, f64, f64),
}

/// A complete snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemReport {
    /// Per-agent utilization, in agent-id order.
    pub agents: Vec<AgentRow>,
    /// Per-active-session summaries, in session-id order.
    pub sessions: Vec<SessionRow>,
    /// Global objective `Φ`.
    pub objective: f64,
    /// Total inter-agent traffic (Mbps).
    pub total_traffic_mbps: f64,
    /// Mean conferencing delay (ms).
    pub mean_delay_ms: f64,
}

impl SystemReport {
    /// Snapshots the state.
    pub fn capture(state: &SystemState) -> Self {
        let problem = state.problem();
        let inst = problem.instance();
        let totals = state.totals();

        let mut user_counts = vec![0usize; inst.num_agents()];
        for s in state.active_sessions() {
            for &u in inst.session(s).users() {
                user_counts[state.assignment().agent_of_user(u).index()] += 1;
            }
        }
        let agents = inst
            .agent_ids()
            .map(|l| {
                let cap = inst.agent(l).capacity();
                AgentRow {
                    agent: l,
                    name: inst.agent(l).name().to_string(),
                    users: user_counts[l.index()],
                    transcode_units: totals.transcode[l.index()],
                    download_mbps: (totals.download[l.index()], cap.download_mbps),
                    upload_mbps: (totals.upload[l.index()], cap.upload_mbps),
                    available: state.is_agent_available(l),
                }
            })
            .collect();

        let sessions = state
            .active_sessions()
            .map(|s| {
                let load = state.session_load(s);
                let session = inst.session(s);
                let mut agents_used: Vec<AgentId> = session
                    .users()
                    .iter()
                    .map(|&u| state.assignment().agent_of_user(u))
                    .collect();
                agents_used.sort();
                agents_used.dedup();
                // Worst flow and its decomposition.
                let mut worst = (0.0, 0.0, 0.0, 0.0);
                for (u, v) in session.flows() {
                    let bd = flow_delay_breakdown(problem, state.assignment(), u, v);
                    if bd.total() > worst.0 {
                        worst = (
                            bd.total(),
                            bd.source_last_mile_ms + bd.destination_last_mile_ms,
                            bd.inter_agent_ms,
                            bd.transcode_ms,
                        );
                    }
                }
                let mean_delay = if load.user_delay.is_empty() {
                    0.0
                } else {
                    load.user_delay.iter().sum::<f64>() / load.user_delay.len() as f64
                };
                SessionRow {
                    session: s,
                    users: session.len(),
                    agents_used: agents_used.len(),
                    traffic_mbps: load.total_ingress_mbps(),
                    mean_delay_ms: mean_delay,
                    worst_flow_ms: worst,
                }
            })
            .collect();

        Self {
            agents,
            sessions,
            objective: state.objective(),
            total_traffic_mbps: state.total_traffic_mbps(),
            mean_delay_ms: state.mean_delay_ms(),
        }
    }

    /// The most loaded agent by download utilization fraction (None when
    /// every capacity is infinite or zero-load).
    pub fn download_hotspot(&self) -> Option<&AgentRow> {
        self.agents
            .iter()
            .filter(|a| a.download_mbps.1.is_finite() && a.download_mbps.1 > 0.0)
            .max_by(|a, b| {
                let fa = a.download_mbps.0 / a.download_mbps.1;
                let fb = b.download_mbps.0 / b.download_mbps.1;
                fa.partial_cmp(&fb).expect("finite fractions")
            })
    }
}

fn fmt_cap(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.0}")
    } else {
        "∞".to_string()
    }
}

impl fmt::Display for SystemReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Φ = {:.1} | inter-agent {:.1} Mbps | mean delay {:.1} ms",
            self.objective, self.total_traffic_mbps, self.mean_delay_ms
        )?;
        writeln!(
            f,
            "{:<16} {:>6} {:>7} {:>16} {:>16} {:>6}",
            "agent", "users", "xcodes", "down (used/cap)", "up (used/cap)", "avail"
        )?;
        for a in &self.agents {
            writeln!(
                f,
                "{:<16} {:>6} {:>7} {:>8.1}/{:<7} {:>8.1}/{:<7} {:>6}",
                a.name,
                a.users,
                a.transcode_units,
                a.download_mbps.0,
                fmt_cap(a.download_mbps.1),
                a.upload_mbps.0,
                fmt_cap(a.upload_mbps.1),
                if a.available { "yes" } else { "DOWN" }
            )?;
        }
        writeln!(
            f,
            "{:<10} {:>6} {:>7} {:>12} {:>10} {:>26}",
            "session", "users", "agents", "traffic Mbps", "delay ms", "worst flow (lm/ia/xc ms)"
        )?;
        for s in &self.sessions {
            writeln!(
                f,
                "{:<10} {:>6} {:>7} {:>12.2} {:>10.1} {:>8.0} ({:.0}/{:.0}/{:.0})",
                s.session.to_string(),
                s.users,
                s.agents_used,
                s.traffic_mbps,
                s.mean_delay_ms,
                s.worst_flow_ms.0,
                s.worst_flow_ms.1,
                s.worst_flow_ms.2,
                s.worst_flow_ms.3,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{capacity_limited_problem, two_agent_problem};
    use crate::{Assignment, Decision};
    use std::sync::Arc;
    use vc_model::UserId;

    #[test]
    fn capture_reflects_state() {
        let p = Arc::new(two_agent_problem());
        let mut st = SystemState::new(p.clone(), Assignment::all_to_agent(&p, AgentId::new(0)));
        st.apply_unchecked(Decision::User(UserId::new(1), AgentId::new(1)));
        let report = SystemReport::capture(&st);
        assert_eq!(report.agents.len(), 2);
        assert_eq!(report.agents[0].users, 1);
        assert_eq!(report.agents[1].users, 1);
        assert_eq!(report.sessions.len(), 1);
        assert_eq!(report.sessions[0].agents_used, 2);
        assert!((report.total_traffic_mbps - st.total_traffic_mbps()).abs() < 1e-12);
        // The worst flow is the transcoded one; decomposition sums up.
        let w = report.sessions[0].worst_flow_ms;
        assert!((w.0 - (w.1 + w.2 + w.3)).abs() < 1e-9);
        assert!(w.3 > 0.0, "transcode component expected");
    }

    #[test]
    fn display_renders_all_rows() {
        let p = Arc::new(capacity_limited_problem());
        let st = SystemState::new(p.clone(), Assignment::all_to_agent(&p, AgentId::new(0)));
        let text = SystemReport::capture(&st).to_string();
        for a in p.instance().agents() {
            assert!(text.contains(a.name()), "missing agent {}", a.name());
        }
        assert!(text.contains("s0"));
        assert!(text.contains("s1"));
    }

    #[test]
    fn hotspot_finds_most_utilized_agent() {
        let p = Arc::new(capacity_limited_problem());
        let st = SystemState::new(p.clone(), Assignment::all_to_agent(&p, AgentId::new(0)));
        // Everything on agent 0 → it is the hotspot.
        let report = SystemReport::capture(&st);
        assert_eq!(report.download_hotspot().unwrap().agent, AgentId::new(0));
    }

    #[test]
    fn unlimited_capacities_have_no_hotspot() {
        let p = Arc::new(two_agent_problem());
        let st = SystemState::new(p.clone(), Assignment::all_to_agent(&p, AgentId::new(0)));
        assert!(SystemReport::capture(&st).download_hotspot().is_none());
    }

    #[test]
    fn down_agents_are_flagged() {
        let p = Arc::new(two_agent_problem());
        let mut st = SystemState::new(p.clone(), Assignment::all_to_agent(&p, AgentId::new(0)));
        st.set_agent_available(AgentId::new(1), false);
        let report = SystemReport::capture(&st);
        assert!(!report.agents[1].available);
        assert!(report.to_string().contains("DOWN"));
    }
}
