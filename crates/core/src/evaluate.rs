//! Per-session evaluation: traffic accounting `μ_klu`, transcoding
//! occupancy `ν_lru`, end-to-end delays `d_uv`, and the local objective
//! `Φ_s`.
//!
//! This module is a line-by-line transcription of Sec. III-B/III-C:
//!
//! * **`μ_klu`** (download traffic at agent `l` receiving via agent `k`
//!   the stream originated by `u`) has three terms: (1) the raw upstream
//!   shipped from `u`'s agent to every agent transcoding `u`'s stream;
//!   (2) the raw upstream shipped to agents hosting destinations that
//!   want it un-transcoded (skipped when the agent already receives the
//!   stream for transcoding — the paper's `(1−ν′_lu)` factor); (3) each
//!   transcoded representation shipped from its transcoder(s) to the
//!   agents hosting destinations demanding it (skipped when the
//!   destination agent is `u`'s own agent — the paper's `(1−λ_lu)`
//!   factor).
//! * **`ν_lru`** occupies one transcoding unit per *distinct* `(u, r)`
//!   pair at an agent regardless of the number of destinations.
//! * **`d_uv`** sums the two last-mile hops, the inter-agent hop(s) —
//!   through the transcoding agent when `θ_uv = 1` — and the transcoding
//!   latency `σ_l` (counted once; the paper's printed formula nests σ
//!   inside the `Σ_k`, an evident typo).
//!
//! ## The hop hot path
//!
//! Alg. 1 weighs `(|U(s)| + |T(s)|)·(L − 1)` candidate placements per
//! HOP, so this module is written around a reusable [`EvalScratch`]:
//! one evaluation touches only the agents the session actually uses
//! (tracked in [`SessionLoad::touched`]) and clears only what it wrote,
//! making steady-state candidate weighing allocation-free. Candidates
//! are expressed as an [`OverlayView`] over the committed assignment —
//! a one-decision diff — instead of cloning the whole assignment.

use crate::{Assignment, Decision, TaskId, UapProblem};
use vc_model::{AgentId, ReprId, SessionId, UserId};

/// Read access to the decision variables `λ` (user → agent) and `γ`
/// (task → agent). [`Assignment`] is the committed store; overlays and
/// the orchestrator's per-session slots provide cheap alternative views
/// so candidate evaluation never clones the global assignment.
pub trait AssignmentView {
    /// `λ(u)`: the agent user `u` subscribes to.
    fn agent_of_user(&self, u: UserId) -> AgentId;
    /// `γ(t)`: the agent running task `t`.
    fn agent_of_task(&self, t: TaskId) -> AgentId;
}

impl AssignmentView for Assignment {
    #[inline]
    fn agent_of_user(&self, u: UserId) -> AgentId {
        Assignment::agent_of_user(self, u)
    }
    #[inline]
    fn agent_of_task(&self, t: TaskId) -> AgentId {
        Assignment::agent_of_task(self, t)
    }
}

impl<V: AssignmentView + ?Sized> AssignmentView for &V {
    #[inline]
    fn agent_of_user(&self, u: UserId) -> AgentId {
        (**self).agent_of_user(u)
    }
    #[inline]
    fn agent_of_task(&self, t: TaskId) -> AgentId {
        (**self).agent_of_task(t)
    }
}

/// A base view with exactly one decision changed — the shape of every
/// Alg. 1 candidate. Evaluating through an overlay replaces the old
/// clone-the-whole-`Assignment` candidate path.
#[derive(Debug, Clone, Copy)]
pub struct OverlayView<'a, V: AssignmentView> {
    base: &'a V,
    decision: Decision,
}

impl<'a, V: AssignmentView> OverlayView<'a, V> {
    /// Views `base` with `decision` applied.
    pub fn new(base: &'a V, decision: Decision) -> Self {
        Self { base, decision }
    }
}

impl<V: AssignmentView> AssignmentView for OverlayView<'_, V> {
    #[inline]
    fn agent_of_user(&self, u: UserId) -> AgentId {
        if let Decision::User(w, a) = self.decision {
            if w == u {
                return a;
            }
        }
        self.base.agent_of_user(u)
    }
    #[inline]
    fn agent_of_task(&self, t: TaskId) -> AgentId {
        if let Decision::Task(w, a) = self.decision {
            if w == t {
                return a;
            }
        }
        self.base.agent_of_task(t)
    }
}

/// Everything the optimizer needs to know about one session under one
/// assignment: per-agent resource loads, inter-agent ingress `x_ls`,
/// transcoding occupancy `y_ls`, per-user delays `d_u`, and the weighted
/// local objective `Φ_s`.
///
/// Equality compares the semantic fields only — the [`touched`]
/// (Self::touched) index is bookkeeping for sparse iteration.
#[derive(Debug, Clone, Default)]
pub struct SessionLoad {
    /// Per-agent download load (Mbps): last-mile upstreams + inter-agent ingress.
    pub download: Vec<f64>,
    /// Per-agent upload load (Mbps): last-mile downstreams + inter-agent egress.
    pub upload: Vec<f64>,
    /// `x_ls`: inter-agent ingress per agent (Mbps), the argument of `g_l`.
    pub ingress: Vec<f64>,
    /// `y_ls`: transcoding units occupied per agent (distinct `(u, r)` pairs).
    pub transcode_units: Vec<u32>,
    /// Indices of agents this session's load touches, ascending. Every
    /// nonzero entry of the dense vectors above is covered (a touched
    /// agent may still carry an all-zero load, e.g. a one-user session's
    /// empty downstream); consumers doing sparse scans — totals
    /// maintenance, `check_swap`, ledger holds — iterate this instead of
    /// all `L` agents.
    pub touched: Vec<u32>,
    /// `d_u` per session participant (same order as `session.users()`):
    /// the worst delay `u` experiences *receiving* from the others.
    pub user_delay: Vec<f64>,
    /// `max_{u,v} d_uv` over all flows of the session (constraint (8) check).
    pub max_flow_delay: f64,
    /// `F(d_s)`.
    pub delay_cost: f64,
    /// `G(x_s) = Σ_l price_l · g(x_ls)`.
    pub traffic_cost: f64,
    /// `H(y_s) = Σ_l price_l · h(y_ls)`.
    pub transcode_cost: f64,
    /// `Φ_s = α1·F + α2·G + α3·H`.
    pub phi: f64,
}

impl PartialEq for SessionLoad {
    fn eq(&self, other: &Self) -> bool {
        // `touched` deliberately excluded: it may be a superset of the
        // nonzero agents and two equal loads may differ in it.
        self.download == other.download
            && self.upload == other.upload
            && self.ingress == other.ingress
            && self.transcode_units == other.transcode_units
            && self.user_delay == other.user_delay
            && self.max_flow_delay == other.max_flow_delay
            && self.delay_cost == other.delay_cost
            && self.traffic_cost == other.traffic_cost
            && self.transcode_cost == other.transcode_cost
            && self.phi == other.phi
    }
}

impl SessionLoad {
    /// A zeroed load (used for inactive sessions).
    pub fn empty(num_agents: usize) -> Self {
        Self {
            download: vec![0.0; num_agents],
            upload: vec![0.0; num_agents],
            ingress: vec![0.0; num_agents],
            transcode_units: vec![0; num_agents],
            touched: Vec::new(),
            user_delay: Vec::new(),
            max_flow_delay: 0.0,
            delay_cost: 0.0,
            traffic_cost: 0.0,
            transcode_cost: 0.0,
            phi: 0.0,
        }
    }

    /// Total inter-agent traffic of the session (Σ_l x_ls, Mbps) — the
    /// quantity the paper reports as "inter-agent traffic".
    pub fn total_ingress_mbps(&self) -> f64 {
        self.ingress.iter().sum()
    }

    /// Extends the per-agent vectors to `num_agents` (append-only agent
    /// growth; no-op when already that large). New agents carry exactly
    /// zero load, which is what re-evaluating the same placement under
    /// the grown universe produces — so grown state stays bitwise
    /// identical to up-front construction.
    pub fn grow(&mut self, num_agents: usize) {
        if self.download.len() >= num_agents {
            return;
        }
        self.download.resize(num_agents, 0.0);
        self.upload.resize(num_agents, 0.0);
        self.ingress.resize(num_agents, 0.0);
        self.transcode_units.resize(num_agents, 0);
    }
}

/// Evaluates session `s` under `view`, computing all loads, delays
/// and costs from scratch. Convenience wrapper over [`EvalScratch`] —
/// hot paths hold a scratch and call [`EvalScratch::evaluate`] directly.
///
/// # Panics
///
/// Panics if `s` is out of range for the problem's instance.
pub fn evaluate_session<V: AssignmentView>(
    problem: &UapProblem,
    view: &V,
    s: SessionId,
) -> SessionLoad {
    let mut scratch = EvalScratch::new();
    scratch.evaluate(problem, view, s).clone()
}

/// Reusable per-worker evaluation buffers: the `L×L` flow matrix (with
/// a touched-cell list so clearing is proportional to what was written,
/// not `L²`), the output [`SessionLoad`], the transcode-triple dedup
/// buffer, and the small per-stream agent sets. After warm-up an
/// evaluation performs no heap allocation.
#[derive(Debug, Default)]
pub struct EvalScratch {
    nl: usize,
    /// Dense `L×L` inter-agent flows (`flows[k·L + l]` = Mbps k→l).
    flows: Vec<f64>,
    /// Cells of `flows` written since the last clear.
    flow_cells: Vec<(u32, u32)>,
    /// The output load; dense vectors sized `L`, cleared via `touched`.
    load: SessionLoad,
    /// Membership mask for `load.touched`, true only mid-evaluation.
    mark: Vec<bool>,
    /// Transcode-triple dedup buffer (sort + dedup, not O(n²) scans).
    triples: Vec<(AgentId, UserId, ReprId)>,
    transcoders: Vec<AgentId>,
    raw_dests: Vec<AgentId>,
    reps: Vec<ReprId>,
    transcoders_r: Vec<AgentId>,
    dest_agents_r: Vec<AgentId>,
}

impl EvalScratch {
    /// An empty scratch; buffers are sized on first use and re-sized if
    /// the agent count changes.
    pub fn new() -> Self {
        Self::default()
    }

    /// The load produced by the most recent [`evaluate`](Self::evaluate).
    pub fn load(&self) -> &SessionLoad {
        &self.load
    }

    /// Mutable access for commit paths that swap the evaluated load into
    /// caller-owned storage (the next `evaluate` clears whatever load is
    /// swapped in, using its `touched` index).
    pub fn load_mut(&mut self) -> &mut SessionLoad {
        &mut self.load
    }

    fn ensure(&mut self, nl: usize) {
        if self.nl != nl {
            self.nl = nl;
            self.flows = vec![0.0; nl * nl];
            self.flow_cells.clear();
            self.load = SessionLoad::empty(nl);
            self.mark = vec![false; nl];
        }
    }

    /// Zeroes exactly what the previous evaluation (or a swapped-in
    /// load) left behind.
    fn clear(&mut self) {
        for &a in &self.load.touched {
            let i = a as usize;
            self.load.download[i] = 0.0;
            self.load.upload[i] = 0.0;
            self.load.ingress[i] = 0.0;
            self.load.transcode_units[i] = 0;
        }
        self.load.touched.clear();
        for &(k, l) in &self.flow_cells {
            self.flows[k as usize * self.nl + l as usize] = 0.0;
        }
        self.flow_cells.clear();
        self.load.user_delay.clear();
        self.load.max_flow_delay = 0.0;
        self.load.delay_cost = 0.0;
        self.load.traffic_cost = 0.0;
        self.load.transcode_cost = 0.0;
        self.load.phi = 0.0;
    }

    /// Evaluates session `s` under `view` into the scratch's load,
    /// returning it. Results are bitwise identical to a fresh
    /// [`evaluate_session`]: sparse accumulation visits agents and flow
    /// cells in the same ascending order the dense scan would.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range for the problem's instance.
    pub fn evaluate<V: AssignmentView>(
        &mut self,
        problem: &UapProblem,
        view: &V,
        s: SessionId,
    ) -> &SessionLoad {
        let inst = problem.instance();
        let nl = inst.num_agents();
        self.ensure(nl);
        self.clear();
        let session = inst.session(s);

        // --- Traffic accounting (constraints (5)/(6) and x_ls). ---------
        for &u in session.users() {
            let a_u = view.agent_of_user(u);
            let upstream = inst.user(u).upstream();
            let k_up = inst.kappa(upstream);

            touch(&mut self.load.touched, &mut self.mark, a_u.index());
            // Last-mile upstream: u pushes its stream into its agent.
            self.load.download[a_u.index()] += k_up;
            // Last-mile downstream: u's agent pushes to u every stream u
            // demands (assignment-independent, precomputed).
            self.load.upload[a_u.index()] += problem.demanded_mbps(u);

            self.accumulate_stream_flows(problem, view, u, a_u, k_up);
        }

        // Row-major cell order reproduces the dense `for k { for l }`
        // scan bitwise (each slot accumulates its terms in the same
        // order). Cells are recorded on first write, which can repeat
        // when that first write added exactly 0.0 Mbps (a zero-bitrate
        // ladder rung is legal) — dedup so no cell is folded twice.
        self.flow_cells.sort_unstable();
        self.flow_cells.dedup();
        for &(k, l) in &self.flow_cells {
            let f = self.flows[k as usize * self.nl + l as usize];
            if f > 0.0 {
                touch(&mut self.load.touched, &mut self.mark, l as usize);
                touch(&mut self.load.touched, &mut self.mark, k as usize);
                self.load.download[l as usize] += f;
                self.load.upload[k as usize] += f;
                self.load.ingress[l as usize] += f;
            }
        }

        // --- Transcoding occupancy ν_lru (constraint (7) and y_ls). -----
        // One unit per distinct (agent, src-user, target-rep) triple;
        // sort + dedup instead of the quadratic `seen.contains` scan.
        self.triples.clear();
        for &t in problem.tasks().of_session(s) {
            let task = problem.tasks().task(t);
            self.triples
                .push((view.agent_of_task(t), task.src, task.target));
        }
        self.triples.sort_unstable();
        self.triples.dedup();
        for i in 0..self.triples.len() {
            let a = self.triples[i].0;
            touch(&mut self.load.touched, &mut self.mark, a.index());
            self.load.transcode_units[a.index()] += 1;
        }

        // --- End-to-end delays d_uv (constraint (8) and F(d_s)). --------
        self.load.user_delay.resize(session.len(), 0.0);
        for (u, v) in session.flows() {
            let d = flow_delay(problem, view, u, v);
            self.load.max_flow_delay = self.load.max_flow_delay.max(d);
            // d_v = max over incoming flows u→v.
            let pos = session
                .users()
                .iter()
                .position(|&w| w == v)
                .expect("flow destination is a session member");
            self.load.user_delay[pos] = self.load.user_delay[pos].max(d);
        }

        // --- Costs (sparse: untouched agents contribute price·g(0) = 0,
        // and adding +0.0 leaves the ascending-order sum bitwise equal
        // to the dense one). ---------------------------------------------
        self.load.touched.sort_unstable();
        for &a in &self.load.touched {
            self.mark[a as usize] = false;
        }
        let cost = problem.cost();
        self.load.delay_cost = cost.delay.cost(&self.load.user_delay);
        self.load.traffic_cost = self
            .load
            .touched
            .iter()
            .map(|&l| {
                inst.agent(AgentId::from(l as usize)).price_per_mbps()
                    * cost.bandwidth.cost(self.load.ingress[l as usize])
            })
            .sum();
        self.load.transcode_cost = self
            .load
            .touched
            .iter()
            .map(|&l| {
                inst.agent(AgentId::from(l as usize)).price_per_task()
                    * cost
                        .transcode
                        .cost(f64::from(self.load.transcode_units[l as usize]))
            })
            .sum();
        self.load.phi = cost.weights.combine(
            self.load.delay_cost,
            self.load.traffic_cost,
            self.load.transcode_cost,
        );
        &self.load
    }

    /// Accumulates the three `μ_klu` terms for user `u`'s stream.
    fn accumulate_stream_flows<V: AssignmentView>(
        &mut self,
        problem: &UapProblem,
        view: &V,
        u: UserId,
        a_u: AgentId,
        k_up: f64,
    ) {
        let inst = problem.instance();
        let tasks_u = problem.tasks().of_source(u);
        let nl = self.nl;
        let flows = &mut self.flows;
        let flow_cells = &mut self.flow_cells;

        // T_u: agents transcoding u's stream (ν′_lu = 1).
        self.transcoders.clear();
        for &t in tasks_u {
            let a = view.agent_of_task(t);
            if !self.transcoders.contains(&a) {
                self.transcoders.push(a);
            }
        }

        // Term 1: raw upstream from u's agent to every transcoding agent.
        for &l in &self.transcoders {
            if l != a_u {
                flow_add(flows, flow_cells, nl, a_u, l, k_up);
            }
        }

        // Term 2: raw upstream to agents hosting un-transcoded destinations
        // (θ_uv = 0), unless the agent already receives it for transcoding.
        self.raw_dests.clear();
        for v in inst.participants(u) {
            if !inst.theta(u, v) {
                let a_v = view.agent_of_user(v);
                if a_v != a_u && !self.transcoders.contains(&a_v) && !self.raw_dests.contains(&a_v)
                {
                    self.raw_dests.push(a_v);
                }
            }
        }
        for &l in &self.raw_dests {
            flow_add(flows, flow_cells, nl, a_u, l, k_up);
        }

        // Term 3: transcoded streams from their transcoder(s) to the agents
        // hosting destinations that demand them. The paper's (1−λ_lu) factor
        // skips deliveries back to u's own agent.
        self.reps.clear();
        for &t in tasks_u {
            let r = problem.tasks().task(t).target;
            if !self.reps.contains(&r) {
                self.reps.push(r);
            }
        }
        for i in 0..self.reps.len() {
            let r = self.reps[i];
            let k_r = inst.kappa(r);
            self.transcoders_r.clear();
            self.dest_agents_r.clear();
            for &t in tasks_u {
                let task = problem.tasks().task(t);
                if task.target != r {
                    continue;
                }
                let ta = view.agent_of_task(t);
                if !self.transcoders_r.contains(&ta) {
                    self.transcoders_r.push(ta);
                }
                let da = view.agent_of_user(task.dst);
                if da != a_u && !self.dest_agents_r.contains(&da) {
                    self.dest_agents_r.push(da);
                }
            }
            for &l in &self.dest_agents_r {
                for &k in &self.transcoders_r {
                    if k != l {
                        flow_add(flows, flow_cells, nl, k, l, k_r);
                    }
                }
            }
        }
    }
}

/// Marks agent `i` as touched (idempotent).
#[inline]
fn touch(touched: &mut Vec<u32>, mark: &mut [bool], i: usize) {
    if !mark[i] {
        mark[i] = true;
        touched.push(i as u32);
    }
}

/// Adds `mbps` to the flow cell `from → to`, recording the cell on its
/// first (zero → nonzero) write.
#[inline]
fn flow_add(
    flows: &mut [f64],
    cells: &mut Vec<(u32, u32)>,
    nl: usize,
    from: AgentId,
    to: AgentId,
    mbps: f64,
) {
    let idx = from.index() * nl + to.index();
    if flows[idx] == 0.0 {
        cells.push((from.index() as u32, to.index() as u32));
    }
    flows[idx] += mbps;
}

/// End-to-end delay of the flow `u → v` (Sec. III-C):
/// `H_{a(u),u} + H_{a(v),v}` plus either the direct hop `D_{a(u),a(v)}`
/// (no transcoding) or the relay through the transcoder `l` with its
/// latency: `D_{l,a(u)} + D_{l,a(v)} + σ_l(r^u_u, r^d_{vu})`.
pub fn flow_delay<V: AssignmentView>(
    problem: &UapProblem,
    assignment: &V,
    u: UserId,
    v: UserId,
) -> f64 {
    flow_delay_breakdown(problem, assignment, u, v).total()
}

/// The additive components of one flow's end-to-end delay — useful for
/// diagnosing *where* an assignment loses its delay budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayBreakdown {
    /// `H_{a(u),u}`: source last mile (ms).
    pub source_last_mile_ms: f64,
    /// `H_{a(v),v}`: destination last mile (ms).
    pub destination_last_mile_ms: f64,
    /// Inter-agent propagation: `D_{a(u),a(v)}` directly, or
    /// `D_{l,a(u)} + D_{l,a(v)}` through the transcoder (ms).
    pub inter_agent_ms: f64,
    /// `σ_l(r^u_u, r^d_{vu})` when the flow is transcoded, else 0 (ms).
    pub transcode_ms: f64,
}

impl DelayBreakdown {
    /// The flow's total end-to-end delay `d_uv` (ms).
    pub fn total(&self) -> f64 {
        self.source_last_mile_ms
            + self.destination_last_mile_ms
            + self.inter_agent_ms
            + self.transcode_ms
    }
}

/// Computes the delay components of the flow `u → v`.
pub fn flow_delay_breakdown<V: AssignmentView>(
    problem: &UapProblem,
    assignment: &V,
    u: UserId,
    v: UserId,
) -> DelayBreakdown {
    let inst = problem.instance();
    let a_u = assignment.agent_of_user(u);
    let a_v = assignment.agent_of_user(v);
    let (inter_agent_ms, transcode_ms) = match problem.tasks().find(u, v) {
        Some(t) => {
            let l = assignment.agent_of_task(t);
            let task = problem.tasks().task(t);
            (
                inst.d_ms(l, a_u) + inst.d_ms(l, a_v),
                inst.sigma_ms(l, inst.user(u).upstream(), task.target),
            )
        }
        None => (inst.d_ms(a_u, a_v), 0.0),
    };
    DelayBreakdown {
        source_last_mile_ms: inst.h_ms(a_u, u),
        destination_last_mile_ms: inst.h_ms(a_v, v),
        inter_agent_ms,
        transcode_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{three_agent_problem, two_agent_problem};
    use crate::{Assignment, TaskId};
    use vc_model::AgentId;

    const A: AgentId = AgentId::new(0);
    const B: AgentId = AgentId::new(1);
    const C: AgentId = AgentId::new(2);
    const S0: SessionId = SessionId::new(0);

    /// Hand-computed reference for the two-agent fixture:
    /// u0 (720p up, wants 360p of all) on A; u1 (360p up, wants 360p) on B;
    /// the single task (u0→u1, 360p) on A.
    #[test]
    fn two_agent_source_transcoding_numbers() {
        let p = two_agent_problem();
        let mut asg = Assignment::all_to_agent(&p, A);
        asg.set_user(UserId::new(1), B);
        // Task stays on A (source agent).
        let load = evaluate_session(&p, &asg, S0);

        // Flows: A→B carries transcoded 360p (1 Mbps); B→A carries u1's raw
        // 360p for u0 (1 Mbps).
        assert!((load.ingress[A.index()] - 1.0).abs() < 1e-12);
        assert!((load.ingress[B.index()] - 1.0).abs() < 1e-12);
        assert!((load.total_ingress_mbps() - 2.0).abs() < 1e-12);

        // Download: A gets u0's 5 Mbps upstream + 1 Mbps from B = 6.
        //           B gets u1's 1 Mbps upstream + 1 Mbps from A = 2.
        assert!((load.download[A.index()] - 6.0).abs() < 1e-12);
        assert!((load.download[B.index()] - 2.0).abs() < 1e-12);

        // Upload: A pushes 1 Mbps (last-mile to u0) + 1 Mbps egress = 2.
        //         B pushes 1 Mbps (last-mile to u1) + 1 Mbps egress = 2.
        assert!((load.upload[A.index()] - 2.0).abs() < 1e-12);
        assert!((load.upload[B.index()] - 2.0).abs() < 1e-12);

        // One transcoding unit, on A.
        assert_eq!(load.transcode_units, vec![1, 0]);

        // Delays: u0→u1 via transcoder A: 10 + 5 + 0 + 40 + σ_A(5,1)=22 → 77.
        //         u1→u0 direct: 5 + 10 + 40 = 55.
        assert!((load.max_flow_delay - 77.0).abs() < 1e-9);
        assert!((load.user_delay[0] - 55.0).abs() < 1e-9); // u0 receives
        assert!((load.user_delay[1] - 77.0).abs() < 1e-9); // u1 receives
        assert!((load.delay_cost - 66.0).abs() < 1e-9);

        // Linear unit-price costs: traffic 2, transcode 1.
        assert!((load.traffic_cost - 2.0).abs() < 1e-12);
        assert!((load.transcode_cost - 1.0).abs() < 1e-12);
    }

    /// Moving the task to the destination agent ships the raw 5 Mbps
    /// instead of the transcoded 1 Mbps.
    #[test]
    fn destination_transcoding_ships_raw_stream() {
        let p = two_agent_problem();
        let mut asg = Assignment::all_to_agent(&p, A);
        asg.set_user(UserId::new(1), B);
        asg.set_task(TaskId::new(0), B);
        let load = evaluate_session(&p, &asg, S0);
        // A→B: raw 720p (5 Mbps) for transcoding at B; no transcoded
        // delivery needed (destination is local to B).
        assert!((load.ingress[B.index()] - 5.0).abs() < 1e-12);
        assert!((load.ingress[A.index()] - 1.0).abs() < 1e-12);
        assert_eq!(load.transcode_units, vec![0, 1]);
        // Delay u0→u1 via B: 10 + 5 + D[B,A]=40 + D[B,B]=0 + σ_B(5,1).
        // B's speed factor is 2.0 → σ = 44; total 99.
        assert!((load.max_flow_delay - 99.0).abs() < 1e-9);
    }

    /// With both users on one agent and the task there too, no inter-agent
    /// traffic exists at all.
    #[test]
    fn colocated_session_has_zero_traffic() {
        let p = two_agent_problem();
        let asg = Assignment::all_to_agent(&p, A);
        let load = evaluate_session(&p, &asg, S0);
        assert_eq!(load.total_ingress_mbps(), 0.0);
        assert!((load.download[A.index()] - 6.0).abs() < 1e-12); // 5 + 1 upstreams
        assert_eq!(load.transcode_units, vec![1, 0]);
        // Delays: u0→u1: 10 + 25 + 0 + 0 + 22 = 57; u1→u0: 25 + 10 = 35.
        assert!((load.max_flow_delay - 57.0).abs() < 1e-9);
    }

    /// Tertiary-agent transcoding: stream relays via the transcoder, and
    /// both legs of traffic exist.
    #[test]
    fn tertiary_transcoding_relays_via_agent() {
        let p = three_agent_problem();
        let mut asg = Assignment::all_to_agent(&p, A);
        asg.set_user(UserId::new(1), B);
        asg.set_task(TaskId::new(0), C);
        let load = evaluate_session(&p, &asg, S0);
        // A→C raw 5 Mbps; C→B transcoded 1 Mbps; B→A raw 1 Mbps (u1's stream).
        assert!((load.ingress[C.index()] - 5.0).abs() < 1e-12);
        assert!((load.ingress[B.index()] - 1.0).abs() < 1e-12);
        assert!((load.ingress[A.index()] - 1.0).abs() < 1e-12);
        assert_eq!(load.transcode_units, vec![0, 0, 1]);
        // Delay u0→u1 via C: H[A,u0]=10 + H[B,u1]=5 + D[C,A]=30 + D[C,B]=20 + σ_C(5,1)=22 → 87.
        assert!((load.max_flow_delay - 87.0).abs() < 1e-9);
    }

    /// Two destinations demanding the same representation hosted on the
    /// same agent receive one shared transcoded stream (the max-, not
    /// sum-, semantics of the paper's μ formula).
    #[test]
    fn shared_transcoded_delivery_counted_once() {
        let p = three_agent_problem_with_two_destinations();
        let mut asg = Assignment::all_to_agent(&p, A);
        asg.set_user(UserId::new(1), B);
        asg.set_user(UserId::new(2), B);
        // Both tasks (u0→u1, u0→u2, target 360p) transcoded at A.
        let load = evaluate_session(&p, &asg, S0);
        // A→B: one transcoded 360p stream, shared: 1 Mbps (not 2).
        assert!((load.ingress[B.index()] - 1.0).abs() < 1e-12);
        // B→A: u1's and u2's raw 360p streams for u0: 2 Mbps.
        assert!((load.ingress[A.index()] - 2.0).abs() < 1e-12);
        // One transcoding unit at A: same (u0, 360p) pair for both dests.
        assert_eq!(load.transcode_units, vec![1, 0, 0]);
    }

    /// u0 produces 720p and demands 360p; u1/u2 produce 360p and demand
    /// 360p. Tasks: (u0→u1, 360p) and (u0→u2, 360p) only.
    fn three_agent_problem_with_two_destinations() -> UapProblem {
        use vc_cost::CostModel;
        use vc_model::{AgentSpec, InstanceBuilder, ReprLadder};
        let ladder = ReprLadder::standard_four();
        let r360 = ladder.by_name("360p").unwrap().id();
        let r720 = ladder.by_name("720p").unwrap().id();
        let mut b = InstanceBuilder::new(ladder);
        b.add_agent(AgentSpec::builder("a").build());
        b.add_agent(AgentSpec::builder("b").build());
        b.add_agent(AgentSpec::builder("c").build());
        let s = b.add_session();
        b.add_user(s, r720, r360); // u0: source of the transcoded flows
        b.add_user(s, r360, r360); // u1: wants 360p of u0 → task
        b.add_user(s, r360, r360); // u2: wants 360p of u0 → task
        b.symmetric_delays(|_, _| 10.0, |_, _| 5.0);
        UapProblem::new(b.build().unwrap(), CostModel::paper_default())
    }

    #[test]
    fn delay_breakdown_components_sum_to_flow_delay() {
        let p = two_agent_problem();
        let mut asg = Assignment::all_to_agent(&p, A);
        asg.set_user(UserId::new(1), B);
        let bd = flow_delay_breakdown(&p, &asg, UserId::new(0), UserId::new(1));
        // Transcoded flow via A: last miles 10 + 5, relay 0 + 40, σ 22.
        assert_eq!(bd.source_last_mile_ms, 10.0);
        assert_eq!(bd.destination_last_mile_ms, 5.0);
        assert_eq!(bd.inter_agent_ms, 40.0);
        assert!((bd.transcode_ms - 22.0).abs() < 1e-9);
        assert!((bd.total() - flow_delay(&p, &asg, UserId::new(0), UserId::new(1))).abs() < 1e-12);
        // Raw reverse flow: no transcode component.
        let raw = flow_delay_breakdown(&p, &asg, UserId::new(1), UserId::new(0));
        assert_eq!(raw.transcode_ms, 0.0);
        assert_eq!(raw.inter_agent_ms, 40.0);
    }

    /// The μ formula's (1−λ_lu) factor: a transcoded stream is not shipped
    /// back to the source's own agent even if a destination lives there.
    #[test]
    fn no_transcoded_delivery_back_to_source_agent() {
        let p = three_agent_problem_with_two_destinations();
        let mut asg = Assignment::all_to_agent(&p, A);
        // u0 and u1 stay on A (a destination co-located with the source);
        // u2 on B; both tasks transcoded at B.
        asg.set_user(UserId::new(2), B);
        asg.set_task(TaskId::new(0), B);
        asg.set_task(TaskId::new(1), B);
        let load = evaluate_session(&p, &asg, S0);
        // Into B: raw 5 Mbps (u0's stream for transcoding at B)
        //       + 1 Mbps (u1's raw stream for u2) = 6.
        // Into A: u2's raw stream shared by u0 and u1 = 1 Mbps. The
        // transcoded 360p of u0 is NOT shipped back to A for u1 — the
        // (1−λ_lu) factor in the paper's μ definition excludes it.
        assert!((load.ingress[B.index()] - 6.0).abs() < 1e-12);
        assert!((load.ingress[A.index()] - 1.0).abs() < 1e-12);
        // Both tasks share one (u0, 360p) unit at B.
        assert_eq!(load.transcode_units, vec![0, 1, 0]);
    }
}
