//! Per-session evaluation: traffic accounting `μ_klu`, transcoding
//! occupancy `ν_lru`, end-to-end delays `d_uv`, and the local objective
//! `Φ_s`.
//!
//! This module is a line-by-line transcription of Sec. III-B/III-C:
//!
//! * **`μ_klu`** (download traffic at agent `l` receiving via agent `k`
//!   the stream originated by `u`) has three terms: (1) the raw upstream
//!   shipped from `u`'s agent to every agent transcoding `u`'s stream;
//!   (2) the raw upstream shipped to agents hosting destinations that
//!   want it un-transcoded (skipped when the agent already receives the
//!   stream for transcoding — the paper's `(1−ν′_lu)` factor); (3) each
//!   transcoded representation shipped from its transcoder(s) to the
//!   agents hosting destinations demanding it (skipped when the
//!   destination agent is `u`'s own agent — the paper's `(1−λ_lu)`
//!   factor).
//! * **`ν_lru`** occupies one transcoding unit per *distinct* `(u, r)`
//!   pair at an agent regardless of the number of destinations.
//! * **`d_uv`** sums the two last-mile hops, the inter-agent hop(s) —
//!   through the transcoding agent when `θ_uv = 1` — and the transcoding
//!   latency `σ_l` (counted once; the paper's printed formula nests σ
//!   inside the `Σ_k`, an evident typo).

use crate::{Assignment, UapProblem};
use vc_model::{AgentId, ReprId, SessionId, UserId};

/// Everything the optimizer needs to know about one session under one
/// assignment: per-agent resource loads, inter-agent ingress `x_ls`,
/// transcoding occupancy `y_ls`, per-user delays `d_u`, and the weighted
/// local objective `Φ_s`.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionLoad {
    /// Per-agent download load (Mbps): last-mile upstreams + inter-agent ingress.
    pub download: Vec<f64>,
    /// Per-agent upload load (Mbps): last-mile downstreams + inter-agent egress.
    pub upload: Vec<f64>,
    /// `x_ls`: inter-agent ingress per agent (Mbps), the argument of `g_l`.
    pub ingress: Vec<f64>,
    /// `y_ls`: transcoding units occupied per agent (distinct `(u, r)` pairs).
    pub transcode_units: Vec<u32>,
    /// `d_u` per session participant (same order as `session.users()`):
    /// the worst delay `u` experiences *receiving* from the others.
    pub user_delay: Vec<f64>,
    /// `max_{u,v} d_uv` over all flows of the session (constraint (8) check).
    pub max_flow_delay: f64,
    /// `F(d_s)`.
    pub delay_cost: f64,
    /// `G(x_s) = Σ_l price_l · g(x_ls)`.
    pub traffic_cost: f64,
    /// `H(y_s) = Σ_l price_l · h(y_ls)`.
    pub transcode_cost: f64,
    /// `Φ_s = α1·F + α2·G + α3·H`.
    pub phi: f64,
}

impl SessionLoad {
    /// A zeroed load (used for inactive sessions).
    pub fn empty(num_agents: usize) -> Self {
        Self {
            download: vec![0.0; num_agents],
            upload: vec![0.0; num_agents],
            ingress: vec![0.0; num_agents],
            transcode_units: vec![0; num_agents],
            user_delay: Vec::new(),
            max_flow_delay: 0.0,
            delay_cost: 0.0,
            traffic_cost: 0.0,
            transcode_cost: 0.0,
            phi: 0.0,
        }
    }

    /// Total inter-agent traffic of the session (Σ_l x_ls, Mbps) — the
    /// quantity the paper reports as "inter-agent traffic".
    pub fn total_ingress_mbps(&self) -> f64 {
        self.ingress.iter().sum()
    }
}

/// Evaluates session `s` under `assignment`, computing all loads, delays
/// and costs from scratch.
///
/// # Panics
///
/// Panics if `s` is out of range for the problem's instance.
pub fn evaluate_session(
    problem: &UapProblem,
    assignment: &Assignment,
    s: SessionId,
) -> SessionLoad {
    let inst = problem.instance();
    let nl = inst.num_agents();
    let session = inst.session(s);
    let mut flows = FlowMatrix::new(nl);
    let mut load = SessionLoad::empty(nl);

    // --- Traffic accounting (constraints (5)/(6) and x_ls). -------------
    for &u in session.users() {
        let a_u = assignment.agent_of_user(u);
        let upstream = inst.user(u).upstream();
        let k_up = inst.kappa(upstream);

        // Last-mile upstream: u pushes its stream into its agent.
        load.download[a_u.index()] += k_up;
        // Last-mile downstream: u's agent pushes to u every stream u demands.
        let demanded: f64 = inst
            .participants(u)
            .map(|v| inst.kappa(inst.user(u).downstream_from(v)))
            .sum();
        load.upload[a_u.index()] += demanded;

        accumulate_stream_flows(problem, assignment, u, a_u, k_up, &mut flows);
    }

    for k in 0..nl {
        for l in 0..nl {
            if k == l {
                continue;
            }
            let f = flows.get(k, l);
            if f > 0.0 {
                load.download[l] += f;
                load.upload[k] += f;
                load.ingress[l] += f;
            }
        }
    }

    // --- Transcoding occupancy ν_lru (constraint (7) and y_ls). ---------
    // One unit per distinct (agent, src-user, target-rep) triple.
    let mut seen: Vec<(AgentId, UserId, ReprId)> = Vec::new();
    for &t in problem.tasks().of_session(s) {
        let task = problem.tasks().task(t);
        let triple = (assignment.agent_of_task(t), task.src, task.target);
        if !seen.contains(&triple) {
            seen.push(triple);
            load.transcode_units[triple.0.index()] += 1;
        }
    }

    // --- End-to-end delays d_uv (constraint (8) and F(d_s)). ------------
    load.user_delay = vec![0.0; session.len()];
    for (u, v) in session.flows() {
        let d = flow_delay(problem, assignment, u, v);
        load.max_flow_delay = load.max_flow_delay.max(d);
        // d_v = max over incoming flows u→v.
        let pos = session
            .users()
            .iter()
            .position(|&w| w == v)
            .expect("flow destination is a session member");
        load.user_delay[pos] = load.user_delay[pos].max(d);
    }

    // --- Costs. ----------------------------------------------------------
    let cost = problem.cost();
    load.delay_cost = cost.delay.cost(&load.user_delay);
    load.traffic_cost = (0..nl)
        .map(|l| {
            inst.agent(AgentId::from(l)).price_per_mbps() * cost.bandwidth.cost(load.ingress[l])
        })
        .sum();
    load.transcode_cost = (0..nl)
        .map(|l| {
            inst.agent(AgentId::from(l)).price_per_task()
                * cost.transcode.cost(f64::from(load.transcode_units[l]))
        })
        .sum();
    load.phi = cost
        .weights
        .combine(load.delay_cost, load.traffic_cost, load.transcode_cost);
    load
}

/// End-to-end delay of the flow `u → v` (Sec. III-C):
/// `H_{a(u),u} + H_{a(v),v}` plus either the direct hop `D_{a(u),a(v)}`
/// (no transcoding) or the relay through the transcoder `l` with its
/// latency: `D_{l,a(u)} + D_{l,a(v)} + σ_l(r^u_u, r^d_{vu})`.
pub fn flow_delay(problem: &UapProblem, assignment: &Assignment, u: UserId, v: UserId) -> f64 {
    flow_delay_breakdown(problem, assignment, u, v).total()
}

/// The additive components of one flow's end-to-end delay — useful for
/// diagnosing *where* an assignment loses its delay budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayBreakdown {
    /// `H_{a(u),u}`: source last mile (ms).
    pub source_last_mile_ms: f64,
    /// `H_{a(v),v}`: destination last mile (ms).
    pub destination_last_mile_ms: f64,
    /// Inter-agent propagation: `D_{a(u),a(v)}` directly, or
    /// `D_{l,a(u)} + D_{l,a(v)}` through the transcoder (ms).
    pub inter_agent_ms: f64,
    /// `σ_l(r^u_u, r^d_{vu})` when the flow is transcoded, else 0 (ms).
    pub transcode_ms: f64,
}

impl DelayBreakdown {
    /// The flow's total end-to-end delay `d_uv` (ms).
    pub fn total(&self) -> f64 {
        self.source_last_mile_ms
            + self.destination_last_mile_ms
            + self.inter_agent_ms
            + self.transcode_ms
    }
}

/// Computes the delay components of the flow `u → v`.
pub fn flow_delay_breakdown(
    problem: &UapProblem,
    assignment: &Assignment,
    u: UserId,
    v: UserId,
) -> DelayBreakdown {
    let inst = problem.instance();
    let a_u = assignment.agent_of_user(u);
    let a_v = assignment.agent_of_user(v);
    let (inter_agent_ms, transcode_ms) = match problem.tasks().find(u, v) {
        Some(t) => {
            let l = assignment.agent_of_task(t);
            let task = problem.tasks().task(t);
            (
                inst.d_ms(l, a_u) + inst.d_ms(l, a_v),
                inst.sigma_ms(l, inst.user(u).upstream(), task.target),
            )
        }
        None => (inst.d_ms(a_u, a_v), 0.0),
    };
    DelayBreakdown {
        source_last_mile_ms: inst.h_ms(a_u, u),
        destination_last_mile_ms: inst.h_ms(a_v, v),
        inter_agent_ms,
        transcode_ms,
    }
}

/// Dense `L×L` inter-agent flow matrix (`flows[k][l]` = Mbps from `k` to `l`).
struct FlowMatrix {
    nl: usize,
    data: Vec<f64>,
}

impl FlowMatrix {
    fn new(nl: usize) -> Self {
        Self {
            nl,
            data: vec![0.0; nl * nl],
        }
    }

    #[inline]
    fn add(&mut self, from: AgentId, to: AgentId, mbps: f64) {
        self.data[from.index() * self.nl + to.index()] += mbps;
    }

    #[inline]
    fn get(&self, from: usize, to: usize) -> f64 {
        self.data[from * self.nl + to]
    }
}

/// Accumulates the three `μ_klu` terms for user `u`'s stream.
fn accumulate_stream_flows(
    problem: &UapProblem,
    assignment: &Assignment,
    u: UserId,
    a_u: AgentId,
    k_up: f64,
    flows: &mut FlowMatrix,
) {
    let inst = problem.instance();
    let tasks_u = problem.tasks().of_source(u);

    // T_u: agents transcoding u's stream (ν′_lu = 1).
    let mut transcoder_agents: Vec<AgentId> = Vec::new();
    for &t in tasks_u {
        let a = assignment.agent_of_task(t);
        if !transcoder_agents.contains(&a) {
            transcoder_agents.push(a);
        }
    }

    // Term 1: raw upstream from u's agent to every transcoding agent.
    for &l in &transcoder_agents {
        if l != a_u {
            flows.add(a_u, l, k_up);
        }
    }

    // Term 2: raw upstream to agents hosting un-transcoded destinations
    // (θ_uv = 0), unless the agent already receives it for transcoding.
    let mut raw_dest_agents: Vec<AgentId> = Vec::new();
    for v in inst.participants(u) {
        if !inst.theta(u, v) {
            let a_v = assignment.agent_of_user(v);
            if a_v != a_u && !transcoder_agents.contains(&a_v) && !raw_dest_agents.contains(&a_v) {
                raw_dest_agents.push(a_v);
            }
        }
    }
    for &l in &raw_dest_agents {
        flows.add(a_u, l, k_up);
    }

    // Term 3: transcoded streams from their transcoder(s) to the agents
    // hosting destinations that demand them. The paper's (1−λ_lu) factor
    // skips deliveries back to u's own agent.
    let mut reps: Vec<ReprId> = Vec::new();
    for &t in tasks_u {
        let r = problem.tasks().task(t).target;
        if !reps.contains(&r) {
            reps.push(r);
        }
    }
    for r in reps {
        let k_r = inst.kappa(r);
        let mut transcoders_r: Vec<AgentId> = Vec::new();
        let mut dest_agents_r: Vec<AgentId> = Vec::new();
        for &t in tasks_u {
            let task = problem.tasks().task(t);
            if task.target != r {
                continue;
            }
            let ta = assignment.agent_of_task(t);
            if !transcoders_r.contains(&ta) {
                transcoders_r.push(ta);
            }
            let da = assignment.agent_of_user(task.dst);
            if da != a_u && !dest_agents_r.contains(&da) {
                dest_agents_r.push(da);
            }
        }
        for &l in &dest_agents_r {
            for &k in &transcoders_r {
                if k != l {
                    flows.add(k, l, k_r);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{three_agent_problem, two_agent_problem};
    use crate::{Assignment, TaskId};
    use vc_model::AgentId;

    const A: AgentId = AgentId::new(0);
    const B: AgentId = AgentId::new(1);
    const C: AgentId = AgentId::new(2);
    const S0: SessionId = SessionId::new(0);

    /// Hand-computed reference for the two-agent fixture:
    /// u0 (720p up, wants 360p of all) on A; u1 (360p up, wants 360p) on B;
    /// the single task (u0→u1, 360p) on A.
    #[test]
    fn two_agent_source_transcoding_numbers() {
        let p = two_agent_problem();
        let mut asg = Assignment::all_to_agent(&p, A);
        asg.set_user(UserId::new(1), B);
        // Task stays on A (source agent).
        let load = evaluate_session(&p, &asg, S0);

        // Flows: A→B carries transcoded 360p (1 Mbps); B→A carries u1's raw
        // 360p for u0 (1 Mbps).
        assert!((load.ingress[A.index()] - 1.0).abs() < 1e-12);
        assert!((load.ingress[B.index()] - 1.0).abs() < 1e-12);
        assert!((load.total_ingress_mbps() - 2.0).abs() < 1e-12);

        // Download: A gets u0's 5 Mbps upstream + 1 Mbps from B = 6.
        //           B gets u1's 1 Mbps upstream + 1 Mbps from A = 2.
        assert!((load.download[A.index()] - 6.0).abs() < 1e-12);
        assert!((load.download[B.index()] - 2.0).abs() < 1e-12);

        // Upload: A pushes 1 Mbps (last-mile to u0) + 1 Mbps egress = 2.
        //         B pushes 1 Mbps (last-mile to u1) + 1 Mbps egress = 2.
        assert!((load.upload[A.index()] - 2.0).abs() < 1e-12);
        assert!((load.upload[B.index()] - 2.0).abs() < 1e-12);

        // One transcoding unit, on A.
        assert_eq!(load.transcode_units, vec![1, 0]);

        // Delays: u0→u1 via transcoder A: 10 + 5 + 0 + 40 + σ_A(5,1)=22 → 77.
        //         u1→u0 direct: 5 + 10 + 40 = 55.
        assert!((load.max_flow_delay - 77.0).abs() < 1e-9);
        assert!((load.user_delay[0] - 55.0).abs() < 1e-9); // u0 receives
        assert!((load.user_delay[1] - 77.0).abs() < 1e-9); // u1 receives
        assert!((load.delay_cost - 66.0).abs() < 1e-9);

        // Linear unit-price costs: traffic 2, transcode 1.
        assert!((load.traffic_cost - 2.0).abs() < 1e-12);
        assert!((load.transcode_cost - 1.0).abs() < 1e-12);
    }

    /// Moving the task to the destination agent ships the raw 5 Mbps
    /// instead of the transcoded 1 Mbps.
    #[test]
    fn destination_transcoding_ships_raw_stream() {
        let p = two_agent_problem();
        let mut asg = Assignment::all_to_agent(&p, A);
        asg.set_user(UserId::new(1), B);
        asg.set_task(TaskId::new(0), B);
        let load = evaluate_session(&p, &asg, S0);
        // A→B: raw 720p (5 Mbps) for transcoding at B; no transcoded
        // delivery needed (destination is local to B).
        assert!((load.ingress[B.index()] - 5.0).abs() < 1e-12);
        assert!((load.ingress[A.index()] - 1.0).abs() < 1e-12);
        assert_eq!(load.transcode_units, vec![0, 1]);
        // Delay u0→u1 via B: 10 + 5 + D[B,A]=40 + D[B,B]=0 + σ_B(5,1).
        // B's speed factor is 2.0 → σ = 44; total 99.
        assert!((load.max_flow_delay - 99.0).abs() < 1e-9);
    }

    /// With both users on one agent and the task there too, no inter-agent
    /// traffic exists at all.
    #[test]
    fn colocated_session_has_zero_traffic() {
        let p = two_agent_problem();
        let asg = Assignment::all_to_agent(&p, A);
        let load = evaluate_session(&p, &asg, S0);
        assert_eq!(load.total_ingress_mbps(), 0.0);
        assert!((load.download[A.index()] - 6.0).abs() < 1e-12); // 5 + 1 upstreams
        assert_eq!(load.transcode_units, vec![1, 0]);
        // Delays: u0→u1: 10 + 25 + 0 + 0 + 22 = 57; u1→u0: 25 + 10 = 35.
        assert!((load.max_flow_delay - 57.0).abs() < 1e-9);
    }

    /// Tertiary-agent transcoding: stream relays via the transcoder, and
    /// both legs of traffic exist.
    #[test]
    fn tertiary_transcoding_relays_via_agent() {
        let p = three_agent_problem();
        let mut asg = Assignment::all_to_agent(&p, A);
        asg.set_user(UserId::new(1), B);
        asg.set_task(TaskId::new(0), C);
        let load = evaluate_session(&p, &asg, S0);
        // A→C raw 5 Mbps; C→B transcoded 1 Mbps; B→A raw 1 Mbps (u1's stream).
        assert!((load.ingress[C.index()] - 5.0).abs() < 1e-12);
        assert!((load.ingress[B.index()] - 1.0).abs() < 1e-12);
        assert!((load.ingress[A.index()] - 1.0).abs() < 1e-12);
        assert_eq!(load.transcode_units, vec![0, 0, 1]);
        // Delay u0→u1 via C: H[A,u0]=10 + H[B,u1]=5 + D[C,A]=30 + D[C,B]=20 + σ_C(5,1)=22 → 87.
        assert!((load.max_flow_delay - 87.0).abs() < 1e-9);
    }

    /// Two destinations demanding the same representation hosted on the
    /// same agent receive one shared transcoded stream (the max-, not
    /// sum-, semantics of the paper's μ formula).
    #[test]
    fn shared_transcoded_delivery_counted_once() {
        let p = three_agent_problem_with_two_destinations();
        let mut asg = Assignment::all_to_agent(&p, A);
        asg.set_user(UserId::new(1), B);
        asg.set_user(UserId::new(2), B);
        // Both tasks (u0→u1, u0→u2, target 360p) transcoded at A.
        let load = evaluate_session(&p, &asg, S0);
        // A→B: one transcoded 360p stream, shared: 1 Mbps (not 2).
        assert!((load.ingress[B.index()] - 1.0).abs() < 1e-12);
        // B→A: u1's and u2's raw 360p streams for u0: 2 Mbps.
        assert!((load.ingress[A.index()] - 2.0).abs() < 1e-12);
        // One transcoding unit at A: same (u0, 360p) pair for both dests.
        assert_eq!(load.transcode_units, vec![1, 0, 0]);
    }

    /// u0 produces 720p and demands 360p; u1/u2 produce 360p and demand
    /// 360p. Tasks: (u0→u1, 360p) and (u0→u2, 360p) only.
    fn three_agent_problem_with_two_destinations() -> UapProblem {
        use vc_cost::CostModel;
        use vc_model::{AgentSpec, InstanceBuilder, ReprLadder};
        let ladder = ReprLadder::standard_four();
        let r360 = ladder.by_name("360p").unwrap().id();
        let r720 = ladder.by_name("720p").unwrap().id();
        let mut b = InstanceBuilder::new(ladder);
        b.add_agent(AgentSpec::builder("a").build());
        b.add_agent(AgentSpec::builder("b").build());
        b.add_agent(AgentSpec::builder("c").build());
        let s = b.add_session();
        b.add_user(s, r720, r360); // u0: source of the transcoded flows
        b.add_user(s, r360, r360); // u1: wants 360p of u0 → task
        b.add_user(s, r360, r360); // u2: wants 360p of u0 → task
        b.symmetric_delays(|_, _| 10.0, |_, _| 5.0);
        UapProblem::new(b.build().unwrap(), CostModel::paper_default())
    }

    #[test]
    fn delay_breakdown_components_sum_to_flow_delay() {
        let p = two_agent_problem();
        let mut asg = Assignment::all_to_agent(&p, A);
        asg.set_user(UserId::new(1), B);
        let bd = flow_delay_breakdown(&p, &asg, UserId::new(0), UserId::new(1));
        // Transcoded flow via A: last miles 10 + 5, relay 0 + 40, σ 22.
        assert_eq!(bd.source_last_mile_ms, 10.0);
        assert_eq!(bd.destination_last_mile_ms, 5.0);
        assert_eq!(bd.inter_agent_ms, 40.0);
        assert!((bd.transcode_ms - 22.0).abs() < 1e-9);
        assert!((bd.total() - flow_delay(&p, &asg, UserId::new(0), UserId::new(1))).abs() < 1e-12);
        // Raw reverse flow: no transcode component.
        let raw = flow_delay_breakdown(&p, &asg, UserId::new(1), UserId::new(0));
        assert_eq!(raw.transcode_ms, 0.0);
        assert_eq!(raw.inter_agent_ms, 40.0);
    }

    /// The μ formula's (1−λ_lu) factor: a transcoded stream is not shipped
    /// back to the source's own agent even if a destination lives there.
    #[test]
    fn no_transcoded_delivery_back_to_source_agent() {
        let p = three_agent_problem_with_two_destinations();
        let mut asg = Assignment::all_to_agent(&p, A);
        // u0 and u1 stay on A (a destination co-located with the source);
        // u2 on B; both tasks transcoded at B.
        asg.set_user(UserId::new(2), B);
        asg.set_task(TaskId::new(0), B);
        asg.set_task(TaskId::new(1), B);
        let load = evaluate_session(&p, &asg, S0);
        // Into B: raw 5 Mbps (u0's stream for transcoding at B)
        //       + 1 Mbps (u1's raw stream for u2) = 6.
        // Into A: u2's raw stream shared by u0 and u1 = 1 Mbps. The
        // transcoded 360p of u0 is NOT shipped back to A for u1 — the
        // (1−λ_lu) factor in the paper's μ definition excludes it.
        assert!((load.ingress[B.index()] - 6.0).abs() < 1e-12);
        assert!((load.ingress[A.index()] - 1.0).abs() < 1e-12);
        // Both tasks share one (u0, 360p) unit at B.
        assert_eq!(load.transcode_units, vec![0, 1, 0]);
    }
}
