//! Transcoding tasks derived from the transcoding matrix `θ`.
//!
//! For every directed flow `u→v` inside a session with `θ_{uv} = 1`
//! (i.e. `r^d_{vu} ≠ r^u_u`), constraint (3) requires exactly one agent to
//! transcode `u`'s upstream into the representation `v` demands. The
//! [`TaskTable`] enumerates those flows once, assigns them dense
//! [`TaskId`]s, and indexes them by session and by source user — the
//! latter is what the `ν_lru` occupancy computation iterates over.

use serde::{Deserialize, Serialize};
use std::fmt;
use vc_model::{Instance, ModelError, ReprId, SessionId, UserId};

/// Dense identifier of a transcoding task (a `(u, v)` flow with `θ = 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(u32);

impl TaskId {
    /// Creates a task id from a dense index.
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Dense index for vector addressing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for TaskId {
    fn from(v: usize) -> Self {
        Self(u32::try_from(v).expect("task index exceeds u32::MAX"))
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One transcoding task: convert `src`'s upstream into `target` for `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranscodeTask {
    /// Source user `u` whose stream is transcoded.
    pub src: UserId,
    /// Destination user `v` demanding the transcoded stream.
    pub dst: UserId,
    /// Target representation `r = r^d_{vu}`.
    pub target: ReprId,
}

/// Enumeration and indexing of all transcoding tasks of an instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskTable {
    tasks: Vec<TranscodeTask>,
    by_session: Vec<Vec<TaskId>>,
    by_src: Vec<Vec<TaskId>>,
}

impl TaskTable {
    /// Builds the task table by scanning every session's flows.
    pub fn build(instance: &Instance) -> Self {
        let mut tasks = Vec::new();
        let mut by_session = vec![Vec::new(); instance.num_sessions()];
        let mut by_src = vec![Vec::new(); instance.num_users()];
        for session in instance.sessions() {
            for (u, v) in session.flows() {
                if instance.theta(u, v) {
                    let id = TaskId::from(tasks.len());
                    tasks.push(TranscodeTask {
                        src: u,
                        dst: v,
                        target: instance.user(v).downstream_from(u),
                    });
                    by_session[session.id().index()].push(id);
                    by_src[u.index()].push(id);
                }
            }
        }
        Self {
            tasks,
            by_session,
            by_src,
        }
    }

    /// Extends the table for **whole sessions** registered online after
    /// the build (open-world growth): enumerates the new sessions'
    /// transcoding flows in the same session-then-flow order
    /// [`build`](Self::build) uses, so a grown table is **identical**
    /// to one built over the grown instance up front (dense ids
    /// included).
    ///
    /// Contract: only sessions past the already-covered count are
    /// scanned. Users added to an *already-covered* session (a late
    /// joiner via `Instance::register_user`) create flows this method
    /// will never see, so that case is **refused** with a typed error
    /// (see [`check_extension`](Self::check_extension)) instead of
    /// silently producing a table that misses the late joiner's tasks.
    /// `UapProblem` does not support late joiners yet (a named ROADMAP
    /// follow-up); grow the problem layer only through
    /// `UapProblem::register_session`.
    ///
    /// # Errors
    ///
    /// [`ModelError::LateJoinExtension`] if an already-covered session
    /// gained a user since the table was built/extended.
    ///
    /// # Panics
    ///
    /// Panics if the instance has fewer sessions or users than the
    /// table already covers (growth is append-only).
    pub fn extend_for_instance(&mut self, instance: &Instance) -> Result<(), ModelError> {
        self.check_extension(instance)?;
        self.extend_unchecked(instance);
        Ok(())
    }

    /// The extension proper, with the soundness scan already done —
    /// lets `UapProblem::register_session`, which must run
    /// [`check_extension`](Self::check_extension) *before* mutating its
    /// instance (all-or-nothing contract), avoid scanning twice.
    pub(crate) fn extend_unchecked(&mut self, instance: &Instance) {
        let covered = self.by_session.len();
        assert!(
            instance.num_sessions() >= covered && instance.num_users() >= self.by_src.len(),
            "task table covers more than the instance — growth is append-only"
        );
        self.by_src.resize(instance.num_users(), Vec::new());
        for session in &instance.sessions()[covered..] {
            let mut ids = Vec::new();
            for (u, v) in session.flows() {
                if instance.theta(u, v) {
                    let id = TaskId::from(self.tasks.len());
                    self.tasks.push(TranscodeTask {
                        src: u,
                        dst: v,
                        target: instance.user(v).downstream_from(u),
                    });
                    ids.push(id);
                    self.by_src[u.index()].push(id);
                }
            }
            self.by_session.push(ids);
        }
    }

    /// Verifies that append-only extension over `instance` is sound:
    /// every session the table already covers must still have exactly
    /// the users it had at coverage time. A user id at or past the
    /// covered user count inside a covered session is a late joiner
    /// (`Instance::register_user`) whose flows extension would silently
    /// miss.
    ///
    /// # Errors
    ///
    /// [`ModelError::LateJoinExtension`] naming the first mutated
    /// session.
    pub fn check_extension(&self, instance: &Instance) -> Result<(), ModelError> {
        let covered_sessions = self.by_session.len();
        let covered_users = self.by_src.len();
        for session in &instance.sessions()[..covered_sessions.min(instance.num_sessions())] {
            if session.late_joined() && session.users().iter().any(|u| u.index() >= covered_users) {
                return Err(ModelError::LateJoinExtension {
                    session: session.id(),
                });
            }
        }
        Ok(())
    }

    /// Total number of tasks (`θ_sum`).
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the instance needs no transcoding at all.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Task lookup.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn task(&self, t: TaskId) -> TranscodeTask {
        self.tasks[t.index()]
    }

    /// All task ids of a session.
    pub fn of_session(&self, s: SessionId) -> &[TaskId] {
        &self.by_session[s.index()]
    }

    /// All task ids whose source user is `u`.
    pub fn of_source(&self, u: UserId) -> &[TaskId] {
        &self.by_src[u.index()]
    }

    /// Iterator over `(TaskId, TranscodeTask)`.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, TranscodeTask)> + '_ {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (TaskId::from(i), *t))
    }

    /// The task for flow `(src, dst)`, if that flow needs transcoding.
    pub fn find(&self, src: UserId, dst: UserId) -> Option<TaskId> {
        self.by_src[src.index()]
            .iter()
            .copied()
            .find(|t| self.task(*t).dst == dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_model::{AgentSpec, DownstreamDemand, InstanceBuilder, ReprLadder};

    /// Two sessions:
    ///  s0: u0 (720p up, wants 360p) and u1 (360p up, wants 360p)
    ///      -> one task: u0→u1? No: u1 wants 360p of u0's 720p => task (u0,u1).
    ///         u0 wants 360p of u1's 360p => no task.
    ///  s1: u2, u3, u4 all 720p up; u2 wants 480p of everyone
    ///      -> tasks (u3,u2), (u4,u2).
    fn instance() -> Instance {
        let ladder = ReprLadder::standard_four();
        let r360 = ladder.by_name("360p").unwrap().id();
        let r480 = ladder.by_name("480p").unwrap().id();
        let r720 = ladder.by_name("720p").unwrap().id();
        let mut b = InstanceBuilder::new(ladder);
        b.add_agent(AgentSpec::builder("a").build());
        b.add_agent(AgentSpec::builder("b").build());
        let s0 = b.add_session();
        b.add_user(s0, r720, r360);
        b.add_user(s0, r360, r360);
        let s1 = b.add_session();
        b.add_user(s1, r720, r480);
        b.add_user(s1, r720, r720);
        b.add_user(s1, r720, r720);
        b.symmetric_delays(|_, _| 10.0, |_, _| 5.0);
        b.build().unwrap()
    }

    #[test]
    fn enumerates_expected_tasks() {
        let inst = instance();
        let table = TaskTable::build(&inst);
        assert_eq!(table.len(), 3);
        assert_eq!(table.len(), inst.theta_sum());
        assert_eq!(table.of_session(SessionId::new(0)).len(), 1);
        assert_eq!(table.of_session(SessionId::new(1)).len(), 2);
    }

    #[test]
    fn task_targets_are_destination_demands() {
        let inst = instance();
        let table = TaskTable::build(&inst);
        let r480 = inst.ladder().by_name("480p").unwrap().id();
        let t = table
            .find(UserId::new(3), UserId::new(2))
            .expect("u3→u2 needs transcoding");
        assert_eq!(table.task(t).target, r480);
        assert_eq!(table.task(t).src, UserId::new(3));
        assert_eq!(table.task(t).dst, UserId::new(2));
    }

    #[test]
    fn by_source_index_is_consistent() {
        let inst = instance();
        let table = TaskTable::build(&inst);
        for (id, task) in table.iter() {
            assert!(table.of_source(task.src).contains(&id));
        }
        // u1 produces 360p and everyone in s0 wants 360p: no tasks.
        assert!(table.of_source(UserId::new(1)).is_empty());
    }

    #[test]
    fn find_returns_none_for_raw_flows() {
        let inst = instance();
        let table = TaskTable::build(&inst);
        assert!(table.find(UserId::new(1), UserId::new(0)).is_none());
        assert!(table.find(UserId::new(3), UserId::new(4)).is_none());
    }

    #[test]
    fn no_transcode_instance_yields_empty_table() {
        let ladder = ReprLadder::standard_four();
        let r = ladder.lowest();
        let mut b = InstanceBuilder::new(ladder);
        b.add_agent(AgentSpec::builder("a").build());
        let s = b.add_session();
        b.add_user(s, r, r);
        b.add_user(s, r, r);
        b.symmetric_delays(|_, _| 1.0, |_, _| 1.0);
        let inst = b.build().unwrap();
        let table = TaskTable::build(&inst);
        assert!(table.is_empty());
    }

    #[test]
    fn demand_overrides_create_specific_tasks() {
        let ladder = ReprLadder::standard_four();
        let r720 = ladder.by_name("720p").unwrap().id();
        let r360 = ladder.by_name("360p").unwrap().id();
        let mut b = InstanceBuilder::new(ladder);
        b.add_agent(AgentSpec::builder("a").build());
        let s = b.add_session();
        let u0 = b.add_user(s, r720, r720);
        b.add_user_with_demand(
            s,
            r720,
            DownstreamDemand::uniform(r720).with_override(u0, r360),
        );
        b.symmetric_delays(|_, _| 1.0, |_, _| 1.0);
        let inst = b.build().unwrap();
        let table = TaskTable::build(&inst);
        assert_eq!(table.len(), 1);
        let t = table.task(TaskId::new(0));
        assert_eq!(t.src, u0);
        assert_eq!(t.target, r360);
    }

    #[test]
    fn late_joined_session_refuses_append_only_extension() {
        let mut inst = instance();
        let mut table = TaskTable::build(&inst);
        let r360 = inst.ladder().by_name("360p").unwrap().id();
        // A late joiner into covered session 0: extension would miss
        // the flows this user creates — it must refuse, typed.
        inst.register_user(
            SessionId::new(0),
            &vc_model::UserDef {
                upstream: r360,
                downstream: DownstreamDemand::uniform(r360),
                agent_delays_ms: vec![4.0, 5.0],
                site_index: None,
            },
        )
        .expect("model-level late join is legal");
        assert!(inst.has_late_joiners());
        let err = table.extend_for_instance(&inst).expect_err("must refuse");
        assert_eq!(
            err,
            vc_model::ModelError::LateJoinExtension {
                session: SessionId::new(0)
            }
        );
        // A rebuild from scratch covers the late joiner fine.
        let rebuilt = TaskTable::build(&inst);
        assert!(rebuilt.len() >= table.len());
        // And extension stays sound when the late joiner predates the
        // coverage: the rebuilt table extends without complaint.
        let mut rebuilt = rebuilt;
        assert!(rebuilt.check_extension(&inst).is_ok());
        assert!(rebuilt.extend_for_instance(&inst).is_ok());
    }
}
