//! Assignment state: the decision variables `λ` and `γ`.
//!
//! Constraint (1) — every user subscribes to exactly one agent — and
//! constraint (3) — every transcoding task runs at exactly one agent —
//! are enforced *structurally*: the assignment is a total map from users
//! and tasks to agents, so the binary variables `λ_lu`/`γ_lruv` of the
//! paper can never violate them.

use crate::{TaskId, UapProblem};
use serde::{Deserialize, Serialize};
use std::fmt;
use vc_model::{AgentId, UserId};

/// A complete assignment: `λ` (user → agent) and `γ` (task → agent).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Assignment {
    user_agent: Vec<AgentId>,
    task_agent: Vec<AgentId>,
}

impl Assignment {
    /// Creates an assignment from explicit maps.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths disagree with the problem dimensions.
    pub fn new(problem: &UapProblem, user_agent: Vec<AgentId>, task_agent: Vec<AgentId>) -> Self {
        assert_eq!(
            user_agent.len(),
            problem.instance().num_users(),
            "user map must cover all users"
        );
        assert_eq!(
            task_agent.len(),
            problem.tasks().len(),
            "task map must cover all tasks"
        );
        let nl = problem.instance().num_agents();
        for a in user_agent.iter().chain(task_agent.iter()) {
            assert!(a.index() < nl, "agent {a} out of range");
        }
        Self {
            user_agent,
            task_agent,
        }
    }

    /// Everyone — users and tasks — on a single agent. A trivially valid
    /// (though rarely feasible) starting point.
    pub fn all_to_agent(problem: &UapProblem, agent: AgentId) -> Self {
        Self::new(
            problem,
            vec![agent; problem.instance().num_users()],
            vec![agent; problem.tasks().len()],
        )
    }

    /// `λ(u)`: the agent user `u` subscribes to.
    #[inline]
    pub fn agent_of_user(&self, u: UserId) -> AgentId {
        self.user_agent[u.index()]
    }

    /// `γ(t)`: the agent running task `t`.
    #[inline]
    pub fn agent_of_task(&self, t: TaskId) -> AgentId {
        self.task_agent[t.index()]
    }

    /// Reassigns user `u` to `agent`.
    pub fn set_user(&mut self, u: UserId, agent: AgentId) {
        self.user_agent[u.index()] = agent;
    }

    /// Reassigns task `t` to `agent`.
    pub fn set_task(&mut self, t: TaskId, agent: AgentId) {
        self.task_agent[t.index()] = agent;
    }

    /// Applies a single-decision change, returning the previous agent.
    pub fn apply(&mut self, decision: Decision) -> AgentId {
        match decision {
            Decision::User(u, a) => std::mem::replace(&mut self.user_agent[u.index()], a),
            Decision::Task(t, a) => std::mem::replace(&mut self.task_agent[t.index()], a),
        }
    }

    /// Grows the assignment to a problem whose universe was extended
    /// online: new users and tasks start on agent 0, exactly like a
    /// fresh slot (open-world growth never moves an existing decision).
    ///
    /// # Panics
    ///
    /// Panics if the problem is *smaller* than the assignment — growth
    /// is append-only.
    pub fn grow(&mut self, problem: &UapProblem) {
        let (nu, nt) = (problem.instance().num_users(), problem.tasks().len());
        assert!(
            nu >= self.user_agent.len() && nt >= self.task_agent.len(),
            "assignment covers more than the problem — growth is append-only"
        );
        self.user_agent.resize(nu, AgentId::new(0));
        self.task_agent.resize(nt, AgentId::new(0));
    }

    /// The user→agent map.
    pub fn user_agents(&self) -> &[AgentId] {
        &self.user_agent
    }

    /// The task→agent map.
    pub fn task_agents(&self) -> &[AgentId] {
        &self.task_agent
    }

    /// Number of decisions (users + tasks) on which two assignments differ —
    /// the Hamming distance of the Markov chain's state graph.
    pub fn hamming_distance(&self, other: &Assignment) -> usize {
        assert_eq!(self.user_agent.len(), other.user_agent.len());
        assert_eq!(self.task_agent.len(), other.task_agent.len());
        let du = self
            .user_agent
            .iter()
            .zip(&other.user_agent)
            .filter(|(a, b)| a != b)
            .count();
        let dt = self
            .task_agent
            .iter()
            .zip(&other.task_agent)
            .filter(|(a, b)| a != b)
            .count();
        du + dt
    }
}

/// A single-decision change: exactly one `λ` or `γ` variable flips.
///
/// The Markov chain of Alg. 1 only links states that differ by one such
/// decision, which keeps migration overhead minimal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Decision {
    /// Move user to agent.
    User(UserId, AgentId),
    /// Move transcoding task to agent.
    Task(TaskId, AgentId),
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::User(u, a) => write!(f, "{u}→{a}"),
            Decision::Task(t, a) => write!(f, "{t}→{a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::small_problem;

    #[test]
    fn all_to_agent_is_total() {
        let p = small_problem();
        let a = Assignment::all_to_agent(&p, AgentId::new(1));
        for u in p.instance().user_ids() {
            assert_eq!(a.agent_of_user(u), AgentId::new(1));
        }
        for (t, _) in p.tasks().iter() {
            assert_eq!(a.agent_of_task(t), AgentId::new(1));
        }
    }

    #[test]
    fn apply_returns_previous_agent() {
        let p = small_problem();
        let mut a = Assignment::all_to_agent(&p, AgentId::new(0));
        let prev = a.apply(Decision::User(UserId::new(0), AgentId::new(1)));
        assert_eq!(prev, AgentId::new(0));
        assert_eq!(a.agent_of_user(UserId::new(0)), AgentId::new(1));
    }

    #[test]
    fn hamming_distance_counts_changes() {
        let p = small_problem();
        let a = Assignment::all_to_agent(&p, AgentId::new(0));
        let mut b = a.clone();
        assert_eq!(a.hamming_distance(&b), 0);
        b.apply(Decision::User(UserId::new(1), AgentId::new(1)));
        assert_eq!(a.hamming_distance(&b), 1);
        if !p.tasks().is_empty() {
            b.apply(Decision::Task(TaskId::new(0), AgentId::new(1)));
            assert_eq!(a.hamming_distance(&b), 2);
        }
    }

    #[test]
    #[should_panic(expected = "agent")]
    fn out_of_range_agent_panics() {
        let p = small_problem();
        let _ = Assignment::new(
            &p,
            vec![AgentId::new(99); p.instance().num_users()],
            vec![AgentId::new(0); p.tasks().len()],
        );
    }

    #[test]
    #[should_panic(expected = "user map")]
    fn wrong_user_len_panics() {
        let p = small_problem();
        let _ = Assignment::new(&p, vec![], vec![AgentId::new(0); p.tasks().len()]);
    }
}
