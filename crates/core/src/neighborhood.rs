//! Single-decision-change neighborhoods.
//!
//! Alg. 1 only hops between assignments differing in exactly one decision
//! variable — one user's agent or one task's agent. This module
//! enumerates those neighbors and their feasibility, which is also what
//! the complexity analysis of the paper counts: `O(|U(s)|²·L)` work per
//! HOP (ours is `O((|U(s)| + |T(s)|) · L)` candidate evaluations, each
//! re-evaluating one session).

use crate::evaluate::SessionLoad;
use crate::{Decision, SystemState};
use vc_model::{AgentId, SessionId};

/// A feasible single-decision move and the session objective it yields.
#[derive(Debug, Clone)]
pub struct Move {
    /// The decision to apply.
    pub decision: Decision,
    /// The session's local objective `Φ_s` after the move.
    pub new_phi: f64,
    /// The full evaluated load after the move (reusable on commit).
    pub new_load: SessionLoad,
}

/// Enumerates all feasible single-decision moves of session `s`: each
/// user to each other agent, each transcoding task to each other agent.
/// Moves that would violate constraints (5)–(8) are filtered out.
pub fn feasible_moves(state: &SystemState, s: SessionId) -> Vec<Move> {
    let problem = state.problem();
    let inst = problem.instance();
    let session = inst.session(s);
    let nl = inst.num_agents();
    let mut out = Vec::new();

    let consider = |decision: Decision, out: &mut Vec<Move>| {
        let (new_load, verdict) = state.candidate(decision);
        if verdict.is_ok() {
            out.push(Move {
                decision,
                new_phi: new_load.phi,
                new_load,
            });
        }
    };

    for &u in session.users() {
        let current = state.assignment().agent_of_user(u);
        for l in 0..nl {
            let l = AgentId::from(l);
            if l != current {
                consider(Decision::User(u, l), &mut out);
            }
        }
    }
    for &t in problem.tasks().of_session(s) {
        let current = state.assignment().agent_of_task(t);
        for l in 0..nl {
            let l = AgentId::from(l);
            if l != current {
                consider(Decision::Task(t, l), &mut out);
            }
        }
    }
    out
}

/// Enumerates feasible moves across **all active** sessions (used by
/// centralized baselines; Alg. 1 proper works per session).
pub fn all_feasible_moves(state: &SystemState) -> Vec<Move> {
    state
        .active_sessions()
        .flat_map(|s| feasible_moves(state, s))
        .collect()
}

/// The number of *potential* (not necessarily feasible) neighbors of
/// session `s`: `(|U(s)| + |T(s)|) · (L − 1)`.
pub fn neighborhood_size(state: &SystemState, s: SessionId) -> usize {
    let problem = state.problem();
    let users = problem.instance().session(s).len();
    let tasks = problem.tasks().of_session(s).len();
    (users + tasks) * (problem.instance().num_agents() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{capacity_limited_problem, two_agent_problem};
    use crate::{Assignment, UapProblem};
    use std::sync::Arc;
    use vc_model::AgentId;

    #[test]
    fn full_neighborhood_when_unconstrained() {
        let p = Arc::new(two_agent_problem());
        let asg = Assignment::all_to_agent(&p, AgentId::new(0));
        let st = SystemState::new(p, asg);
        let s = SessionId::new(0);
        let moves = feasible_moves(&st, s);
        // 2 users + 1 task, each with 1 alternative agent.
        assert_eq!(moves.len(), 3);
        assert_eq!(moves.len(), neighborhood_size(&st, s));
    }

    #[test]
    fn moves_report_correct_phi() {
        let p = Arc::new(two_agent_problem());
        let asg = Assignment::all_to_agent(&p, AgentId::new(0));
        let st = SystemState::new(p.clone(), asg);
        for m in feasible_moves(&st, SessionId::new(0)) {
            let mut probe = st.clone();
            probe.apply_unchecked(m.decision);
            assert!(
                (probe.session_objective(SessionId::new(0)) - m.new_phi).abs() < 1e-9,
                "phi mismatch for {}",
                m.decision
            );
        }
    }

    #[test]
    fn infeasible_moves_are_filtered() {
        let p = Arc::new(capacity_limited_problem());
        let asg = Assignment::all_to_agent(&p, AgentId::new(0));
        let st = SystemState::new(p.clone(), asg);
        for m in all_feasible_moves(&st) {
            // No feasible move may target agent c's transcoder (0 slots).
            if let Decision::Task(_, a) = m.decision {
                assert_ne!(a, AgentId::new(2), "task moved to zero-slot agent");
            }
        }
    }

    #[test]
    fn delay_bound_prunes_far_agents() {
        use vc_cost::CostModel;
        use vc_model::{AgentSpec, InstanceBuilder, ReprLadder};
        // Agent b is so remote that any flow routed through it exceeds
        // Dmax = 400 ms: moving either user there must be pruned.
        let ladder = ReprLadder::standard_four();
        let r = ladder.lowest();
        let mut b = InstanceBuilder::new(ladder);
        b.add_agent(AgentSpec::builder("near").build());
        b.add_agent(AgentSpec::builder("far").build());
        let s = b.add_session();
        b.add_user(s, r, r);
        b.add_user(s, r, r);
        b.symmetric_delays(|_, _| 150.0, |l, _| if l == 0 { 10.0 } else { 300.0 });
        let problem = Arc::new(UapProblem::new(
            b.build().unwrap(),
            CostModel::paper_default(),
        ));
        let asg = Assignment::all_to_agent(&problem, AgentId::new(0));
        let st = SystemState::new(problem, asg);
        let moves = feasible_moves(&st, SessionId::new(0));
        // Candidate "user → far": 300 (last mile) + 150 (inter-agent) +
        // 10 (other last mile) = 460 > 400 — pruned. Both users: none left.
        assert!(
            moves.is_empty(),
            "far agent should be unreachable: {:?}",
            moves.iter().map(|m| m.decision).collect::<Vec<_>>()
        );
    }

    #[test]
    fn relaxing_dmax_unprunes_the_far_agent() {
        use vc_cost::CostModel;
        use vc_model::{AgentSpec, InstanceBuilder, ReprLadder};
        let ladder = ReprLadder::standard_four();
        let r = ladder.lowest();
        let mut b = InstanceBuilder::new(ladder);
        b.add_agent(AgentSpec::builder("near").build());
        b.add_agent(AgentSpec::builder("far").build());
        let s = b.add_session();
        b.add_user(s, r, r);
        b.add_user(s, r, r);
        b.symmetric_delays(|_, _| 150.0, |l, _| if l == 0 { 10.0 } else { 300.0 });
        b.d_max_ms(1_000.0);
        let problem = Arc::new(UapProblem::new(
            b.build().unwrap(),
            CostModel::paper_default(),
        ));
        let asg = Assignment::all_to_agent(&problem, AgentId::new(0));
        let st = SystemState::new(problem, asg);
        assert_eq!(feasible_moves(&st, SessionId::new(0)).len(), 2);
    }

    #[test]
    fn all_moves_cover_active_sessions_only() {
        let p = Arc::new(capacity_limited_problem());
        let asg = Assignment::all_to_agent(&p, AgentId::new(0));
        let mut st = SystemState::new(p, asg);
        st.deactivate(SessionId::new(1));
        for m in all_feasible_moves(&st) {
            assert_eq!(st.session_of(m.decision), SessionId::new(0));
        }
    }
}
