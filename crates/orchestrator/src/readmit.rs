//! Self-healing re-admission: the bounded queue of sessions the fleet
//! displaced (a forced evacuation found no feasible target) or refused
//! under pressure, retried with deterministic decorrelated-jitter
//! backoff until capacity returns.
//!
//! ## Determinism contract
//!
//! Every backoff interval is a **pure function** of
//! `(seed, session, epoch, attempt)` — the same four-integer recipe the
//! WAIT timers use (`workers::draw_rng`), on its own RNG stream. There
//! is no hidden RNG state: a queue entry is four integers, so the
//! persistence layer journals enqueues/drops as explicit ops and a
//! crash-recovered queue resumes bit-for-bit — same due times, same
//! retry schedule — as the uncrashed twin (proptested in
//! `tests/chaos_plane.rs`).
//!
//! ## Degradation ladder
//!
//! The queue is *bounded* ([`ReadmitConfig::capacity`]) and each entry
//! retries at most [`ReadmitConfig::max_attempts`] times; overflow and
//! exhaustion both **drop** the session (counted, journaled, traced) —
//! self-healing must never become an unbounded retry storm against a
//! fleet that is already refusing work.

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap};
use vc_model::SessionId;

/// Re-admission queue tuning. `None` in [`crate::FleetConfig::readmit`]
/// disables the queue entirely (displacement falls back to forced
/// overshoot moves, the pre-chaos-plane behavior).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadmitConfig {
    /// Maximum queued sessions; an enqueue past this drops the session.
    pub capacity: usize,
    /// Backoff floor (virtual seconds) — every retry waits at least
    /// this long.
    pub base_backoff_s: f64,
    /// Backoff ceiling (virtual seconds).
    pub cap_backoff_s: f64,
    /// Retry budget per epoch: an entry failing its
    /// `max_attempts`-th admission attempt is dropped.
    pub max_attempts: u32,
    /// Seed of the backoff streams. Use the worker-pool seed so one
    /// number reproduces the whole control plane's randomness.
    pub seed: u64,
}

impl Default for ReadmitConfig {
    fn default() -> Self {
        Self {
            capacity: 256,
            base_backoff_s: 0.5,
            cap_backoff_s: 30.0,
            max_attempts: 8,
            seed: 2015,
        }
    }
}

/// One queued re-admission: four integers, the entry's *entire* state
/// (the next due time is stored, every later one is re-derivable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadmitEntry {
    /// The displaced/refused session.
    pub session: SessionId,
    /// Displacement epoch — bumped each time the session (re-)enters
    /// the queue, so distinct displacements draw distinct backoff
    /// streams.
    pub epoch: u64,
    /// Retry attempts already made in this epoch.
    pub attempt: u32,
    /// Virtual time (µs) of the next admission attempt.
    pub due_us: u64,
}

/// RNG stream selector for re-admission backoff draws — disjoint from
/// the WAIT (0) and HOP (1) streams of `workers::draw_rng` and the
/// fault stream (3) of `vc-chaos`.
const STREAM_READMIT: u64 = 2;

/// The decorrelated-jitter backoff before attempt `attempt` of
/// `(session, epoch)`: uniform in `[base, min(cap, base·3^attempt)]`,
/// in integer microseconds. Pure in `(seed, session, epoch, attempt)` —
/// no call-order or wall-clock dependence — which is exactly what lets
/// replay reconstruct the schedule without journaling each draw.
pub fn backoff_us(cfg: &ReadmitConfig, session: SessionId, epoch: u64, attempt: u32) -> u64 {
    let base = (cfg.base_backoff_s.max(0.0) * 1e6) as u64;
    let cap = ((cfg.cap_backoff_s.max(0.0) * 1e6) as u64).max(base);
    // Saturating 3^attempt keeps deep retries pinned at the cap instead
    // of wrapping back to short waits.
    let mut ceil = base;
    for _ in 0..attempt {
        ceil = ceil.saturating_mul(3);
        if ceil >= cap {
            ceil = cap;
            break;
        }
    }
    let ceil = ceil.clamp(base, cap);
    let mut x = cfg.seed;
    x ^= 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(session.index() as u64 + 1);
    x ^= 0xd1b5_4a32_d192_ed03u64.wrapping_mul(epoch.wrapping_add(1));
    x ^= 0x94d0_49bb_1331_11ebu64.wrapping_mul(u64::from(attempt).wrapping_add(1));
    x ^= 0xbf58_476d_1ce4_e5b9u64.wrapping_mul(STREAM_READMIT.wrapping_add(1));
    let mut rng = StdRng::seed_from_u64(x);
    if ceil == base {
        base
    } else {
        rng.gen_range(base..=ceil)
    }
}

/// The queue proper. Keyed by session (a session is queued at most
/// once); iteration order is ascending session id, so the earliest-due
/// scan is deterministic under ties.
#[derive(Debug, Default)]
pub(crate) struct ReadmitState {
    /// Queued entries, ascending by session.
    pub(crate) entries: BTreeMap<SessionId, ReadmitEntry>,
    /// Per-session epoch watermark: the highest epoch ever used, kept
    /// across admissions and drops so the next displacement draws a
    /// fresh backoff stream.
    pub(crate) epochs: HashMap<SessionId, u64>,
}

impl ReadmitState {
    /// The earliest-due entry, ties broken by ascending session id.
    pub(crate) fn next_due(&self) -> Option<ReadmitEntry> {
        self.entries
            .values()
            .copied()
            .min_by_key(|e| (e.due_us, e.session))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_pure_and_bounded() {
        let cfg = ReadmitConfig::default();
        let s = SessionId::from(7usize);
        let a = backoff_us(&cfg, s, 3, 2);
        let b = backoff_us(&cfg, s, 3, 2);
        assert_eq!(a, b, "same inputs, same backoff");
        let base = (cfg.base_backoff_s * 1e6) as u64;
        let cap = (cfg.cap_backoff_s * 1e6) as u64;
        for attempt in 0..12 {
            let d = backoff_us(&cfg, s, 3, attempt);
            assert!(d >= base && d <= cap, "attempt {attempt}: {d} out of range");
        }
    }

    #[test]
    fn backoff_streams_differ_by_identity() {
        let cfg = ReadmitConfig::default();
        let a = backoff_us(&cfg, SessionId::from(1usize), 1, 3);
        let b = backoff_us(&cfg, SessionId::from(2usize), 1, 3);
        let c = backoff_us(&cfg, SessionId::from(1usize), 2, 3);
        assert!(a != b || a != c, "identity must steer the jitter");
    }

    #[test]
    fn next_due_breaks_ties_by_session() {
        let mut st = ReadmitState::default();
        for i in [5usize, 2, 9] {
            let s = SessionId::from(i);
            st.entries.insert(
                s,
                ReadmitEntry {
                    session: s,
                    epoch: 1,
                    attempt: 0,
                    due_us: 100,
                },
            );
        }
        assert_eq!(st.next_due().unwrap().session, SessionId::from(2usize));
    }
}
