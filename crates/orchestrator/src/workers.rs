//! Background re-optimization workers.
//!
//! One *logical* worker per live session runs the paper's WAIT/HOP
//! loop: draw an exponential countdown, then HOP under the fleet's
//! **sharded FREEZE** — hops on different sessions run concurrently,
//! serialized only by their session slot and the ledger shards they
//! touch. Logical workers are multiplexed so a fleet of thousands of
//! sessions doesn't need thousands of threads.
//!
//! ## Reconstructible timers
//!
//! Every random draw a worker makes comes from a generator seeded
//! *deterministically* from `(pool seed, session, registration epoch,
//! wakeup index, stream)` — there is no long-lived RNG whose hidden
//! state a crash would lose. A worker's entire scheduling state is
//! therefore four integers (a [`TimerEntry`]), which the persistence
//! layer journals at durability boundaries and
//! [`restore_timers`](ReoptPool::restore_timers) reinstalls after
//! recovery: the first post-recovery wakeup fires at exactly the time,
//! and with exactly the randomness, the uncrashed run would have used.
//!
//! Two drive modes:
//!
//! * [`ReoptPool::tick_until`] — deterministic virtual time, used by the
//!   orchestrator's trace-driven runs and by tests;
//! * [`ReoptPool::run_wall`] — N OS threads racing over the due-session
//!   queue for a wall-clock budget, the deployment shape (and the bench
//!   target).

use crate::fleet::{Fleet, FleetHopScratch};
use parking_lot::Mutex;
use rand::{rngs::StdRng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::AtomicBool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use vc_model::SessionId;
use vc_obs::{Site, TraceKind};

/// Virtual due-times are kept in integer microseconds so they order
/// totally (no NaN) inside the heap.
fn to_us(t_s: f64) -> u64 {
    (t_s.max(0.0) * 1e6) as u64
}

/// One logical worker's complete scheduling state — everything needed
/// to resume its WAIT/HOP loop bit-for-bit after a crash.
///
/// Inactive entries (departed sessions) are part of the state too:
/// their epoch must survive recovery, because a later re-admission
/// draws its randomness from `epoch + 1` — dropping them would make a
/// departed-then-readmitted session diverge from the uncrashed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerEntry {
    /// The session the worker re-optimizes.
    pub session: SessionId,
    /// Virtual time of the pending wakeup (µs); stale for inactive
    /// entries (no wakeup is scheduled from it).
    pub due_us: u64,
    /// Registration epoch (bumped on every re-registration, so stale
    /// heap entries of departed-then-readmitted sessions are inert).
    pub epoch: u64,
    /// Wakeups executed in this epoch — the index that seeds the next
    /// wakeup's hop and countdown generators.
    pub draws: u64,
    /// Whether the worker is live (scheduled). Inactive entries carry
    /// only the epoch watermark.
    pub active: bool,
}

/// RNG stream selectors: the countdown and the hop of one wakeup use
/// disjoint deterministic streams.
const STREAM_WAIT: u64 = 0;
const STREAM_HOP: u64 = 1;

/// The deterministic per-draw generator: everything that identifies
/// the draw is mixed into the seed, so the stream is reconstructible
/// from a [`TimerEntry`] alone.
fn draw_rng(seed: u64, s: SessionId, epoch: u64, draws: u64, stream: u64) -> StdRng {
    let mut x = seed;
    x ^= 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(s.index() as u64 + 1);
    x ^= 0xd1b5_4a32_d192_ed03u64.wrapping_mul(epoch.wrapping_add(1));
    x ^= 0x94d0_49bb_1331_11ebu64.wrapping_mul(draws.wrapping_add(1));
    x ^= 0xbf58_476d_1ce4_e5b9u64.wrapping_mul(stream.wrapping_add(1));
    StdRng::seed_from_u64(x)
}

#[derive(Debug, Clone, Copy)]
struct WorkerTimer {
    epoch: u64,
    draws: u64,
    due_us: u64,
    /// False once the session deregisters; the heap entry (if any) is
    /// discarded lazily on pop.
    active: bool,
}

#[derive(Debug, Default)]
struct Schedule {
    /// Min-heap of `(due_us, session, epoch)`.
    due: BinaryHeap<Reverse<(u64, SessionId, u64)>>,
    /// Per-session timer state. Entries persist across departures so a
    /// re-registration always bumps the epoch past every stale heap
    /// entry.
    timers: HashMap<SessionId, WorkerTimer>,
}

/// The worker pool. Sessions are registered on admission and silently
/// dropped from the schedule once they depart (lazy deletion on pop).
#[derive(Debug)]
pub struct ReoptPool {
    schedule: Mutex<Schedule>,
    seed: u64,
    hops_executed: AtomicUsize,
}

impl ReoptPool {
    /// An empty pool; `seed` derives every per-wakeup RNG.
    pub fn new(seed: u64) -> Self {
        Self {
            schedule: Mutex::new(Schedule::default()),
            seed,
            hops_executed: AtomicUsize::new(0),
        }
    }

    /// Registers a logical worker for `s`, first wake drawn from the
    /// fleet's countdown distribution after `now_s`.
    pub fn register(&self, fleet: &Fleet, s: SessionId, now_s: f64) {
        let mut sched = self.schedule.lock();
        let epoch = sched.timers.get(&s).map_or(0, |t| t.epoch) + 1;
        let mut rng = draw_rng(self.seed, s, epoch, 0, STREAM_WAIT);
        let wait = fleet.engine().next_countdown(&mut rng);
        let due_us = to_us(now_s + wait);
        sched.timers.insert(
            s,
            WorkerTimer {
                epoch,
                draws: 0,
                due_us,
                active: true,
            },
        );
        sched.due.push(Reverse((due_us, s, epoch)));
        drop(sched);
        fleet
            .obs()
            .note_trace(TraceKind::WaitScheduled, s.index() as u32, due_us);
    }

    /// Deactivates the session's worker (departures). The heap entry,
    /// if any, is discarded lazily when popped.
    pub fn deregister(&self, s: SessionId) {
        if let Some(t) = self.schedule.lock().timers.get_mut(&s) {
            t.active = false;
        }
    }

    /// Total HOPs executed (migrated + stayed) since construction.
    pub fn hops_executed(&self) -> usize {
        self.hops_executed.load(Ordering::Relaxed)
    }

    /// Every worker's scheduling state (inactive epoch watermarks
    /// included), ascending by session — what a durability boundary
    /// journals so recovery can resume the WAIT timers instead of
    /// re-drawing them.
    pub fn timer_state(&self) -> Vec<TimerEntry> {
        let sched = self.schedule.lock();
        let mut out: Vec<TimerEntry> = sched
            .timers
            .iter()
            .map(|(&session, t)| TimerEntry {
                session,
                due_us: t.due_us,
                epoch: t.epoch,
                draws: t.draws,
                active: t.active,
            })
            .collect();
        out.sort_unstable_by_key(|e| e.session);
        out
    }

    /// Reinstalls journaled timer state (crash recovery): each entry
    /// whose session is still live in the **recovered fleet** resumes
    /// its pending wakeup at its recorded virtual time with its
    /// recorded randomness — bit-for-bit the schedule the crashed pool
    /// would have run. Entries for sessions that are *not* live (they
    /// departed after the timers were journaled; replay applied the
    /// `Depart`) install as inactive epoch watermarks only — never
    /// scheduled, but a later re-admission still continues the same
    /// epoch sequence. Call on a freshly built pool with the same
    /// seed, then [`ensure_registered`](Self::ensure_registered) for
    /// the opposite gap (sessions admitted after the journaled cut).
    pub fn restore_timers(&self, fleet: &Fleet, entries: &[TimerEntry]) {
        let mut sched = self.schedule.lock();
        for e in entries {
            let active = e.active && fleet.is_live(e.session);
            sched.timers.insert(
                e.session,
                WorkerTimer {
                    epoch: e.epoch,
                    draws: e.draws,
                    due_us: e.due_us,
                    active,
                },
            );
            if active {
                sched.due.push(Reverse((e.due_us, e.session, e.epoch)));
            }
        }
    }

    /// Registers a fresh worker for every live session of `fleet` that
    /// has no active timer, first wakes drawn after `now_s`. Call after
    /// [`restore_timers`](Self::restore_timers): sessions admitted
    /// *after* the last journaled `Timers` record replay into the
    /// recovered fleet without a timer entry, and without this step
    /// they would silently never be re-optimized again. Returns the
    /// sessions that were (re-)registered.
    pub fn ensure_registered(&self, fleet: &Fleet, now_s: f64) -> Vec<SessionId> {
        let mut registered = Vec::new();
        for s in fleet.live_sessions() {
            let missing = {
                let sched = self.schedule.lock();
                !sched.timers.get(&s).is_some_and(|t| t.active)
            };
            if missing {
                self.register(fleet, s, now_s);
                registered.push(s);
            }
        }
        registered
    }

    /// The earliest pending wakeup `(due_us, session)` among live
    /// workers, if any (telemetry / test introspection).
    pub fn next_due(&self) -> Option<(u64, SessionId)> {
        let sched = self.schedule.lock();
        sched
            .due
            .iter()
            .filter(|Reverse((_, s, epoch))| {
                sched
                    .timers
                    .get(s)
                    .is_some_and(|t| t.active && t.epoch == *epoch)
            })
            .map(|Reverse((due, s, _))| (*due, *s))
            .min()
    }

    /// The earliest *valid* pending due time, discarding stale heap
    /// tops (departed / re-registered sessions) as they surface —
    /// amortized O(1) per call, unlike [`next_due`](Self::next_due)'s
    /// full-heap filter, so the virtual-clock drive can consult it
    /// every iteration.
    fn peek_due_valid(&self) -> Option<u64> {
        let mut sched = self.schedule.lock();
        loop {
            let Reverse((due, s, epoch)) = *sched.due.peek()?;
            if sched
                .timers
                .get(&s)
                .is_some_and(|t| t.active && t.epoch == epoch)
            {
                return Some(due);
            }
            sched.due.pop();
        }
    }

    /// Pops the next due worker at or before `horizon_us`, hops it
    /// (reusing the caller's scratch), and reschedules. Returns `false`
    /// when nothing is due.
    fn step_one(&self, fleet: &Fleet, horizon_us: u64, scratch: &mut FleetHopScratch) -> bool {
        // WAIT-wakeup dispatch span (scheduler pop, including the
        // schedule-lock wait), sampled 1-in-32 by default so the extra
        // clock reads stay inside the observability overhead budget
        // (the dispatch rate is the hop rate — even 1/32 is thousands
        // of samples/s). The rate is the plane's `wait_sample_every`
        // config; `WakeupDispatched` trace events piggyback on the
        // same sampled ticks, so tracing adds no clock reads here.
        let obs = fleet.obs();
        let sampled =
            self.hops_executed.load(Ordering::Relaxed) as u64 & obs.wait_sample_mask() == 0;
        let t0 = if obs.enabled() && sampled {
            Some(Instant::now())
        } else {
            None
        };
        // Take the worker out under the schedule lock, hop *outside* it
        // so parallel callers only serialize on their slot's lock and
        // the ledger shards.
        let (due_us, s, epoch, draws) = {
            let mut sched = self.schedule.lock();
            loop {
                let Some(&Reverse((due_us, s, epoch))) = sched.due.peek() else {
                    return false;
                };
                if due_us > horizon_us {
                    return false;
                }
                sched.due.pop();
                // Stale entries (departed sessions, or superseded by a
                // re-registration) are lazy-discarded here.
                match sched.timers.get(&s) {
                    Some(t) if t.active && t.epoch == epoch => break (due_us, s, epoch, t.draws),
                    _ => continue,
                }
            }
        };
        obs.record_since(Site::WaitDispatch, t0);
        if sampled {
            obs.note_trace(TraceKind::WakeupDispatched, s.index() as u32, due_us);
        }
        let mut hop_rng = draw_rng(self.seed, s, epoch, draws, STREAM_HOP);
        fleet.hop_session_with(s, &mut hop_rng, scratch);
        self.hops_executed.fetch_add(1, Ordering::Relaxed);
        let next_draws = draws + 1;
        let mut wait_rng = draw_rng(self.seed, s, epoch, next_draws, STREAM_WAIT);
        let wait = fleet.engine().next_countdown(&mut wait_rng);
        let mut sched = self.schedule.lock();
        // The session may have departed (or been re-registered) while we
        // hopped; only the current registration's worker is rescheduled.
        let still_current = sched
            .timers
            .get(&s)
            .is_some_and(|t| t.active && t.epoch == epoch);
        let mut rescheduled = None;
        if still_current {
            let t = sched.timers.get_mut(&s).expect("checked above");
            if fleet.is_live(s) {
                let next_due = due_us + to_us(wait);
                t.draws = next_draws;
                t.due_us = next_due;
                sched.due.push(Reverse((next_due, s, epoch)));
                rescheduled = Some(next_due);
            } else {
                // The session died without a deregister (a caller that
                // departs fleet-side only): retire the worker so the
                // timer cannot linger active-but-unscheduled, which
                // would make `ensure_registered` skip a future
                // re-admission forever.
                t.active = false;
            }
        }
        drop(sched);
        // Re-arm events ride the same sampled ticks as the dispatch
        // span, so a sampled wakeup traces as dispatch → next deadline.
        if sampled {
            if let Some(next_due) = rescheduled {
                obs.note_trace(TraceKind::WaitScheduled, s.index() as u32, next_due);
            }
        }
        true
    }

    /// Deterministically executes every wakeup due at or before `t_s`
    /// (virtual seconds), in due order — WAIT/HOP worker wakeups *and*
    /// re-admission attempts from the fleet's self-healing queue,
    /// merged into one timeline (re-admission wins due-time ties, so a
    /// session re-admitted at `t` can be hopped at `t` by a worker
    /// wakeup later in the same drive). A successful re-admission
    /// registers a fresh worker at its admission time. Returns the
    /// number of hops run (re-admission attempts are not hops).
    pub fn tick_until(&self, fleet: &Fleet, t_s: f64) -> usize {
        let horizon = to_us(t_s);
        let mut scratch = FleetHopScratch::new();
        let mut n = 0;
        loop {
            let worker = self.peek_due_valid().filter(|&d| d <= horizon);
            let readmit = fleet.next_readmit_due().filter(|&d| d <= horizon);
            match (worker, readmit) {
                (None, None) => break,
                (Some(_), None) => {
                    if self.step_one(fleet, horizon, &mut scratch) {
                        n += 1;
                    }
                }
                (Some(w), Some(r)) if w < r => {
                    if self.step_one(fleet, horizon, &mut scratch) {
                        n += 1;
                    }
                }
                (_, Some(r)) => {
                    if let Some(s) = fleet.readmit_attempt_one(r) {
                        self.register(fleet, s, r as f64 / 1e6);
                    }
                }
            }
        }
        n
    }

    /// Races `threads` OS threads over the due queue for `budget` wall
    /// time. Hops on different sessions run **concurrently** under the
    /// shared FREEZE lock (each serialized only by its session slot and
    /// the ledger shards it touches); each thread owns its hop scratch,
    /// so steady-state hops allocate nothing. Virtual due-times are
    /// treated as *priorities* (drain order), not paced to the wall
    /// clock — the mode exists to exercise and measure the contention
    /// structure. Returns the number of hops run.
    pub fn run_wall(&self, fleet: &Fleet, budget: Duration, threads: usize) -> usize {
        let stop = AtomicBool::new(false);
        let executed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads.max(1) {
                scope.spawn(|| {
                    let mut scratch = FleetHopScratch::new();
                    while !stop.load(Ordering::Relaxed) {
                        if self.step_one(fleet, u64::MAX, &mut scratch) {
                            executed.fetch_add(1, Ordering::Relaxed);
                        } else {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let started = Instant::now();
            while started.elapsed() < budget {
                std::thread::sleep(Duration::from_millis(1));
            }
            stop.store(true, Ordering::Relaxed);
        });
        executed.load(Ordering::Relaxed)
    }
}
