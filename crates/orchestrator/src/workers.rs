//! Background re-optimization workers.
//!
//! One *logical* worker per live session runs the paper's WAIT/HOP
//! loop: draw an exponential countdown, then HOP under the fleet's
//! **sharded FREEZE** — hops on different sessions run concurrently,
//! serialized only by their session slot and the ledger shards they
//! touch. Logical workers are multiplexed so a fleet of thousands of
//! sessions doesn't need thousands of threads.
//!
//! Two drive modes:
//!
//! * [`ReoptPool::tick_until`] — deterministic virtual time, used by the
//!   orchestrator's trace-driven runs and by tests;
//! * [`ReoptPool::run_wall`] — N OS threads racing over the due-session
//!   queue for a wall-clock budget, the deployment shape (and the bench
//!   target).

use crate::fleet::{Fleet, FleetHopScratch};
use parking_lot::Mutex;
use rand::{rngs::StdRng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use vc_model::SessionId;

/// Virtual due-times are kept in integer microseconds so they order
/// totally (no NaN) inside the heap.
fn to_us(t_s: f64) -> u64 {
    (t_s.max(0.0) * 1e6) as u64
}

#[derive(Debug)]
struct Schedule {
    /// Min-heap of `(due_us, session, epoch)`.
    due: BinaryHeap<Reverse<(u64, SessionId, u64)>>,
    /// Per-session RNG, surviving across wakeups for reproducibility.
    rngs: HashMap<SessionId, StdRng>,
    /// Registration epoch per session: bumped on every `register`, so
    /// heap entries left behind by a departed-then-readmitted session
    /// are recognizably stale (without an epoch, a re-registration
    /// would resurrect the old entry and double the session's hop
    /// rate).
    epochs: HashMap<SessionId, u64>,
}

/// The worker pool. Sessions are registered on admission and silently
/// dropped from the schedule once they depart (lazy deletion on pop).
#[derive(Debug)]
pub struct ReoptPool {
    schedule: Mutex<Schedule>,
    seed: u64,
    hops_executed: AtomicUsize,
}

impl ReoptPool {
    /// An empty pool; `seed` derives every per-session RNG.
    pub fn new(seed: u64) -> Self {
        Self {
            schedule: Mutex::new(Schedule {
                due: BinaryHeap::new(),
                rngs: HashMap::new(),
                epochs: HashMap::new(),
            }),
            seed,
            hops_executed: AtomicUsize::new(0),
        }
    }

    /// Registers a logical worker for `s`, first wake drawn from the
    /// fleet's countdown distribution after `now_s`.
    pub fn register(&self, fleet: &Fleet, s: SessionId, now_s: f64) {
        let mut sched = self.schedule.lock();
        let epoch = {
            let e = sched.epochs.entry(s).or_insert(0);
            *e += 1;
            *e
        };
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(s.index() as u64 + 1)),
        );
        let wait = fleet.engine().next_countdown(&mut rng);
        sched.rngs.insert(s, rng);
        sched.due.push(Reverse((to_us(now_s + wait), s, epoch)));
    }

    /// Forgets the session's RNG (departures). The heap entry, if any,
    /// is discarded lazily when popped.
    pub fn deregister(&self, s: SessionId) {
        self.schedule.lock().rngs.remove(&s);
    }

    /// Total HOPs executed (migrated + stayed) since construction.
    pub fn hops_executed(&self) -> usize {
        self.hops_executed.load(Ordering::Relaxed)
    }

    /// Pops the next due worker at or before `horizon_us`, hops it
    /// (reusing the caller's scratch), and reschedules. Returns `false`
    /// when nothing is due.
    fn step_one(&self, fleet: &Fleet, horizon_us: u64, scratch: &mut FleetHopScratch) -> bool {
        // Take the worker out under the schedule lock, hop *outside* it
        // so parallel callers only serialize on their slot's lock and
        // the ledger shards.
        let (due_us, s, epoch, mut rng) = {
            let mut sched = self.schedule.lock();
            loop {
                let Some(&Reverse((due_us, s, epoch))) = sched.due.peek() else {
                    return false;
                };
                if due_us > horizon_us {
                    return false;
                }
                sched.due.pop();
                // Stale entries (departed sessions, or superseded by a
                // re-registration) are lazy-discarded here.
                if sched.epochs.get(&s) != Some(&epoch) {
                    continue;
                }
                if let Some(rng) = sched.rngs.remove(&s) {
                    break (due_us, s, epoch, rng);
                }
            }
        };
        fleet.hop_session_with(s, &mut rng, scratch);
        self.hops_executed.fetch_add(1, Ordering::Relaxed);
        let wait = fleet.engine().next_countdown(&mut rng);
        let mut sched = self.schedule.lock();
        // The session may have departed (or been re-registered) while we
        // hopped; only the current registration's worker is rescheduled.
        if fleet.is_live(s) && sched.epochs.get(&s) == Some(&epoch) {
            sched.rngs.insert(s, rng);
            sched.due.push(Reverse((due_us + to_us(wait), s, epoch)));
        }
        true
    }

    /// Deterministically executes every wakeup due at or before `t_s`
    /// (virtual seconds), in due order. Returns the number of hops run.
    pub fn tick_until(&self, fleet: &Fleet, t_s: f64) -> usize {
        let horizon = to_us(t_s);
        let mut scratch = FleetHopScratch::new();
        let mut n = 0;
        while self.step_one(fleet, horizon, &mut scratch) {
            n += 1;
        }
        n
    }

    /// Races `threads` OS threads over the due queue for `budget` wall
    /// time. Hops on different sessions run **concurrently** under the
    /// shared FREEZE lock (each serialized only by its session slot and
    /// the ledger shards it touches); each thread owns its hop scratch,
    /// so steady-state hops allocate nothing. Virtual due-times are
    /// treated as *priorities* (drain order), not paced to the wall
    /// clock — the mode exists to exercise and measure the contention
    /// structure. Returns the number of hops run.
    pub fn run_wall(&self, fleet: &Fleet, budget: Duration, threads: usize) -> usize {
        let stop = AtomicBool::new(false);
        let executed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads.max(1) {
                scope.spawn(|| {
                    let mut scratch = FleetHopScratch::new();
                    while !stop.load(Ordering::Relaxed) {
                        if self.step_one(fleet, u64::MAX, &mut scratch) {
                            executed.fetch_add(1, Ordering::Relaxed);
                        } else {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let started = Instant::now();
            while started.elapsed() < budget {
                std::thread::sleep(Duration::from_millis(1));
            }
            stop.store(true, Ordering::Relaxed);
        });
        executed.load(Ordering::Relaxed)
    }
}
