//! Background re-optimization workers.
//!
//! One *logical* worker per live session runs the paper's WAIT/HOP
//! loop: draw an exponential countdown, then HOP under the fleet's
//! **sharded FREEZE** — hops on different sessions run concurrently,
//! serialized only by their session slot and the ledger shards they
//! touch. Logical workers are multiplexed so a fleet of thousands of
//! sessions doesn't need thousands of threads.
//!
//! ## Sharded wakeup scheduling
//!
//! Pending wakeups live in a [`ShardedWheel`](crate::sched): sessions
//! map to independent shards, each a hierarchical timer wheel behind
//! its own short-held lock, with a cached earliest-due atomic per
//! shard so dispatch finds the next event by scanning N atomics — not
//! by filtering one global heap behind one global mutex (the shape
//! this module had before, and the last shared structure on the hop
//! path). Dispatch order is unchanged: globally ascending
//! `(due_us, session, epoch)`; see the `sched` module docs for the
//! determinism argument and `tests/scheduler_equivalence.rs` for the
//! proptest against a reference heap.
//!
//! ## Reconstructible timers
//!
//! Every random draw a worker makes comes from a generator seeded
//! *deterministically* from `(pool seed, session, registration epoch,
//! wakeup index, stream)` — there is no long-lived RNG whose hidden
//! state a crash would lose. A worker's entire scheduling state is
//! therefore four integers (a [`TimerEntry`]), which the persistence
//! layer journals at durability boundaries and
//! [`restore_timers`](ReoptPool::restore_timers) reinstalls after
//! recovery: the first post-recovery wakeup fires at exactly the time,
//! and with exactly the randomness, the uncrashed run would have used.
//!
//! Two drive modes:
//!
//! * [`ReoptPool::tick_until`] — deterministic virtual time, used by the
//!   orchestrator's trace-driven runs and by tests;
//! * [`ReoptPool::run_wall`] — N OS threads racing over the due-session
//!   queue for a wall-clock budget, the deployment shape (and the bench
//!   target).

use crate::fleet::{Fleet, FleetHopScratch};
use crate::sched::{CompleteOutcome, ShardedWheel};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::atomic::AtomicBool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use vc_model::SessionId;
use vc_obs::{Site, TraceKind};

pub use crate::sched::TimerEntry;

/// Virtual due-times are kept in integer microseconds so they order
/// totally (no NaN) inside the scheduler.
fn to_us(t_s: f64) -> u64 {
    (t_s.max(0.0) * 1e6) as u64
}

/// RNG stream selectors: the countdown and the hop of one wakeup use
/// disjoint deterministic streams.
const STREAM_WAIT: u64 = 0;
const STREAM_HOP: u64 = 1;

/// The deterministic per-draw generator: everything that identifies
/// the draw is mixed into the seed, so the stream is reconstructible
/// from a [`TimerEntry`] alone.
fn draw_rng(seed: u64, s: SessionId, epoch: u64, draws: u64, stream: u64) -> StdRng {
    let mut x = seed;
    x ^= 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(s.index() as u64 + 1);
    x ^= 0xd1b5_4a32_d192_ed03u64.wrapping_mul(epoch.wrapping_add(1));
    x ^= 0x94d0_49bb_1331_11ebu64.wrapping_mul(draws.wrapping_add(1));
    x ^= 0xbf58_476d_1ce4_e5b9u64.wrapping_mul(stream.wrapping_add(1));
    StdRng::seed_from_u64(x)
}

/// The worker pool. Sessions are registered on admission and silently
/// dropped from the schedule once they depart (lazy deletion, eagerly
/// reclaimed on wheel cascade).
#[derive(Debug)]
pub struct ReoptPool {
    wheel: ShardedWheel,
    seed: u64,
    hops_executed: AtomicUsize,
}

impl ReoptPool {
    /// An empty pool with the default shard count; `seed` derives
    /// every per-wakeup RNG.
    pub fn new(seed: u64) -> Self {
        Self {
            wheel: ShardedWheel::new(),
            seed,
            hops_executed: AtomicUsize::new(0),
        }
    }

    /// An empty pool over `shards` scheduler shards (a contention
    /// knob only — dispatch order, and therefore every journaled
    /// record, is independent of it).
    pub fn with_shards(seed: u64, shards: usize) -> Self {
        Self {
            wheel: ShardedWheel::with_shards(shards),
            seed,
            hops_executed: AtomicUsize::new(0),
        }
    }

    /// Registers a logical worker for `s`, first wake drawn from the
    /// fleet's countdown distribution after `now_s`.
    pub fn register(&self, fleet: &Fleet, s: SessionId, now_s: f64) {
        let obs = fleet.obs();
        let (_, due_us) = self.wheel.register_with(
            s,
            |epoch| {
                let mut rng = draw_rng(self.seed, s, epoch, 0, STREAM_WAIT);
                to_us(now_s + fleet.engine().next_countdown(&mut rng))
            },
            Some(obs),
        );
        obs.note_trace(TraceKind::WaitScheduled, s.index() as u32, due_us);
    }

    /// Registers a worker for every session in `sessions`, grouping by
    /// scheduler shard so each shard lock is taken once per batch —
    /// the setup path for 100k+-session fleets. Produces exactly the
    /// timers per-session [`register`](Self::register) calls would.
    pub fn register_batch(&self, fleet: &Fleet, sessions: &[SessionId], now_s: f64) {
        let obs = fleet.obs();
        self.wheel.register_batch(
            sessions,
            |s, epoch| {
                let mut rng = draw_rng(self.seed, s, epoch, 0, STREAM_WAIT);
                to_us(now_s + fleet.engine().next_countdown(&mut rng))
            },
            |s, due_us| {
                obs.note_trace(TraceKind::WaitScheduled, s.index() as u32, due_us);
            },
            Some(obs),
        );
    }

    /// Deactivates the session's worker (departures). The wheel entry,
    /// if any, goes stale and is reclaimed on a later cascade.
    pub fn deregister(&self, s: SessionId) {
        self.wheel.deregister(s);
    }

    /// Total HOPs executed (migrated + stayed) since construction.
    pub fn hops_executed(&self) -> usize {
        self.hops_executed.load(Ordering::Relaxed)
    }

    /// The scheduler shard count.
    pub fn num_shards(&self) -> usize {
        self.wheel.num_shards()
    }

    /// Resident scheduler entries whose registrations were superseded
    /// or deactivated and that await reclamation (the
    /// `vc_sched_stale_entries` gauge).
    pub fn stale_entries(&self) -> u64 {
        self.wheel.stale_entries()
    }

    /// Stale entries reclaimed so far by cascades and slot prunes.
    pub fn stale_reclaimed(&self) -> u64 {
        self.wheel.stale_reclaimed()
    }

    /// Resident entries per scheduler shard.
    pub fn shard_depths(&self) -> Vec<u64> {
        self.wheel.shard_depths()
    }

    /// Per-shard `(lock acquisitions, contended acquisitions)` — the
    /// contention-profile evidence the hop bench archives.
    pub fn shard_lock_counters(&self) -> Vec<(u64, u64)> {
        self.wheel.shard_lock_counters()
    }

    /// Every worker's scheduling state (inactive epoch watermarks
    /// included), ascending by session — what a durability boundary
    /// journals so recovery can resume the WAIT timers instead of
    /// re-drawing them.
    pub fn timer_state(&self) -> Vec<TimerEntry> {
        self.wheel.timer_state()
    }

    /// Reinstalls journaled timer state (crash recovery): each entry
    /// whose session is still live in the **recovered fleet** resumes
    /// its pending wakeup at its recorded virtual time with its
    /// recorded randomness — bit-for-bit the schedule the crashed pool
    /// would have run. Entries for sessions that are *not* live (they
    /// departed after the timers were journaled; replay applied the
    /// `Depart`) install as inactive epoch watermarks only — never
    /// scheduled, but a later re-admission still continues the same
    /// epoch sequence. Call on a freshly built pool with the same
    /// seed, then [`ensure_registered`](Self::ensure_registered) for
    /// the opposite gap (sessions admitted after the journaled cut).
    pub fn restore_timers(&self, fleet: &Fleet, entries: &[TimerEntry]) {
        self.wheel.restore(entries, |s| fleet.is_live(s));
    }

    /// Registers a fresh worker for every live session of `fleet` that
    /// has no active timer, first wakes drawn after `now_s`. Call after
    /// [`restore_timers`](Self::restore_timers): sessions admitted
    /// *after* the last journaled `Timers` record replay into the
    /// recovered fleet without a timer entry, and without this step
    /// they would silently never be re-optimized again. Returns the
    /// sessions that were (re-)registered.
    pub fn ensure_registered(&self, fleet: &Fleet, now_s: f64) -> Vec<SessionId> {
        let mut registered = Vec::new();
        for s in fleet.live_sessions() {
            if !self.wheel.has_active(s) {
                self.register(fleet, s, now_s);
                registered.push(s);
            }
        }
        registered
    }

    /// The earliest pending wakeup `(due_us, session)` among live
    /// workers, if any (telemetry / test introspection). Amortized
    /// per-shard peeks guided by the cached earliest-due atomics — the
    /// old full-heap filter is gone.
    pub fn next_due(&self) -> Option<(u64, SessionId)> {
        self.wheel.peek(None)
    }

    /// Pops the next due worker at or before `horizon_us`, hops it
    /// (reusing the caller's scratch), and reschedules. Returns `false`
    /// when nothing is due.
    fn step_one(&self, fleet: &Fleet, horizon_us: u64, scratch: &mut FleetHopScratch) -> bool {
        // WAIT-wakeup dispatch span (scheduler pop, including shard
        // lock waits), sampled 1-in-32 by default so the extra clock
        // reads stay inside the observability overhead budget (the
        // dispatch rate is the hop rate — even 1/32 is thousands of
        // samples/s). The rate is the plane's `wait_sample_every`
        // config; `WakeupDispatched` trace events piggyback on the
        // same sampled ticks, so tracing adds no clock reads here.
        let obs = fleet.obs();
        let sampled =
            self.hops_executed.load(Ordering::Relaxed) as u64 & obs.wait_sample_mask() == 0;
        let t0 = if obs.enabled() && sampled {
            Some(Instant::now())
        } else {
            None
        };
        // Take the worker off the wheel under its shard lock, hop
        // *outside* it so parallel callers only serialize on their
        // session slot and the ledger shards.
        let Some(popped) = self.wheel.pop_due(horizon_us, Some(obs)) else {
            return false;
        };
        let (due_us, s, epoch, draws) = (popped.due_us, popped.session, popped.epoch, popped.draws);
        obs.record_since(Site::WaitDispatch, t0);
        if sampled {
            obs.note_trace(TraceKind::WakeupDispatched, s.index() as u32, due_us);
        }
        let mut hop_rng = draw_rng(self.seed, s, epoch, draws, STREAM_HOP);
        fleet.hop_session_with(s, &mut hop_rng, scratch);
        self.hops_executed.fetch_add(1, Ordering::Relaxed);
        let next_draws = draws + 1;
        let mut wait_rng = draw_rng(self.seed, s, epoch, next_draws, STREAM_WAIT);
        let wait = fleet.engine().next_countdown(&mut wait_rng);
        // The session may have departed (or been re-registered) while
        // we hopped; `complete` re-arms only the current registration,
        // and retires the worker if the session died fleet-side
        // without a deregister.
        let next = fleet
            .is_live(s)
            .then_some((due_us + to_us(wait), next_draws));
        let outcome = self.wheel.complete(s, epoch, next, Some(obs));
        // Re-arm events ride the same sampled ticks as the dispatch
        // span, so a sampled wakeup traces as dispatch → next deadline.
        if sampled {
            if let CompleteOutcome::Rescheduled(next_due) = outcome {
                obs.note_trace(TraceKind::WaitScheduled, s.index() as u32, next_due);
            }
        }
        true
    }

    /// Deterministically executes every wakeup due at or before `t_s`
    /// (virtual seconds), in due order — WAIT/HOP worker wakeups *and*
    /// re-admission attempts from the fleet's self-healing queue,
    /// merged into one timeline (re-admission wins due-time ties, so a
    /// session re-admitted at `t` can be hopped at `t` by a worker
    /// wakeup later in the same drive). A successful re-admission
    /// registers a fresh worker at its admission time. Returns the
    /// number of hops run (re-admission attempts are not hops).
    pub fn tick_until(&self, fleet: &Fleet, t_s: f64) -> usize {
        let horizon = to_us(t_s);
        let obs = fleet.obs();
        let mut scratch = FleetHopScratch::new();
        let mut n = 0;
        loop {
            let worker = self
                .wheel
                .peek(Some(obs))
                .map(|(d, _)| d)
                .filter(|&d| d <= horizon);
            let readmit = fleet.next_readmit_due().filter(|&d| d <= horizon);
            match (worker, readmit) {
                (None, None) => break,
                (Some(_), None) => {
                    if self.step_one(fleet, horizon, &mut scratch) {
                        n += 1;
                    }
                }
                (Some(w), Some(r)) if w < r => {
                    if self.step_one(fleet, horizon, &mut scratch) {
                        n += 1;
                    }
                }
                (_, Some(r)) => {
                    if let Some(s) = fleet.readmit_attempt_one(r) {
                        self.register(fleet, s, r as f64 / 1e6);
                    }
                }
            }
        }
        n
    }

    /// Races `threads` OS threads over the due queue for `budget` wall
    /// time. Hops on different sessions run **concurrently** under the
    /// shared FREEZE lock (each serialized only by its session slot and
    /// the ledger shards it touches); each thread owns its hop scratch,
    /// so steady-state hops allocate nothing. Virtual due-times are
    /// treated as *priorities* (drain order), not paced to the wall
    /// clock — the mode exists to exercise and measure the contention
    /// structure. Returns the number of hops run.
    pub fn run_wall(&self, fleet: &Fleet, budget: Duration, threads: usize) -> usize {
        let stop = AtomicBool::new(false);
        let executed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads.max(1) {
                scope.spawn(|| {
                    let mut scratch = FleetHopScratch::new();
                    while !stop.load(Ordering::Relaxed) {
                        if self.step_one(fleet, u64::MAX, &mut scratch) {
                            executed.fetch_add(1, Ordering::Relaxed);
                        } else {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let started = Instant::now();
            while started.elapsed() < budget {
                std::thread::sleep(Duration::from_millis(1));
            }
            stop.store(true, Ordering::Relaxed);
        });
        executed.load(Ordering::Relaxed)
    }
}
