//! The trace-driven orchestrator: consumes a [`FleetTrace`], drives the
//! fleet and its re-optimization workers through virtual time, and
//! samples telemetry once per period.

use crate::fleet::{AdmitError, Fleet, FleetConfig};
use crate::telemetry::{FleetSnapshot, FleetTelemetry};
use crate::workers::ReoptPool;
use std::sync::Arc;
use vc_core::UapProblem;
use vc_workloads::{FleetEvent, FleetTrace, OpenWorldEvent};

/// Orchestrator-level configuration.
#[derive(Debug, Clone)]
pub struct OrchestratorConfig {
    /// Fleet (placement + Alg. 1 + ledger) parameters.
    pub fleet: FleetConfig,
    /// Telemetry sampling period (virtual seconds).
    pub sample_period_s: f64,
    /// Worker-pool seed.
    pub seed: u64,
    /// When `false`, the worker pool never runs — sessions keep their
    /// bootstrap placement (the baseline every re-optimization result is
    /// measured against).
    pub reoptimize: bool,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        Self {
            fleet: FleetConfig::default(),
            sample_period_s: 1.0,
            seed: 2015,
            reoptimize: true,
        }
    }
}

/// Outcome of one trace-driven run.
#[derive(Debug)]
pub struct FleetReport {
    /// All periodic samples (and derived series).
    pub telemetry: FleetTelemetry,
    /// The final snapshot (taken at the horizon, after all events).
    pub final_snapshot: FleetSnapshot,
    /// Total hops the worker pool executed.
    pub hops_executed: usize,
    /// Admission refusals with their reasons, in event order.
    pub rejections: Vec<(f64, AdmitError)>,
}

/// The control plane: fleet + workers + telemetry, driven by traces.
#[derive(Debug)]
pub struct Orchestrator {
    fleet: Arc<Fleet>,
    pool: Arc<ReoptPool>,
    config: OrchestratorConfig,
}

impl Orchestrator {
    /// Builds the control plane over `problem`.
    pub fn new(problem: Arc<UapProblem>, config: OrchestratorConfig) -> Self {
        Self {
            fleet: Arc::new(Fleet::new(problem, config.fleet.clone())),
            pool: Arc::new(ReoptPool::new(config.seed)),
            config,
        }
    }

    /// The fleet (shared with any threads the caller spawns).
    pub fn fleet(&self) -> &Arc<Fleet> {
        &self.fleet
    }

    /// The worker pool (shared with any threads the caller spawns,
    /// e.g. a `/metrics` closure scraping scheduler gauges).
    pub fn pool(&self) -> &Arc<ReoptPool> {
        &self.pool
    }

    /// Applies one event at virtual time `t_s`. Admission failures are
    /// returned (the fleet stays consistent); other events cannot fail.
    pub fn apply_event(&self, t_s: f64, event: FleetEvent) -> Result<(), AdmitError> {
        match event {
            FleetEvent::Arrive(s) => {
                self.fleet.admit(s)?;
                if self.config.reoptimize {
                    self.pool.register(&self.fleet, s, t_s);
                }
                Ok(())
            }
            FleetEvent::Depart(s) => {
                self.fleet.depart(s);
                self.pool.deregister(s);
                Ok(())
            }
            FleetEvent::FailAgent(a) => {
                self.fleet.fail_agent(a);
                Ok(())
            }
            FleetEvent::RestoreAgent(a) => {
                self.fleet.restore_agent(a);
                Ok(())
            }
        }
    }

    /// Applies one **open-world** event at virtual time `t_s`: an
    /// arrival registers the never-before-seen conference (growing the
    /// universe) and then admits it under its assigned id. Registration
    /// failures surface as [`AdmitError::Register`]; an arrival whose
    /// registration succeeded but whose admission was refused leaves
    /// the conference registered (it may be re-tried later), exactly
    /// like a pre-declared session whose admission was refused.
    ///
    /// # Errors
    ///
    /// See [`AdmitError`].
    pub fn apply_open_event(&self, t_s: f64, event: &OpenWorldEvent) -> Result<(), AdmitError> {
        match event {
            OpenWorldEvent::Arrive(def) => {
                let s = self
                    .fleet
                    .register_session(def)
                    .map_err(AdmitError::Register)?;
                self.fleet.admit(s)?;
                if self.config.reoptimize {
                    self.pool.register(&self.fleet, s, t_s);
                }
                Ok(())
            }
            OpenWorldEvent::Depart(s) => {
                self.fleet.depart(*s);
                self.pool.deregister(*s);
                Ok(())
            }
        }
    }

    /// Runs the trace to `horizon_s`: events in time order, worker
    /// wakeups interleaved at their due times, telemetry sampled every
    /// period. Returns the full report.
    ///
    /// # Panics
    ///
    /// Panics if the trace extends past `horizon_s` (generate the trace
    /// with the same horizon) or if telemetry ever observes a
    /// conservation violation — the control plane treats a ledger/state
    /// split as corruption, not a metric.
    pub fn run_trace(&mut self, trace: &FleetTrace, horizon_s: f64) -> FleetReport {
        let mut telemetry = FleetTelemetry::new();
        let mut rejections = Vec::new();
        let mut next_sample = 0.0f64;
        for &(t, event) in &trace.events {
            assert!(t <= horizon_s + 1e-9, "trace event past the horizon");
            // Catch up: worker wakeups and samples due strictly before t.
            while next_sample < t {
                if self.config.reoptimize {
                    self.pool.tick_until(&self.fleet, next_sample);
                }
                let snap = telemetry.sample(&self.fleet, next_sample);
                assert_eq!(
                    snap.conservation_violations,
                    0,
                    "ledger/state split at t={next_sample}: {:?}",
                    self.fleet.audit()
                );
                next_sample += self.config.sample_period_s;
            }
            if self.config.reoptimize {
                self.pool.tick_until(&self.fleet, t);
            }
            if let Err(e) = self.apply_event(t, event) {
                rejections.push((t, e));
            }
        }
        // Drain to (but not onto) the horizon — the final snapshot
        // below samples t = horizon exactly once.
        while next_sample < horizon_s - 1e-9 {
            if self.config.reoptimize {
                self.pool.tick_until(&self.fleet, next_sample);
            }
            let snap = telemetry.sample(&self.fleet, next_sample);
            assert_eq!(
                snap.conservation_violations,
                0,
                "ledger/state split at t={next_sample}: {:?}",
                self.fleet.audit()
            );
            next_sample += self.config.sample_period_s;
        }
        if self.config.reoptimize {
            self.pool.tick_until(&self.fleet, horizon_s);
        }
        let final_snapshot = telemetry.sample(&self.fleet, horizon_s);
        assert_eq!(
            final_snapshot.conservation_violations,
            0,
            "ledger/state split at the horizon: {:?}",
            self.fleet.audit()
        );
        FleetReport {
            final_snapshot,
            hops_executed: self.pool.hops_executed(),
            rejections,
            telemetry,
        }
    }
}
