//! `vc-orchestrator` — an online multi-session control plane.
//!
//! The paper's Alg. 1 is explicitly *distributed and online*: sessions
//! arrive, optimize themselves through WAIT/HOP loops, and depart, all
//! against shared agent capacity. The rest of this workspace exercises
//! that algorithm through closed-world drivers (a fixed instance, all
//! sessions known up front); this crate supplies the long-running
//! control plane that owns a *fleet* of concurrent sessions:
//!
//! * [`ledger`] — the **sharded capacity ledger**: per-agent bandwidth
//!   and transcoding-slot reservations taken/released atomically across
//!   sessions, sharded so concurrent admissions contend only on the
//!   agents they actually touch;
//! * [`fleet`] — the [`Fleet`] API: `admit` (AgRank-bootstrapped
//!   placement against live residuals), `depart` (releases exactly what
//!   was reserved), `fail_agent` (immediate deterministic evacuation,
//!   ledger re-synced), `hop_session` (one Alg. 1 HOP under the
//!   **sharded FREEZE**: hops take a shared lock + their session's
//!   slot, and commit capacity through the ledger's checked
//!   `try_swap`, so hops on different sessions run concurrently), and
//!   `register_session` (**open-world growth**: a never-before-seen
//!   conference joins the universe online — the FREEZE lock owns the
//!   growable problem + slot vector, and the ledger is untouched until
//!   the conference is admitted), and `register_agent`/`drain_agent`
//!   (**elastic capacity**: agents join named regions online and leave
//!   via planned drains — refuse new holds first, then evacuate);
//! * [`workers`] — the **re-optimization worker pool**: one logical
//!   WAIT/HOP worker per live session, multiplexed over either a
//!   deterministic virtual clock ([`ReoptPool::tick_until`]) or N OS
//!   threads ([`ReoptPool::run_wall`]) racing hops concurrently, each
//!   thread reusing an allocation-free hop scratch;
//! * [`sched`] — the **sharded timer-wheel scheduler** under the pool:
//!   sessions map to independent shards, each a hierarchical wheel
//!   behind its own short-held lock with a cached earliest-due atomic,
//!   so 100k+ waiting sessions dispatch in deterministic
//!   `(due_us, session, epoch)` order with no global lock;
//! * [`telemetry`] — periodic [`FleetSnapshot`]s (objective, per-agent
//!   utilization, migration counts, admission success rate) and
//!   [`vc_sim::metrics::TimeSeries`]-compatible series;
//! * [`orchestrator`] — the trace-driven [`Orchestrator`] consuming
//!   `vc-workloads`' dynamic arrival/departure traces.
//!
//! # Cross-region admission: the two-phase reserve protocol
//!
//! Agents group into named **regions** (one ledger region per agent,
//! default region `"default"`). A session whose placement spans two or
//! more regions must reserve in all of them atomically — a crash
//! between per-region debits must never leave one region charged and
//! another not. The ledger runs a two-phase protocol over its existing
//! all-or-nothing multi-shard reserve:
//!
//! 1. **Prepare** — [`CapacityLedger::prepare_reserve`] splits the
//!    session's hold by region ([`CapacityLedger::split_by_region`])
//!    and debits each region's agents in ascending region order. The
//!    result is a [`PreparedReserve`]: capacity is debited but the
//!    session holds nothing yet (`hold_of` still returns `None`). If
//!    any region refuses, the already-debited regions are credited
//!    back and the caller gets a typed
//!    [`CrossRegionError::Prepare`] naming the refusing region —
//!    residuals are bitwise what they were before the attempt.
//! 2. **Commit** — [`CapacityLedger::commit_prepared`] merges the
//!    per-region sub-holds and installs the merged hold in the
//!    holdings table. *Installation is the commit point*: before it,
//!    the reservation is invisible; after it, departure releases
//!    exactly what was reserved.
//! 3. **Abort** — [`CapacityLedger::abort_prepared`] credits every
//!    debit back, leaving both regions at their pre-admission
//!    residuals.
//!
//! **Who journals what**: the fleet journals `FleetOp::Admit` only
//! *after* `commit_prepared` returns — the journal never records a
//! prepared-but-uncommitted state, so replay either re-books the whole
//! admission (`book_unchecked`, single- and cross-region alike) or
//! none of it. A crash between prepare and commit reconstructs from
//! the journal *without* the in-flight prepare; the debits existed
//! only in volatile entry state, so recovery's from-scratch ledger is
//! automatically at pre-admission residuals (the atomicity the chaos
//! tests assert). Agent growth journals `FleetOp::RegisterAgent`
//! (definition + region name), drains `FleetOp::DrainAgent`; the
//! snapshot carries the interleaved session/agent growth log, the
//! drained flags, and the region table (format v6).
//!
//! # Invariants
//!
//! The per-session slots are authoritative; the ledger mirrors them
//! reservation-by-reservation. After *any* sequence of admits, departs,
//! failures and hops — including hops racing on OS threads —
//! [`Fleet::audit`] must return empty: per-agent booked capacity equals
//! the sum of live sessions' loads, and the holding-session set equals
//! the active-session set. `tests/orchestrator_invariants.rs` and
//! `tests/hop_equivalence.rs` property-test exactly this.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use vc_core::UapProblem;
//! use vc_cost::CostModel;
//! use vc_orchestrator::{Orchestrator, OrchestratorConfig};
//! use vc_workloads::{dynamic_trace, DynamicTraceConfig, large_scale_instance, LargeScaleConfig};
//!
//! let instance = large_scale_instance(&LargeScaleConfig {
//!     num_users: 30,
//!     ..LargeScaleConfig::default()
//! });
//! let problem = Arc::new(UapProblem::new(instance, CostModel::paper_default()));
//! let trace = dynamic_trace(
//!     problem.instance().num_sessions(),
//!     &DynamicTraceConfig {
//!         horizon_s: 20.0,
//!         warm_sessions: 4,
//!         ..DynamicTraceConfig::default()
//!     },
//! );
//! let mut orchestrator = Orchestrator::new(problem, OrchestratorConfig::default());
//! let report = orchestrator.run_trace(&trace, 20.0);
//! assert_eq!(report.final_snapshot.conservation_violations, 0);
//! assert!(report.final_snapshot.admitted >= 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod ledger;
pub mod orchestrator;
pub mod persist;
pub mod readmit;
pub mod sched;
pub mod telemetry;
#[cfg(test)]
mod tests;
pub mod workers;

pub use fleet::{
    AdmissionMode, AdmitError, AdmitOutcome, Fleet, FleetConfig, FleetCounters, FleetHopScratch,
    GrowthRecord, PlacementPolicy,
};
pub use ledger::{
    AgentHold, AgentUtilization, CapacityLedger, CrossRegionError, HopResiduals, LedgerError,
    PreparedReserve, RegionResiduals, SessionHold, DEFAULT_REGION,
};
pub use orchestrator::{FleetReport, Orchestrator, OrchestratorConfig};
pub use persist::{
    CounterSnapshot, DurableFleetState, FleetOp, PersistConfig, PersistError, RecoveryReport,
    RefusalReason,
};
pub use readmit::{backoff_us, ReadmitConfig, ReadmitEntry};
pub use sched::{CompleteOutcome, PoppedTimer, ShardedWheel};
pub use telemetry::{fleet_metrics_text, sched_metrics_text, FleetSnapshot, FleetTelemetry};
pub use workers::{ReoptPool, TimerEntry};
