//! `vc-orchestrator` — an online multi-session control plane.
//!
//! The paper's Alg. 1 is explicitly *distributed and online*: sessions
//! arrive, optimize themselves through WAIT/HOP loops, and depart, all
//! against shared agent capacity. The rest of this workspace exercises
//! that algorithm through closed-world drivers (a fixed instance, all
//! sessions known up front); this crate supplies the long-running
//! control plane that owns a *fleet* of concurrent sessions:
//!
//! * [`ledger`] — the **sharded capacity ledger**: per-agent bandwidth
//!   and transcoding-slot reservations taken/released atomically across
//!   sessions, sharded so concurrent admissions contend only on the
//!   agents they actually touch;
//! * [`fleet`] — the [`Fleet`] API: `admit` (AgRank-bootstrapped
//!   placement against live residuals), `depart` (releases exactly what
//!   was reserved), `fail_agent` (immediate deterministic evacuation,
//!   ledger re-synced), `hop_session` (one Alg. 1 HOP under the
//!   **sharded FREEZE**: hops take a shared lock + their session's
//!   slot, and commit capacity through the ledger's checked
//!   `try_swap`, so hops on different sessions run concurrently), and
//!   `register_session` (**open-world growth**: a never-before-seen
//!   conference joins the universe online — the FREEZE lock owns the
//!   growable problem + slot vector, and the ledger is untouched until
//!   the conference is admitted);
//! * [`workers`] — the **re-optimization worker pool**: one logical
//!   WAIT/HOP worker per live session, multiplexed over either a
//!   deterministic virtual clock ([`ReoptPool::tick_until`]) or N OS
//!   threads ([`ReoptPool::run_wall`]) racing hops concurrently, each
//!   thread reusing an allocation-free hop scratch;
//! * [`sched`] — the **sharded timer-wheel scheduler** under the pool:
//!   sessions map to independent shards, each a hierarchical wheel
//!   behind its own short-held lock with a cached earliest-due atomic,
//!   so 100k+ waiting sessions dispatch in deterministic
//!   `(due_us, session, epoch)` order with no global lock;
//! * [`telemetry`] — periodic [`FleetSnapshot`]s (objective, per-agent
//!   utilization, migration counts, admission success rate) and
//!   [`vc_sim::metrics::TimeSeries`]-compatible series;
//! * [`orchestrator`] — the trace-driven [`Orchestrator`] consuming
//!   `vc-workloads`' dynamic arrival/departure traces.
//!
//! # Invariants
//!
//! The per-session slots are authoritative; the ledger mirrors them
//! reservation-by-reservation. After *any* sequence of admits, departs,
//! failures and hops — including hops racing on OS threads —
//! [`Fleet::audit`] must return empty: per-agent booked capacity equals
//! the sum of live sessions' loads, and the holding-session set equals
//! the active-session set. `tests/orchestrator_invariants.rs` and
//! `tests/hop_equivalence.rs` property-test exactly this.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use vc_core::UapProblem;
//! use vc_cost::CostModel;
//! use vc_orchestrator::{Orchestrator, OrchestratorConfig};
//! use vc_workloads::{dynamic_trace, DynamicTraceConfig, large_scale_instance, LargeScaleConfig};
//!
//! let instance = large_scale_instance(&LargeScaleConfig {
//!     num_users: 30,
//!     ..LargeScaleConfig::default()
//! });
//! let problem = Arc::new(UapProblem::new(instance, CostModel::paper_default()));
//! let trace = dynamic_trace(
//!     problem.instance().num_sessions(),
//!     &DynamicTraceConfig {
//!         horizon_s: 20.0,
//!         warm_sessions: 4,
//!         ..DynamicTraceConfig::default()
//!     },
//! );
//! let mut orchestrator = Orchestrator::new(problem, OrchestratorConfig::default());
//! let report = orchestrator.run_trace(&trace, 20.0);
//! assert_eq!(report.final_snapshot.conservation_violations, 0);
//! assert!(report.final_snapshot.admitted >= 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod ledger;
pub mod orchestrator;
pub mod persist;
pub mod readmit;
pub mod sched;
pub mod telemetry;
#[cfg(test)]
mod tests;
pub mod workers;

pub use fleet::{
    AdmissionMode, AdmitError, AdmitOutcome, Fleet, FleetConfig, FleetCounters, FleetHopScratch,
    PlacementPolicy,
};
pub use ledger::{
    AgentHold, AgentUtilization, CapacityLedger, HopResiduals, LedgerError, SessionHold,
};
pub use orchestrator::{FleetReport, Orchestrator, OrchestratorConfig};
pub use persist::{
    CounterSnapshot, DurableFleetState, FleetOp, PersistConfig, PersistError, RecoveryReport,
    RefusalReason,
};
pub use readmit::{backoff_us, ReadmitConfig, ReadmitEntry};
pub use sched::{CompleteOutcome, PoppedTimer, ShardedWheel};
pub use telemetry::{fleet_metrics_text, sched_metrics_text, FleetSnapshot, FleetTelemetry};
pub use workers::{ReoptPool, TimerEntry};
