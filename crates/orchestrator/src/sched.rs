//! Sharded hierarchical timer-wheel wakeup scheduler.
//!
//! The WAIT/HOP pool used to funnel every wakeup through a single
//! `Mutex<BinaryHeap>` — the last shared structure on the hop path.
//! This module replaces it: sessions hash onto `N` independent
//! **shards**, each owning its own hierarchical timer wheel behind its
//! own short-held lock, with a per-shard **cached earliest-due atomic**
//! so finding the globally next event scans `N` atomics instead of
//! filtering a heap.
//!
//! ## Wheel layout
//!
//! Each shard's wheel has [`LEVELS`] levels of [`SLOTS`] slots. Level
//! `k` slots are `64^k` µs wide, so level 0 resolves single virtual
//! microseconds and level 5 spans ≈ 19 h; entries beyond the wheel's
//! [`SPAN_US`] horizon wait in a sorted *overflow* map and are promoted
//! when the wheel's clock enters their span block. An entry due at `d`
//! lives at the level of the highest bit in which `d` differs from the
//! wheel's clock `now` (`level_for`), in slot `(d >> 6k) & 63` — so as
//! `now` advances, coarse slots **cascade**: their entries redistribute
//! into strictly finer levels until, at level 0, a slot holds exactly
//! the entries of one microsecond.
//!
//! ## Determinism
//!
//! Dispatch order is *identical* to the old global heap: globally
//! ascending `(due_us, session, epoch)`. Within a shard, a level-0 slot
//! is one exact due time and ties break by `(session, epoch)`; across
//! shards, the pop path peeks every shard whose cached earliest-due
//! lower bound could still win and takes the lexicographic minimum.
//! A session maps to one fixed shard, so cross-shard due ties are
//! always between distinct sessions. The order — and therefore the
//! journaled `Timers` records and the `(seed, session, epoch, draw)`
//! randomness derivation — is independent of the shard count
//! (proptested in `tests/scheduler_equivalence.rs`).
//!
//! ## Lazy cancellation, eager reclamation
//!
//! Departures don't search the wheel: they flip the per-session timer
//! inactive and the resident entry goes *stale*. Unlike the old heap —
//! where stale entries lingered until popped — stale entries are now
//! reclaimed whenever a cascade or a level-0 prune touches their slot,
//! and the [`ShardedWheel::stale_entries`] gauge plus per-shard depths
//! are exported on `/metrics` (`vc_sched_*`).
//!
//! ## Contention observability
//!
//! Shard locks are taken with `try_lock` first; contended acquisitions
//! count into per-shard conflict counters and (when a plane is passed)
//! record their wait into the [`Site::SchedLock`] histogram — the
//! "schedule lock off the contention profile" evidence the hop bench
//! archives.

use parking_lot::{Mutex, MutexGuard};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use vc_model::SessionId;
use vc_obs::{ObsPlane, Site};

/// log2 of the slot count per wheel level.
pub const LEVEL_BITS: u32 = 6;
/// Slots per wheel level.
pub const SLOTS: usize = 1 << LEVEL_BITS;
/// Wheel levels per shard (finest 1 µs, coarsest `64^5` µs ≈ 19 min
/// per slot).
pub const LEVELS: usize = 6;
/// Virtual-time span one wheel covers (µs); dues further out wait in
/// the overflow map.
pub const SPAN_US: u64 = 1 << (LEVEL_BITS * LEVELS as u32);

/// Default shard count ([`ShardedWheel::new`]); any power of two in
/// `1..=64` is accepted via [`ShardedWheel::with_shards`].
pub const DEFAULT_SHARDS: usize = 8;

/// One logical worker's complete scheduling state — everything needed
/// to resume its WAIT/HOP loop bit-for-bit after a crash.
///
/// Inactive entries (departed sessions) are part of the state too:
/// their epoch must survive recovery, because a later re-admission
/// draws its randomness from `epoch + 1` — dropping them would make a
/// departed-then-readmitted session diverge from the uncrashed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerEntry {
    /// The session the worker re-optimizes.
    pub session: SessionId,
    /// Virtual time of the pending wakeup (µs); stale for inactive
    /// entries (no wakeup is scheduled from it).
    pub due_us: u64,
    /// Registration epoch (bumped on every re-registration, so stale
    /// wheel entries of departed-then-readmitted sessions are inert).
    pub epoch: u64,
    /// Wakeups executed in this epoch — the index that seeds the next
    /// wakeup's hop and countdown generators.
    pub draws: u64,
    /// Whether the worker is live (scheduled). Inactive entries carry
    /// only the epoch watermark.
    pub active: bool,
}

/// One wakeup taken off the wheel by [`ShardedWheel::pop_due`] — the
/// four integers that seed the hop and next-countdown generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoppedTimer {
    /// Virtual due time (µs) the wakeup fired at.
    pub due_us: u64,
    /// The session to re-optimize.
    pub session: SessionId,
    /// Its registration epoch at pop time.
    pub epoch: u64,
    /// Draws already executed in this epoch.
    pub draws: u64,
}

/// What [`ShardedWheel::complete`] did with a finished wakeup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompleteOutcome {
    /// The worker re-armed at the returned due time.
    Rescheduled(u64),
    /// The session is gone fleet-side; the worker retired (inactive
    /// epoch watermark kept).
    Retired,
    /// A concurrent deregister/re-register superseded this epoch; the
    /// completion was a no-op.
    Superseded,
}

/// Per-session timer record (the authoritative state; wheel entries
/// are just its scheduling index).
#[derive(Debug, Clone, Copy)]
struct WorkerTimer {
    epoch: u64,
    draws: u64,
    due_us: u64,
    /// False once the session deregisters (or retires); the wheel
    /// entry, if resident, is stale and reclaimed on cascade.
    active: bool,
    /// Whether a wheel/past/overflow entry for (session, `epoch`) is
    /// currently resident — false while its wakeup is in flight
    /// between pop and completion.
    resident: bool,
}

#[derive(Debug, Clone, Copy)]
struct WheelEntry {
    due_us: u64,
    session: SessionId,
    epoch: u64,
}

/// One shard's hierarchical wheel. `now_us` is the shard clock: it
/// only ever advances to the expiry of the earliest occupied slot (or
/// jumps across provably-empty span blocks), so no entry is skipped.
#[derive(Debug)]
struct Wheel {
    now_us: u64,
    /// Per-level occupancy bitmaps (bit = slot holds entries).
    occ: [u64; LEVELS],
    /// `LEVELS × SLOTS` buckets, flattened.
    slots: Vec<Vec<WheelEntry>>,
}

impl Wheel {
    fn new() -> Self {
        let mut slots = Vec::with_capacity(LEVELS * SLOTS);
        slots.resize_with(LEVELS * SLOTS, Vec::new);
        Self {
            now_us: 0,
            occ: [0; LEVELS],
            slots,
        }
    }

    /// The level an entry due at `due` belongs to, relative to `now`:
    /// the level containing the highest bit in which they differ.
    /// `>= LEVELS` means the due time is outside the wheel's span
    /// block (overflow).
    fn level_for(now: u64, due: u64) -> usize {
        let masked = now ^ due;
        if masked < SLOTS as u64 {
            0
        } else {
            ((63 - masked.leading_zeros()) / LEVEL_BITS) as usize
        }
    }

    /// Inserts an entry; requires `due >= now` and `due` within the
    /// wheel's current span block (`now ^ due < SPAN_US`).
    fn insert(&mut self, due: u64, session: SessionId, epoch: u64) {
        debug_assert!(due >= self.now_us);
        debug_assert!(self.now_us ^ due < SPAN_US);
        let level = Self::level_for(self.now_us, due);
        let slot = ((due >> (LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.slots[level * SLOTS + slot].push(WheelEntry {
            due_us: due,
            session,
            epoch,
        });
        self.occ[level] |= 1 << slot;
    }

    /// The earliest occupied slot across all levels: `(expiry, level,
    /// slot)`, where `expiry` is the slot's start time clamped to
    /// `now`. On expiry ties the *coarsest* level wins, so cascades
    /// run before the level-0 slot they may feed dispatches.
    fn earliest_slot(&self) -> Option<(u64, usize, usize)> {
        let mut best: Option<(u64, usize, usize)> = None;
        for level in 0..LEVELS {
            let occ = self.occ[level];
            if occ == 0 {
                continue;
            }
            let shift = LEVEL_BITS * level as u32;
            let width = 1u64 << shift;
            let level_span = width << LEVEL_BITS;
            let cur = ((self.now_us >> shift) & (SLOTS as u64 - 1)) as u32;
            // Cyclic distance from the slot containing `now` to the
            // next occupied slot of this level.
            let dist = occ.rotate_right(cur).trailing_zeros() as u64;
            let slot = ((u64::from(cur) + dist) & (SLOTS as u64 - 1)) as usize;
            let base = self.now_us & !(level_span - 1);
            let mut slot_start = base + slot as u64 * width;
            if slot_start + width <= self.now_us {
                // Cyclically behind `now`: next occurrence is a turn out.
                slot_start += level_span;
            }
            let expiry = slot_start.max(self.now_us);
            let better = match best {
                None => true,
                Some((bt, bl, _)) => expiry < bt || (expiry == bt && level > bl),
            };
            if better {
                best = Some((expiry, level, slot));
            }
        }
        best
    }
}

/// One shard's locked state: the wheel, the authoritative per-session
/// timers, the out-of-band entry maps, and reclamation accounting.
#[derive(Debug)]
struct Inner {
    wheel: Wheel,
    timers: HashMap<SessionId, WorkerTimer>,
    /// Entries registered with a due time *before* the shard clock
    /// (sub-µs countdowns drawn during a drive). Always dispatched
    /// ahead of the wheel — their dues are strictly below every wheel
    /// due — preserving exact `(due, session)` order.
    past: BTreeMap<(u64, SessionId), u64>,
    /// Entries beyond the wheel's span block, promoted when the clock
    /// reaches their block.
    overflow: BTreeMap<(u64, SessionId), u64>,
    /// Resident entries (wheel + past + overflow).
    depth: usize,
    /// Resident entries whose registration was superseded or
    /// deactivated (awaiting reclamation).
    stale: usize,
    /// Stale entries reclaimed so far (cascade / prune / lazy pop).
    reclaimed: u64,
}

fn is_current(timers: &HashMap<SessionId, WorkerTimer>, s: SessionId, epoch: u64) -> bool {
    timers.get(&s).is_some_and(|t| t.active && t.epoch == epoch)
}

impl Inner {
    fn new() -> Self {
        Self {
            wheel: Wheel::new(),
            timers: HashMap::new(),
            past: BTreeMap::new(),
            overflow: BTreeMap::new(),
            depth: 0,
            stale: 0,
            reclaimed: 0,
        }
    }

    fn insert_entry(&mut self, due: u64, s: SessionId, epoch: u64) {
        let replaced = if due < self.wheel.now_us {
            self.past.insert((due, s), epoch).is_some()
        } else if self.wheel.now_us ^ due < SPAN_US {
            self.wheel.insert(due, s, epoch);
            false
        } else {
            self.overflow.insert((due, s), epoch).is_some()
        };
        if replaced {
            // The map key collided with the same session's
            // earlier-epoch entry — stale by construction (one current
            // epoch per session), so this insert reclaims it in place.
            self.stale -= 1;
            self.reclaimed += 1;
        } else {
            self.depth += 1;
        }
    }

    fn reclaim(&mut self, n: usize) {
        self.depth -= n;
        self.stale -= n;
        self.reclaimed += n as u64;
    }

    /// Moves every overflow entry whose span block the clock has
    /// reached into the wheel.
    fn promote_overflow(&mut self) {
        let block = self.wheel.now_us & !(SPAN_US - 1);
        while let Some((&(due, s), &epoch)) = self.overflow.first_key_value() {
            if due & !(SPAN_US - 1) != block {
                break;
            }
            self.overflow.pop_first();
            self.wheel.insert(due, s, epoch);
        }
    }

    /// The earliest *valid* entry `(due, session, epoch)`, cascading
    /// coarse slots toward level 0 and reclaiming stale entries as
    /// they surface — amortized O(1) per dispatch. Leaves the entry
    /// resident (either in `past` or in its level-0 slot, with the
    /// shard clock advanced to its due time).
    fn peek_valid(&mut self) -> Option<(u64, SessionId, u64)> {
        loop {
            // Out-of-band late registrations dispatch first: their dues
            // are strictly below the shard clock, hence below every
            // wheel/overflow due.
            while let Some((&(due, s), &epoch)) = self.past.first_key_value() {
                if is_current(&self.timers, s, epoch) {
                    return Some((due, s, epoch));
                }
                self.past.pop_first();
                self.reclaim(1);
            }
            self.promote_overflow();
            let Some((expiry, level, slot)) = self.wheel.earliest_slot() else {
                // Wheel empty: jump the clock to the next overflow
                // span block, if any (safe — nothing can be skipped).
                let (&(due, _), _) = self.overflow.first_key_value()?;
                let block = due & !(SPAN_US - 1);
                debug_assert!(block > self.wheel.now_us);
                self.wheel.now_us = block;
                continue;
            };
            let idx = level * SLOTS + slot;
            if level == 0 {
                // One exact microsecond: prune stale entries, then the
                // minimum (session, epoch) is the dispatch candidate.
                let timers = &self.timers;
                let mut removed = 0usize;
                self.wheel.slots[idx].retain(|e| {
                    let ok = is_current(timers, e.session, e.epoch);
                    removed += usize::from(!ok);
                    ok
                });
                if removed > 0 {
                    self.reclaim(removed);
                }
                if self.wheel.slots[idx].is_empty() {
                    self.wheel.occ[0] &= !(1 << slot);
                    continue;
                }
                self.wheel.now_us = expiry;
                let e = self.wheel.slots[idx]
                    .iter()
                    .min_by_key(|e| (e.session, e.epoch))
                    .expect("slot checked non-empty");
                debug_assert_eq!(e.due_us, expiry, "level-0 slot is one µs");
                return Some((e.due_us, e.session, e.epoch));
            }
            // Cascade: advance to the slot's start and redistribute its
            // entries into finer levels, reclaiming stale ones instead
            // of letting them linger until popped.
            self.wheel.now_us = expiry;
            let entries = std::mem::take(&mut self.wheel.slots[idx]);
            self.wheel.occ[level] &= !(1 << slot);
            let mut removed = 0usize;
            for e in entries {
                if is_current(&self.timers, e.session, e.epoch) {
                    debug_assert!(self.wheel.now_us ^ e.due_us < SPAN_US);
                    self.wheel.insert(e.due_us, e.session, e.epoch);
                } else {
                    removed += 1;
                }
            }
            if removed > 0 {
                self.reclaim(removed);
            }
        }
    }

    /// Removes the entry [`Inner::peek_valid`] would return **iff** it
    /// is exactly `(due, s)`; `None` means a concurrent mutation won
    /// the race and the caller must rescan.
    fn pop_exact(&mut self, due: u64, s: SessionId) -> Option<PoppedTimer> {
        let (pd, ps, pe) = self.peek_valid()?;
        if pd != due || ps != s {
            return None;
        }
        if self.past.remove(&(due, s)).is_none() {
            let slot = (due & (SLOTS as u64 - 1)) as usize;
            let v = &mut self.wheel.slots[slot];
            let i = v
                .iter()
                .position(|e| e.session == s && e.epoch == pe)
                .expect("peeked entry is resident at level 0");
            v.swap_remove(i);
            if v.is_empty() {
                self.wheel.occ[0] &= !(1 << slot);
            }
        }
        self.depth -= 1;
        let t = self
            .timers
            .get_mut(&s)
            .expect("peeked entry has a current timer");
        t.resident = false;
        Some(PoppedTimer {
            due_us: due,
            session: s,
            epoch: pe,
            draws: t.draws,
        })
    }

    fn register_with(&mut self, s: SessionId, draw: impl FnOnce(u64) -> u64) -> (u64, u64) {
        let prev = self.timers.get(&s).copied();
        let epoch = prev.map_or(0, |t| t.epoch) + 1;
        if prev.is_some_and(|t| t.active && t.resident) {
            // Re-registration over a live worker: its entry is now inert.
            self.stale += 1;
        }
        let due = draw(epoch);
        self.timers.insert(
            s,
            WorkerTimer {
                epoch,
                draws: 0,
                due_us: due,
                active: true,
                resident: true,
            },
        );
        self.insert_entry(due, s, epoch);
        (epoch, due)
    }

    fn deregister(&mut self, s: SessionId) {
        if let Some(t) = self.timers.get_mut(&s) {
            if t.active {
                t.active = false;
                if t.resident {
                    t.resident = false;
                    self.stale += 1;
                }
            }
        }
    }

    fn complete(&mut self, s: SessionId, epoch: u64, next: Option<(u64, u64)>) -> CompleteOutcome {
        let Some(t) = self.timers.get_mut(&s) else {
            return CompleteOutcome::Superseded;
        };
        if !t.active || t.epoch != epoch {
            return CompleteOutcome::Superseded;
        }
        match next {
            Some((due, draws)) => {
                t.draws = draws;
                t.due_us = due;
                t.resident = true;
                self.insert_entry(due, s, epoch);
                CompleteOutcome::Rescheduled(due)
            }
            None => {
                // The session died without a deregister (a caller that
                // departs fleet-side only): retire the worker so the
                // timer cannot linger active-but-unscheduled, which
                // would make a future re-admission skip re-registration
                // forever.
                t.active = false;
                CompleteOutcome::Retired
            }
        }
    }

    fn restore(&mut self, e: &TimerEntry, live: bool) {
        let active = e.active && live;
        if self
            .timers
            .get(&e.session)
            .is_some_and(|t| t.active && t.resident)
        {
            self.stale += 1;
        }
        self.timers.insert(
            e.session,
            WorkerTimer {
                epoch: e.epoch,
                draws: e.draws,
                due_us: e.due_us,
                active,
                resident: active,
            },
        );
        if active {
            self.insert_entry(e.due_us, e.session, e.epoch);
        }
    }

    /// The earliest possibly-valid due time, as a cheap lower bound
    /// for the cached hint (exact after a `peek_valid`).
    fn earliest_bound(&self) -> u64 {
        let past = self
            .past
            .first_key_value()
            .map_or(u64::MAX, |((d, _), _)| *d);
        if past != u64::MAX {
            return past;
        }
        if self.depth == 0 {
            return u64::MAX;
        }
        // Anything resident is at or after the shard clock (past was
        // empty); `now` is a valid lower bound without cascading.
        self.wheel.now_us
    }
}

/// One scheduler shard: its locked state plus lock-free mirrors the
/// dispatch scan and the gauges read without taking the lock.
#[derive(Debug)]
struct Shard {
    inner: Mutex<Inner>,
    /// Lower bound on the shard's earliest valid due time (µs);
    /// `u64::MAX` when known empty. Exact right after a peek.
    earliest: AtomicU64,
    depth: AtomicU64,
    stale: AtomicU64,
    reclaimed: AtomicU64,
    acquires: AtomicU64,
    conflicts: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Self {
            inner: Mutex::new(Inner::new()),
            earliest: AtomicU64::new(u64::MAX),
            depth: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
            acquires: AtomicU64::new(0),
            conflicts: AtomicU64::new(0),
        }
    }

    /// Locks the shard, counting contended acquisitions and (when a
    /// plane is given) recording the contended wait into
    /// [`Site::SchedLock`]. The uncontended fast path costs one
    /// `try_lock` and one relaxed increment — no clock read.
    fn lock(&self, obs: Option<&ObsPlane>) -> MutexGuard<'_, Inner> {
        self.acquires.fetch_add(1, Ordering::Relaxed);
        if let Some(g) = self.inner.try_lock() {
            return g;
        }
        self.conflicts.fetch_add(1, Ordering::Relaxed);
        match obs.filter(|p| p.enabled()) {
            Some(plane) => {
                let t0 = Instant::now();
                let g = self.inner.lock();
                plane.record_since(Site::SchedLock, Some(t0));
                g
            }
            None => self.inner.lock(),
        }
    }

    /// Mirrors the locked state's gauges into the lock-free atomics;
    /// call before dropping a guard that mutated.
    fn sync(&self, g: &Inner) {
        self.earliest.store(g.earliest_bound(), Ordering::Relaxed);
        self.depth.store(g.depth as u64, Ordering::Relaxed);
        self.stale.store(g.stale as u64, Ordering::Relaxed);
        self.reclaimed.store(g.reclaimed, Ordering::Relaxed);
    }
}

/// The sharded scheduler. All operations are keyed by session; a
/// session's shard is fixed (`index & mask`), so per-session ordering
/// needs no cross-shard coordination.
#[derive(Debug)]
pub struct ShardedWheel {
    shards: Box<[Shard]>,
    mask: usize,
}

impl ShardedWheel {
    /// A scheduler with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// A scheduler with `shards` shards (rounded up to a power of two,
    /// clamped to `1..=64`). Dispatch order is independent of the
    /// count — it is purely a contention knob.
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.clamp(1, 64).next_power_of_two();
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, Shard::new);
        Self {
            shards: v.into_boxed_slice(),
            mask: n - 1,
        }
    }

    /// The shard count.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, s: SessionId) -> &Shard {
        // Session ids are dense, so masking round-robins them evenly.
        &self.shards[s.index() & self.mask]
    }

    /// Registers (or re-registers) a worker for `s`. The closure maps
    /// the fresh epoch to the first due time (it runs under the shard
    /// lock, so the epoch it sees is the one installed). Returns
    /// `(epoch, due_us)`.
    pub fn register_with(
        &self,
        s: SessionId,
        draw: impl FnOnce(u64) -> u64,
        obs: Option<&ObsPlane>,
    ) -> (u64, u64) {
        let shard = self.shard_of(s);
        let mut g = shard.lock(obs);
        let out = g.register_with(s, draw);
        shard.sync(&g);
        out
    }

    /// Registers a batch, grouping sessions by shard so each shard
    /// lock is taken once per batch instead of once per session. The
    /// per-session `(epoch, due)` results are passed to `scheduled` in
    /// shard-grouped order.
    pub fn register_batch(
        &self,
        sessions: &[SessionId],
        mut draw: impl FnMut(SessionId, u64) -> u64,
        mut scheduled: impl FnMut(SessionId, u64),
        obs: Option<&ObsPlane>,
    ) {
        let n = self.shards.len();
        let mut groups: Vec<Vec<SessionId>> = vec![Vec::new(); n];
        for &s in sessions {
            groups[s.index() & self.mask].push(s);
        }
        for (i, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let shard = &self.shards[i];
            let mut g = shard.lock(obs);
            for s in group {
                let (_, due) = g.register_with(s, |epoch| draw(s, epoch));
                scheduled(s, due);
            }
            shard.sync(&g);
        }
    }

    /// Deactivates the session's worker (departures); its resident
    /// entry goes stale and is reclaimed on a later cascade.
    pub fn deregister(&self, s: SessionId) {
        let shard = self.shard_of(s);
        let mut g = shard.lock(None);
        g.deregister(s);
        shard.sync(&g);
    }

    /// Whether `s` currently has an active (scheduled or in-flight)
    /// worker.
    pub fn has_active(&self, s: SessionId) -> bool {
        self.shard_of(s)
            .lock(None)
            .timers
            .get(&s)
            .is_some_and(|t| t.active)
    }

    /// The globally earliest pending wakeup `(due_us, session)`, in
    /// exact dispatch order — amortized per-shard peeks guided by the
    /// cached earliest-due atomics (no full-structure filter).
    pub fn peek(&self, obs: Option<&ObsPlane>) -> Option<(u64, SessionId)> {
        self.scan(u64::MAX, obs).map(|(due, s, _, _)| (due, s))
    }

    /// One pass over the shards: peek every shard whose cached lower
    /// bound could still beat the best candidate, returning the global
    /// minimum by `(due, session)` at or before `horizon_us`.
    fn scan(
        &self,
        horizon_us: u64,
        obs: Option<&ObsPlane>,
    ) -> Option<(u64, SessionId, u64, usize)> {
        let n = self.shards.len();
        debug_assert!(n <= 64);
        let mut order = [(u64::MAX, 0u8); 64];
        for (i, shard) in self.shards.iter().enumerate() {
            order[i] = (shard.earliest.load(Ordering::Relaxed), i as u8);
        }
        let order = &mut order[..n];
        order.sort_unstable();
        let mut best: Option<(u64, SessionId, u64, usize)> = None;
        for &(hint, i) in order.iter() {
            if hint > horizon_us {
                break;
            }
            if let Some((bd, _, _, _)) = best {
                if hint > bd {
                    break;
                }
            }
            let shard = &self.shards[i as usize];
            let mut g = shard.lock(obs);
            let peeked = g.peek_valid();
            shard.sync(&g);
            drop(g);
            if let Some((due, s, epoch)) = peeked {
                if due <= horizon_us && best.is_none_or(|(bd, bs, _, _)| (due, s) < (bd, bs)) {
                    best = Some((due, s, epoch, i as usize));
                }
            }
        }
        best
    }

    /// Pops the globally earliest wakeup due at or before `horizon_us`
    /// — exact `(due, session, epoch)` order. Under concurrent callers
    /// a lost race rescans, so each returned wakeup is popped exactly
    /// once.
    pub fn pop_due(&self, horizon_us: u64, obs: Option<&ObsPlane>) -> Option<PoppedTimer> {
        loop {
            let (due, s, _, i) = self.scan(horizon_us, obs)?;
            let shard = &self.shards[i];
            let mut g = shard.lock(obs);
            let popped = g.pop_exact(due, s);
            shard.sync(&g);
            drop(g);
            match popped {
                Some(p) => return Some(p),
                None => continue,
            }
        }
    }

    /// Finishes a popped wakeup: re-arms at `next = Some((due, draws))`
    /// or retires the worker (`None`), unless a concurrent
    /// deregister/re-register superseded the epoch.
    pub fn complete(
        &self,
        s: SessionId,
        epoch: u64,
        next: Option<(u64, u64)>,
        obs: Option<&ObsPlane>,
    ) -> CompleteOutcome {
        let shard = self.shard_of(s);
        let mut g = shard.lock(obs);
        let out = g.complete(s, epoch, next);
        shard.sync(&g);
        out
    }

    /// Every worker's scheduling state (inactive epoch watermarks
    /// included), ascending by session — what a durability boundary
    /// journals.
    pub fn timer_state(&self) -> Vec<TimerEntry> {
        let mut out: Vec<TimerEntry> = Vec::new();
        for shard in self.shards.iter() {
            let g = shard.lock(None);
            out.extend(g.timers.iter().map(|(&session, t)| TimerEntry {
                session,
                due_us: t.due_us,
                epoch: t.epoch,
                draws: t.draws,
                active: t.active,
            }));
        }
        out.sort_unstable_by_key(|e| e.session);
        out
    }

    /// Reinstalls journaled timer state; `live(session)` gates which
    /// entries resume as scheduled wakeups (the rest install as
    /// inactive epoch watermarks).
    pub fn restore(&self, entries: &[TimerEntry], live: impl Fn(SessionId) -> bool) {
        for e in entries {
            let shard = self.shard_of(e.session);
            let mut g = shard.lock(None);
            g.restore(e, live(e.session));
            shard.sync(&g);
        }
    }

    /// Resident entries whose registrations were superseded or
    /// deactivated and that have not yet been reclaimed (the
    /// `vc_sched_stale_entries` gauge).
    pub fn stale_entries(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.stale.load(Ordering::Relaxed))
            .sum()
    }

    /// Stale entries reclaimed so far (cascade + prune).
    pub fn stale_reclaimed(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.reclaimed.load(Ordering::Relaxed))
            .sum()
    }

    /// Resident entries per shard (the `vc_sched_depth` gauge).
    pub fn shard_depths(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.depth.load(Ordering::Relaxed))
            .collect()
    }

    /// Per-shard `(lock acquisitions, contended acquisitions)`.
    pub fn shard_lock_counters(&self) -> Vec<(u64, u64)> {
        self.shards
            .iter()
            .map(|s| {
                (
                    s.acquires.load(Ordering::Relaxed),
                    s.conflicts.load(Ordering::Relaxed),
                )
            })
            .collect()
    }
}

impl Default for ShardedWheel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(i: usize) -> SessionId {
        SessionId::from(i)
    }

    /// Drains everything due at or before `horizon`, re-arming nothing.
    fn drain(w: &ShardedWheel, horizon: u64) -> Vec<(u64, SessionId)> {
        let mut out = Vec::new();
        while let Some(p) = w.pop_due(horizon, None) {
            w.complete(p.session, p.epoch, None, None);
            out.push((p.due_us, p.session));
        }
        out
    }

    #[test]
    fn dispatch_is_in_due_then_session_order() {
        let w = ShardedWheel::with_shards(4);
        for (i, due) in [(0usize, 500u64), (1, 100), (2, 100), (3, 90_000), (4, 7)] {
            w.register_with(sid(i), |_| due, None);
        }
        let order = drain(&w, u64::MAX);
        assert_eq!(
            order,
            vec![
                (7, sid(4)),
                (100, sid(1)),
                (100, sid(2)),
                (500, sid(0)),
                (90_000, sid(3)),
            ]
        );
        assert_eq!(w.peek(None), None);
    }

    #[test]
    fn horizon_bounds_pops_and_peek_is_exact() {
        let w = ShardedWheel::with_shards(2);
        w.register_with(sid(0), |_| 10, None);
        w.register_with(sid(1), |_| 20, None);
        assert_eq!(w.peek(None), Some((10, sid(0))));
        assert!(w.pop_due(5, None).is_none());
        let p = w.pop_due(10, None).unwrap();
        assert_eq!((p.due_us, p.session), (10, sid(0)));
        // Re-arm past the horizon; only session 1 remains due.
        assert_eq!(
            w.complete(p.session, p.epoch, Some((1_000, 1)), None),
            CompleteOutcome::Rescheduled(1_000)
        );
        let p = w.pop_due(20, None).unwrap();
        assert_eq!((p.due_us, p.session), (20, sid(1)));
    }

    #[test]
    fn deregistered_entries_are_reclaimed_not_dispatched() {
        let w = ShardedWheel::with_shards(1);
        // All three in one shard; two become stale.
        w.register_with(sid(0), |_| 100, None);
        w.register_with(sid(1), |_| 200, None);
        w.register_with(sid(2), |_| 300, None);
        w.deregister(sid(0));
        w.deregister(sid(2));
        assert_eq!(w.stale_entries(), 2);
        let order = drain(&w, u64::MAX);
        assert_eq!(order, vec![(200, sid(1))]);
        assert_eq!(w.stale_entries(), 0, "stale entries reclaimed");
        assert_eq!(w.stale_reclaimed(), 2);
        assert_eq!(w.shard_depths().iter().sum::<u64>(), 0);
    }

    #[test]
    fn re_registration_supersedes_and_bumps_epoch() {
        let w = ShardedWheel::with_shards(1);
        let (e1, _) = w.register_with(sid(0), |_| 100, None);
        assert_eq!(e1, 1);
        let (e2, _) = w.register_with(sid(0), |_| 50, None);
        assert_eq!(e2, 2);
        assert_eq!(w.stale_entries(), 1, "epoch-1 entry is inert");
        let order = drain(&w, u64::MAX);
        assert_eq!(order, vec![(50, sid(0))], "only the epoch-2 entry fires");
    }

    #[test]
    fn overflow_entries_promote_when_the_clock_reaches_their_block() {
        let w = ShardedWheel::with_shards(1);
        let far = SPAN_US * 2 + 123; // two span blocks out
        w.register_with(sid(0), |_| far, None);
        w.register_with(sid(1), |_| 10, None);
        let order = drain(&w, u64::MAX);
        assert_eq!(order, vec![(10, sid(1)), (far, sid(0))]);
    }

    #[test]
    fn late_registration_below_the_shard_clock_still_fires_in_order() {
        let w = ShardedWheel::with_shards(1);
        w.register_with(sid(0), |_| 1_000, None);
        let p = w.pop_due(u64::MAX, None).unwrap();
        assert_eq!(p.due_us, 1_000);
        w.complete(p.session, p.epoch, Some((2_000, 1)), None);
        // Clock is at 1000; register dues below it.
        w.register_with(sid(1), |_| 40, None);
        w.register_with(sid(2), |_| 30, None);
        let order = drain(&w, u64::MAX);
        assert_eq!(order, vec![(30, sid(2)), (40, sid(1)), (2_000, sid(0))]);
    }

    #[test]
    fn timer_state_round_trips_through_restore() {
        let w = ShardedWheel::with_shards(4);
        w.register_with(sid(3), |_| 300, None);
        w.register_with(sid(7), |_| 700, None);
        w.deregister(sid(7));
        let state = w.timer_state();
        let w2 = ShardedWheel::with_shards(8);
        w2.restore(&state, |_| true);
        assert_eq!(w2.timer_state(), state);
        assert_eq!(w2.peek(None), Some((300, sid(3))));
        // A not-live session restores as a watermark only.
        let w3 = ShardedWheel::with_shards(2);
        w3.restore(&state, |s| s != sid(3));
        assert_eq!(w3.peek(None), None);
        let e3 = w3
            .timer_state()
            .into_iter()
            .find(|e| e.session == sid(3))
            .unwrap();
        assert!(!e3.active, "non-live session restores inactive");
        assert_eq!(e3.epoch, 1, "epoch watermark survives");
    }

    #[test]
    fn shard_count_does_not_change_dispatch_order() {
        let dues = [
            (0usize, 5_000u64),
            (1, 64),
            (2, 64),
            (3, 4_096),
            (4, 1),
            (5, SPAN_US + 9),
            (6, 262_144),
            (7, 63),
        ];
        let mut orders = Vec::new();
        for shards in [1usize, 4, 64] {
            let w = ShardedWheel::with_shards(shards);
            for (i, due) in dues {
                w.register_with(sid(i), |_| due, None);
            }
            orders.push(drain(&w, u64::MAX));
        }
        assert_eq!(orders[0], orders[1]);
        assert_eq!(orders[1], orders[2]);
    }
}
