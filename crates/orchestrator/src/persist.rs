//! Fleet durability: the journaled event types, the durable snapshot
//! state, and the crash-recovery path — `vc-persist`'s generic codec,
//! WAL, and snapshot machinery specialized to the control plane.
//!
//! ## What is durable
//!
//! The control plane's entire mutable state is the per-session slots
//! (placements + live flags) plus the ledger's holdings plus the
//! counters; [`DurableFleetState`] captures exactly that. Between
//! snapshots, every state-changing mutation appends one [`FleetOp`] to
//! the write-ahead journal *while the mutated slot's lock (or the
//! FREEZE write lock) is held*, so per-session journal order equals
//! per-session commit order and the journal's sequence numbers are a
//! valid linearization: snapshot + journal tail ⇒ the pre-crash fleet,
//! bit for bit (assignments and holds are exact; objectives re-evaluate
//! to identical `f64`s).
//!
//! Counter-only stays are the one exception: they are batched into
//! periodic [`FleetOp::StayBatch`] counter-delta records (one durable
//! record per no-op hop dominated idle-fleet journal traffic). Batches
//! flush at the configured threshold and at every durability boundary
//! — [`Fleet::commit_journal`], [`Fleet::checkpoint`],
//! [`Fleet::durable_state`] — so captured counters always recover
//! exactly; only a *hard* crash between boundaries can lose up to
//! `stay_batch − 1` stay *counts* (never any state).
//!
//! ## Replay semantics
//!
//! Deterministic effects are re-derived, not logged: `FailAgent`
//! replays by re-running the (deterministic) evacuation. Admission is
//! the opposite: since format v4 the decision is **search-dependent**
//! (the engine searches against live residuals, and a recovered build
//! might be configured differently), so an `Admit` carries the chosen
//! placement *and* its search tier/repair effort — replay installs the
//! journaled placement bit-for-bit and re-increments the per-tier
//! counters, never re-running the search. `Reject` carries its typed
//! refusal reason for the same counter-exactness. `Hop` carries the
//! decision plus its old assignment, letting replay detect divergence
//! (a mismatched old agent means the journal and snapshot disagree —
//! corruption, not a tolerable tail). `Timers` records (and the v4
//! snapshot's timer field) carry the worker pool's reconstructible
//! WAIT-countdown state, so a recovered fleet resumes its timers
//! instead of re-drawing them.
//!
//! ## Recovery
//!
//! [`Fleet::recover`] loads the newest valid snapshot, replays journal
//! records with larger sequence numbers (tolerating a torn *final*
//! record — the expected crash artifact), re-audits ledger
//! conservation, and re-checkpoints so the torn tail is discarded and
//! the store is compact before the fleet goes live again.

use crate::fleet::{self, Fleet, FleetConfig, FleetCounters, GrowthRecord};
use crate::ledger::{AgentHold, SessionHold};
use crate::telemetry::FleetSnapshot;
use crate::workers::{ReoptPool, TimerEntry};
use parking_lot::Mutex;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use vc_algo::admission::AdmissionTier;
use vc_core::{Decision, TaskId, UapProblem};
use vc_model::{AgentDef, AgentId, SessionDef, SessionId, UserId};
use vc_obs::{OpKind, TraceKind};
use vc_persist::codec::{CodecError, Decode, Encode, Reader};
use vc_persist::journal::{read_journal, FsyncPolicy, JournalError, JournalWriter, RetryPolicy};
use vc_persist::snapshot::{
    compact, journal_files, journal_path, latest_snapshot, write_snapshot_with, SnapshotError,
};
use vc_persist::vfs::{real_vfs, Vfs};

/// One journaled fleet mutation. Every variant is applied under the
/// FREEZE lock in both live operation and replay.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetOp {
    /// A session was admitted with this exact placement. Admission is
    /// search-dependent (format v4): replay installs the journaled
    /// placement directly and re-increments the tier/repair counters —
    /// it never re-runs the search.
    Admit {
        /// The admitted session.
        session: SessionId,
        /// Chosen user placement (instance order).
        users: Vec<(UserId, AgentId)>,
        /// Chosen transcoding-task placement (instance order).
        tasks: Vec<(TaskId, AgentId)>,
        /// The search tier that produced the placement.
        tier: AdmissionTier,
        /// Violation-driven repair moves the search applied.
        repair_steps: u64,
    },
    /// An admission attempt was refused (counter-only; no state change).
    Reject {
        /// The refused session.
        session: SessionId,
        /// Why it was refused (drives the per-reason counters).
        reason: RefusalReason,
    },
    /// A live session departed.
    Depart {
        /// The departed session.
        session: SessionId,
    },
    /// An agent failed; replay re-runs the deterministic evacuation.
    FailAgent {
        /// The failed agent.
        agent: AgentId,
    },
    /// A failed agent came back.
    RestoreAgent {
        /// The restored agent.
        agent: AgentId,
    },
    /// An Alg. 1 HOP migrated one decision.
    Hop {
        /// The hopping session.
        session: SessionId,
        /// The applied decision (target = new assignment).
        decision: Decision,
        /// The decision target's assignment *before* the hop — lets
        /// replay detect journal/snapshot divergence.
        old_agent: AgentId,
    },
    /// An Alg. 1 HOP stayed put (counter-only; no state change).
    /// Legacy per-stay record — still replayable, no longer emitted
    /// (stays are batched into [`Self::StayBatch`]).
    Stay {
        /// The session whose hop stayed.
        session: SessionId,
    },
    /// `count` HOPs stayed put since the last flush (counter-delta; no
    /// state change). Order-independent under replay.
    StayBatch {
        /// Number of stays in the batch.
        count: u64,
    },
    /// A never-before-seen conference was registered online (format v3).
    /// Replay re-registers the definition and checks the assigned id —
    /// a mismatch means the journal and snapshot disagree.
    RegisterSession {
        /// The id the registration was assigned.
        session: SessionId,
        /// The full conference definition (users, demands, delay
        /// columns) — everything needed to regrow the universe.
        def: SessionDef,
    },
    /// The worker pool's WAIT-timer state at a durability boundary
    /// (format v4): one entry per live logical worker. Replay installs
    /// the newest record so recovery hands the caller exactly the
    /// countdowns the crashed pool had pending.
    Timers {
        /// Live worker timers, ascending by session.
        entries: Vec<TimerEntry>,
    },
    /// A displaced/refused session entered the re-admission queue
    /// (format v5). The record carries the entry's *entire* state —
    /// four integers — so replay installs it verbatim; the backoff
    /// schedule beyond `due_us` is re-derivable from
    /// [`crate::readmit::backoff_us`]'s pure recipe.
    ReadmitEnqueue {
        /// The queued session.
        session: SessionId,
        /// Displacement epoch (per-session backoff stream selector).
        epoch: u64,
        /// Attempts already spent in this epoch.
        attempt: u32,
        /// Virtual time (µs) of the next admission attempt.
        due_us: u64,
    },
    /// A session left the re-admission queue without being admitted —
    /// queue overflow or retry-budget exhaustion (format v5). Replay
    /// removes the entry (if present; overflow drops never installed
    /// one) and counts the drop.
    ReadmitDrop {
        /// The dropped session.
        session: SessionId,
    },
    /// A never-before-seen agent joined the fleet online (format v6).
    /// Replay re-registers the definition (growing the problem, every
    /// slot's load vector, and the ledger) and checks the assigned id —
    /// a mismatch means the journal and snapshot disagree.
    RegisterAgent {
        /// The id the registration was assigned.
        agent: AgentId,
        /// The full agent definition (spec, delay row/column) —
        /// everything needed to regrow the agent pool.
        def: AgentDef,
        /// The ledger region the agent joined.
        region: String,
    },
    /// An agent was drained — planned evacuation (format v6). Replay
    /// re-runs the deterministic evacuation exactly like `FailAgent`
    /// and marks the agent permanently drained.
    DrainAgent {
        /// The drained agent.
        agent: AgentId,
    },
}

/// Why an admission attempt was refused — the journaled shape of
/// `AdmitError`, driving the per-reason counters through replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefusalReason {
    /// The session was already live.
    AlreadyLive,
    /// No candidate agent could carry a user's last mile.
    UserFit,
    /// No agent with a free slot could take a transcoding group.
    TaskFit,
    /// The fully placed session failed the global check.
    GlobalCheck,
    /// Legacy-mode ledger refusal.
    Capacity,
    /// Legacy-mode delay-bound refusal.
    Delay,
}

impl Encode for RefusalReason {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Self::AlreadyLive => 0,
            Self::UserFit => 1,
            Self::TaskFit => 2,
            Self::GlobalCheck => 3,
            Self::Capacity => 4,
            Self::Delay => 5,
        });
    }
}

impl Decode for RefusalReason {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(Self::AlreadyLive),
            1 => Ok(Self::UserFit),
            2 => Ok(Self::TaskFit),
            3 => Ok(Self::GlobalCheck),
            4 => Ok(Self::Capacity),
            5 => Ok(Self::Delay),
            tag => Err(CodecError::BadTag {
                what: "RefusalReason",
                tag,
            }),
        }
    }
}

/// `AdmissionTier` lives in `vc-algo` and `Encode` in `vc-persist`, so
/// the codec is a pair of free functions rather than an (orphan-rule-
/// forbidden) trait impl.
fn encode_tier(tier: AdmissionTier, out: &mut Vec<u8>) {
    out.push(match tier {
        AdmissionTier::Enumeration => 0,
        AdmissionTier::Repair => 1,
        AdmissionTier::RankedFallback => 2,
    });
}

fn decode_tier(r: &mut Reader<'_>) -> Result<AdmissionTier, CodecError> {
    match u8::decode(r)? {
        0 => Ok(AdmissionTier::Enumeration),
        1 => Ok(AdmissionTier::Repair),
        2 => Ok(AdmissionTier::RankedFallback),
        tag => Err(CodecError::BadTag {
            what: "AdmissionTier",
            tag,
        }),
    }
}

impl Encode for TimerEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        self.session.encode(out);
        self.due_us.encode(out);
        self.epoch.encode(out);
        self.draws.encode(out);
        self.active.encode(out);
    }
}

impl Decode for TimerEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            session: SessionId::decode(r)?,
            due_us: u64::decode(r)?,
            epoch: u64::decode(r)?,
            draws: u64::decode(r)?,
            active: bool::decode(r)?,
        })
    }
}

impl Encode for FleetOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Self::Admit {
                session,
                users,
                tasks,
                tier,
                repair_steps,
            } => {
                out.push(0);
                session.encode(out);
                users.encode(out);
                tasks.encode(out);
                encode_tier(*tier, out);
                repair_steps.encode(out);
            }
            Self::Reject { session, reason } => {
                out.push(1);
                session.encode(out);
                reason.encode(out);
            }
            Self::Depart { session } => {
                out.push(2);
                session.encode(out);
            }
            Self::FailAgent { agent } => {
                out.push(3);
                agent.encode(out);
            }
            Self::RestoreAgent { agent } => {
                out.push(4);
                agent.encode(out);
            }
            Self::Hop {
                session,
                decision,
                old_agent,
            } => {
                out.push(5);
                session.encode(out);
                decision.encode(out);
                old_agent.encode(out);
            }
            Self::Stay { session } => {
                out.push(6);
                session.encode(out);
            }
            Self::StayBatch { count } => {
                out.push(7);
                count.encode(out);
            }
            Self::RegisterSession { session, def } => {
                out.push(8);
                session.encode(out);
                def.encode(out);
            }
            Self::Timers { entries } => {
                out.push(9);
                entries.encode(out);
            }
            Self::ReadmitEnqueue {
                session,
                epoch,
                attempt,
                due_us,
            } => {
                out.push(10);
                session.encode(out);
                epoch.encode(out);
                attempt.encode(out);
                due_us.encode(out);
            }
            Self::ReadmitDrop { session } => {
                out.push(11);
                session.encode(out);
            }
            Self::RegisterAgent { agent, def, region } => {
                out.push(12);
                agent.encode(out);
                def.encode(out);
                region.encode(out);
            }
            Self::DrainAgent { agent } => {
                out.push(13);
                agent.encode(out);
            }
        }
    }
}

impl Decode for FleetOp {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(Self::Admit {
                session: SessionId::decode(r)?,
                users: Vec::decode(r)?,
                tasks: Vec::decode(r)?,
                tier: decode_tier(r)?,
                repair_steps: u64::decode(r)?,
            }),
            1 => Ok(Self::Reject {
                session: SessionId::decode(r)?,
                reason: RefusalReason::decode(r)?,
            }),
            2 => Ok(Self::Depart {
                session: SessionId::decode(r)?,
            }),
            3 => Ok(Self::FailAgent {
                agent: AgentId::decode(r)?,
            }),
            4 => Ok(Self::RestoreAgent {
                agent: AgentId::decode(r)?,
            }),
            5 => Ok(Self::Hop {
                session: SessionId::decode(r)?,
                decision: Decision::decode(r)?,
                old_agent: AgentId::decode(r)?,
            }),
            6 => Ok(Self::Stay {
                session: SessionId::decode(r)?,
            }),
            7 => Ok(Self::StayBatch {
                count: u64::decode(r)?,
            }),
            8 => Ok(Self::RegisterSession {
                session: SessionId::decode(r)?,
                def: SessionDef::decode(r)?,
            }),
            9 => Ok(Self::Timers {
                entries: Vec::decode(r)?,
            }),
            10 => Ok(Self::ReadmitEnqueue {
                session: SessionId::decode(r)?,
                epoch: u64::decode(r)?,
                attempt: u32::decode(r)?,
                due_us: u64::decode(r)?,
            }),
            11 => Ok(Self::ReadmitDrop {
                session: SessionId::decode(r)?,
            }),
            12 => Ok(Self::RegisterAgent {
                agent: AgentId::decode(r)?,
                def: AgentDef::decode(r)?,
                region: String::decode(r)?,
            }),
            13 => Ok(Self::DrainAgent {
                agent: AgentId::decode(r)?,
            }),
            tag => Err(CodecError::BadTag {
                what: "FleetOp",
                tag,
            }),
        }
    }
}

impl Encode for GrowthRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Self::Session(def) => {
                out.push(0);
                def.encode(out);
            }
            Self::Agent(def, region) => {
                out.push(1);
                def.encode(out);
                region.encode(out);
            }
        }
    }
}

impl Decode for GrowthRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(Self::Session(SessionDef::decode(r)?)),
            1 => Ok(Self::Agent(AgentDef::decode(r)?, String::decode(r)?)),
            tag => Err(CodecError::BadTag {
                what: "GrowthRecord",
                tag,
            }),
        }
    }
}

impl Encode for crate::readmit::ReadmitEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        self.session.encode(out);
        self.epoch.encode(out);
        self.attempt.encode(out);
        self.due_us.encode(out);
    }
}

impl Decode for crate::readmit::ReadmitEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            session: SessionId::decode(r)?,
            epoch: u64::decode(r)?,
            attempt: u32::decode(r)?,
            due_us: u64::decode(r)?,
        })
    }
}

impl Encode for AgentHold {
    fn encode(&self, out: &mut Vec<u8>) {
        self.agent.encode(out);
        self.download_mbps.encode(out);
        self.upload_mbps.encode(out);
        self.transcode_units.encode(out);
    }
}

impl Decode for AgentHold {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            agent: AgentId::decode(r)?,
            download_mbps: f64::decode(r)?,
            upload_mbps: f64::decode(r)?,
            transcode_units: u32::decode(r)?,
        })
    }
}

impl Encode for SessionHold {
    fn encode(&self, out: &mut Vec<u8>) {
        self.holds.encode(out);
    }
}

impl Decode for SessionHold {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            holds: Vec::decode(r)?,
        })
    }
}

impl Encode for FleetSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.time_s.encode(out);
        self.universe_sessions.encode(out);
        self.universe_users.encode(out);
        self.live_sessions.encode(out);
        self.objective.encode(out);
        self.mean_session_objective.encode(out);
        self.traffic_mbps.encode(out);
        self.mean_delay_ms.encode(out);
        self.mean_utilization.encode(out);
        self.max_utilization.encode(out);
        self.admitted.encode(out);
        self.rejected.encode(out);
        self.departed.encode(out);
        self.migrations.encode(out);
        self.admission_success_rate.encode(out);
        self.admission_attempts.encode(out);
        self.admitted_enumeration.encode(out);
        self.admitted_repair.encode(out);
        self.admitted_fallback.encode(out);
        self.admission_repair_steps.encode(out);
        self.refused_user_fit.encode(out);
        self.refused_task_fit.encode(out);
        self.refused_global.encode(out);
        self.conservation_violations.encode(out);
        self.overshoot_fraction.encode(out);
        self.displaced.encode(out);
        self.readmit_queued.encode(out);
        self.durability_degraded.encode(out);
    }
}

impl Decode for FleetSnapshot {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            time_s: f64::decode(r)?,
            universe_sessions: usize::decode(r)?,
            universe_users: usize::decode(r)?,
            live_sessions: usize::decode(r)?,
            objective: f64::decode(r)?,
            mean_session_objective: f64::decode(r)?,
            traffic_mbps: f64::decode(r)?,
            mean_delay_ms: f64::decode(r)?,
            mean_utilization: f64::decode(r)?,
            max_utilization: f64::decode(r)?,
            admitted: usize::decode(r)?,
            rejected: usize::decode(r)?,
            departed: usize::decode(r)?,
            migrations: usize::decode(r)?,
            admission_success_rate: f64::decode(r)?,
            admission_attempts: usize::decode(r)?,
            admitted_enumeration: usize::decode(r)?,
            admitted_repair: usize::decode(r)?,
            admitted_fallback: usize::decode(r)?,
            admission_repair_steps: usize::decode(r)?,
            refused_user_fit: usize::decode(r)?,
            refused_task_fit: usize::decode(r)?,
            refused_global: usize::decode(r)?,
            conservation_violations: usize::decode(r)?,
            overshoot_fraction: f64::decode(r)?,
            displaced: usize::decode(r)?,
            readmit_queued: usize::decode(r)?,
            durability_degraded: bool::decode(r)?,
        })
    }
}

/// The counters as plain integers (the atomics snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Sessions admitted.
    pub admitted: u64,
    /// Admission attempts refused.
    pub rejected: u64,
    /// Sessions departed.
    pub departed: u64,
    /// Successful HOP migrations.
    pub migrations: u64,
    /// HOPs that stayed put.
    pub stays: u64,
    /// Evacuation moves applied on agent failures.
    pub evacuations: u64,
    /// Forced evacuation moves.
    pub forced_moves: u64,
    /// Admissions placed by the enumeration tier.
    pub admitted_enumeration: u64,
    /// Admissions placed by greedy + repair.
    pub admitted_repair: u64,
    /// Admissions placed by the ranked fallback (legacy mode included).
    pub admitted_fallback: u64,
    /// Violation-driven repair moves across all admissions.
    pub repair_steps: u64,
    /// Refusals at the user-placement stage.
    pub refused_user_fit: u64,
    /// Refusals at the transcoding-placement stage.
    pub refused_task_fit: u64,
    /// Refusals at the global check (legacy capacity/delay included).
    pub refused_global: u64,
    /// Sessions displaced by forced evacuations (format v5).
    pub displaced: u64,
    /// Re-admission queue enqueues (initial and retry re-installs).
    pub readmit_enqueued: u64,
    /// Sessions re-admitted out of the queue.
    pub readmit_admitted: u64,
    /// Queue drops (overflow + retry-budget exhaustion).
    pub readmit_dropped: u64,
}

impl CounterSnapshot {
    /// Reads the fleet's counters.
    pub fn capture(c: &FleetCounters) -> Self {
        let get = |a: &std::sync::atomic::AtomicUsize| a.load(Ordering::Relaxed) as u64;
        Self {
            admitted: get(&c.admitted),
            rejected: get(&c.rejected),
            departed: get(&c.departed),
            migrations: get(&c.migrations),
            stays: get(&c.stays),
            evacuations: get(&c.evacuations),
            forced_moves: get(&c.forced_moves),
            admitted_enumeration: get(&c.admitted_enumeration),
            admitted_repair: get(&c.admitted_repair),
            admitted_fallback: get(&c.admitted_fallback),
            repair_steps: get(&c.repair_steps),
            refused_user_fit: get(&c.refused_user_fit),
            refused_task_fit: get(&c.refused_task_fit),
            refused_global: get(&c.refused_global),
            displaced: get(&c.displaced),
            readmit_enqueued: get(&c.readmit_enqueued),
            readmit_admitted: get(&c.readmit_admitted),
            readmit_dropped: get(&c.readmit_dropped),
        }
    }

    fn install(&self, c: &FleetCounters) {
        let set = |a: &std::sync::atomic::AtomicUsize, v: u64| {
            a.store(v as usize, Ordering::Relaxed);
        };
        set(&c.admitted, self.admitted);
        set(&c.rejected, self.rejected);
        set(&c.departed, self.departed);
        set(&c.migrations, self.migrations);
        set(&c.stays, self.stays);
        set(&c.evacuations, self.evacuations);
        set(&c.forced_moves, self.forced_moves);
        set(&c.admitted_enumeration, self.admitted_enumeration);
        set(&c.admitted_repair, self.admitted_repair);
        set(&c.admitted_fallback, self.admitted_fallback);
        set(&c.repair_steps, self.repair_steps);
        set(&c.refused_user_fit, self.refused_user_fit);
        set(&c.refused_task_fit, self.refused_task_fit);
        set(&c.refused_global, self.refused_global);
        set(&c.displaced, self.displaced);
        set(&c.readmit_enqueued, self.readmit_enqueued);
        set(&c.readmit_admitted, self.readmit_admitted);
        set(&c.readmit_dropped, self.readmit_dropped);
    }
}

impl Encode for CounterSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.admitted.encode(out);
        self.rejected.encode(out);
        self.departed.encode(out);
        self.migrations.encode(out);
        self.stays.encode(out);
        self.evacuations.encode(out);
        self.forced_moves.encode(out);
        self.admitted_enumeration.encode(out);
        self.admitted_repair.encode(out);
        self.admitted_fallback.encode(out);
        self.repair_steps.encode(out);
        self.refused_user_fit.encode(out);
        self.refused_task_fit.encode(out);
        self.refused_global.encode(out);
        self.displaced.encode(out);
        self.readmit_enqueued.encode(out);
        self.readmit_admitted.encode(out);
        self.readmit_dropped.encode(out);
    }
}

impl Decode for CounterSnapshot {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            admitted: u64::decode(r)?,
            rejected: u64::decode(r)?,
            departed: u64::decode(r)?,
            migrations: u64::decode(r)?,
            stays: u64::decode(r)?,
            evacuations: u64::decode(r)?,
            forced_moves: u64::decode(r)?,
            admitted_enumeration: u64::decode(r)?,
            admitted_repair: u64::decode(r)?,
            admitted_fallback: u64::decode(r)?,
            repair_steps: u64::decode(r)?,
            refused_user_fit: u64::decode(r)?,
            refused_task_fit: u64::decode(r)?,
            refused_global: u64::decode(r)?,
            displaced: u64::decode(r)?,
            readmit_enqueued: u64::decode(r)?,
            readmit_admitted: u64::decode(r)?,
            readmit_dropped: u64::decode(r)?,
        })
    }
}

/// The fleet's complete control-plane state: everything a crashed
/// orchestrator needs to resume mid-fleet. Format v6: carries the
/// *interleaved* session/agent growth log (sessions and agents
/// registered online since construction), so recovery can regrow the
/// universe from the seed problem — in the original order, which
/// matters because a session's delay rows depend on the agent count at
/// its registration time — before installing placements.
#[derive(Debug, Clone, PartialEq)]
pub struct DurableFleetState {
    /// Sessions and agents registered online, in registration order
    /// (the universe beyond the seed problem). Applied first on
    /// restore.
    pub growth: Vec<GrowthRecord>,
    /// `λ`: user → agent, instance order (inactive sessions included —
    /// their inert assignments are part of the state).
    pub user_agents: Vec<AgentId>,
    /// `γ`: task → agent, instance order.
    pub task_agents: Vec<AgentId>,
    /// Live-session mask, instance order.
    pub active: Vec<bool>,
    /// Agent availability, instance order.
    pub available: Vec<bool>,
    /// Agent drained flags, instance order (format v6). A drained
    /// agent is permanently out: restore refuses it.
    pub drained: Vec<bool>,
    /// Region name table, region-id order (format v6). Index 0 is the
    /// default region.
    pub regions: Vec<String>,
    /// Per-agent region ids, instance order (format v6). Indices into
    /// `regions`.
    pub agent_regions: Vec<u32>,
    /// Ledger holdings, ascending by session id.
    pub holdings: Vec<(SessionId, SessionHold)>,
    /// Control-plane counters.
    pub counters: CounterSnapshot,
    /// Worker-pool WAIT timers at the last durability boundary that
    /// recorded them (format v4; empty when the fleet runs without a
    /// pool or never journaled timers). Recovery hands these back so
    /// the pool resumes countdowns instead of re-drawing them.
    pub timers: Vec<TimerEntry>,
    /// Re-admission queue entries, ascending by session (format v5).
    pub readmit: Vec<crate::readmit::ReadmitEntry>,
    /// Per-session displacement-epoch watermarks, ascending by session
    /// (format v5). Kept beyond the queued entries so a session's next
    /// displacement draws a fresh backoff stream even across a
    /// checkpoint.
    pub readmit_epochs: Vec<(SessionId, u64)>,
}

impl Encode for DurableFleetState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.growth.encode(out);
        self.user_agents.encode(out);
        self.task_agents.encode(out);
        self.active.encode(out);
        self.available.encode(out);
        self.drained.encode(out);
        self.regions.encode(out);
        self.agent_regions.encode(out);
        self.holdings.encode(out);
        self.counters.encode(out);
        self.timers.encode(out);
        self.readmit.encode(out);
        self.readmit_epochs.encode(out);
    }
}

impl Decode for DurableFleetState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            growth: Vec::decode(r)?,
            user_agents: Vec::decode(r)?,
            task_agents: Vec::decode(r)?,
            active: Vec::decode(r)?,
            available: Vec::decode(r)?,
            drained: Vec::decode(r)?,
            regions: Vec::decode(r)?,
            agent_regions: Vec::decode(r)?,
            holdings: Vec::decode(r)?,
            counters: CounterSnapshot::decode(r)?,
            timers: Vec::decode(r)?,
            readmit: Vec::decode(r)?,
            readmit_epochs: Vec::decode(r)?,
        })
    }
}

/// Where and how durably the fleet persists.
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// The persistence directory (created if missing).
    pub dir: PathBuf,
    /// Journal fsync policy. `Always` never loses an acknowledged
    /// event; `Batch`/`Manual` trade the unsynced tail for throughput.
    pub fsync: FsyncPolicy,
    /// Counter-only stays accumulate and flush as one `StayBatch`
    /// record every `stay_batch` stays (and at every durability
    /// boundary). `1` restores the legacy one-record-per-stay behavior;
    /// larger values cut idle-fleet journal traffic proportionally at
    /// the cost of up to `stay_batch − 1` stay *counts* (never state)
    /// on a hard crash between boundaries.
    pub stay_batch: usize,
}

/// Default stay-batch size (see [`PersistConfig::stay_batch`]).
pub const DEFAULT_STAY_BATCH: usize = 64;

impl PersistConfig {
    /// `Always`-fsync persistence in `dir` with the default stay batch.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            stay_batch: DEFAULT_STAY_BATCH,
        }
    }
}

/// The attached journal sink (one per persistent fleet). Locked
/// *after* the FREEZE/slot locks, never before — the same order
/// everywhere, so the set cannot deadlock.
#[derive(Debug)]
pub struct FleetPersistence {
    pub(crate) dir: PathBuf,
    pub(crate) fsync: FsyncPolicy,
    pub(crate) stay_batch: usize,
    /// The storage layer under every journal/snapshot write — the real
    /// filesystem in production, a `vc-chaos` fault plane under test.
    pub(crate) vfs: Arc<dyn Vfs>,
    /// Fsync retry/degrade policy handed to each rotated journal.
    pub(crate) retry: RetryPolicy,
    pub(crate) journal: Mutex<JournalWriter<FleetOp>>,
    /// Exclusive advisory lock on `dir/LOCK`, held for the fleet's
    /// lifetime so two processes cannot write the same store (the
    /// second `with_persistence` would otherwise wipe the first's
    /// files out from under it). The OS releases it on process death,
    /// so a crash never leaves the store unrecoverable.
    pub(crate) _lock: std::fs::File,
}

/// Takes the exclusive store lock, refusing if another live fleet
/// holds it.
fn acquire_store_lock(dir: &Path) -> Result<std::fs::File, PersistError> {
    let lock = std::fs::OpenOptions::new()
        .create(true)
        .truncate(false)
        .write(true)
        .open(dir.join("LOCK"))?;
    match lock.try_lock() {
        Ok(()) => Ok(lock),
        Err(std::fs::TryLockError::WouldBlock) => Err(PersistError::Locked(dir.to_path_buf())),
        Err(std::fs::TryLockError::Error(e)) => Err(e.into()),
    }
}

/// Why persistence or recovery failed.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem error.
    Io(io::Error),
    /// Journal-level failure (corruption, version mismatch).
    Journal(JournalError),
    /// Snapshot-level failure.
    Snapshot(SnapshotError),
    /// The snapshot does not fit the given problem (wrong instance).
    Mismatch(String),
    /// Journal replay diverged from the snapshot (gap, refused
    /// admission, stale hop) — corruption beyond a torn tail.
    Replay(String),
    /// The recovered fleet failed the ledger-conservation audit.
    Audit(Vec<String>),
    /// The fleet has no persistence attached.
    NotAttached,
    /// The store directory holds no snapshot at all. Every valid store
    /// has one ([`Fleet::with_persistence`] writes the genesis snapshot
    /// before the first event), so this is a wrong path or lost data —
    /// going live on a silently-fresh fleet would drop every
    /// reservation the operator expected to recover.
    NoStore(PathBuf),
    /// Another live fleet holds the store's exclusive lock — a second
    /// writer would corrupt it.
    Locked(PathBuf),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "persistence I/O error: {e}"),
            Self::Journal(e) => write!(f, "{e}"),
            Self::Snapshot(e) => write!(f, "{e}"),
            Self::Mismatch(m) => write!(f, "snapshot/problem mismatch: {m}"),
            Self::Replay(m) => write!(f, "journal replay failed: {m}"),
            Self::Audit(problems) => {
                write!(f, "recovered fleet failed its audit: {problems:?}")
            }
            Self::NotAttached => write!(f, "fleet has no persistence attached"),
            Self::NoStore(dir) => {
                write!(f, "no snapshot found in {} — not a store", dir.display())
            }
            Self::Locked(dir) => {
                write!(f, "store {} is locked by another fleet", dir.display())
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<JournalError> for PersistError {
    fn from(e: JournalError) -> Self {
        Self::Journal(e)
    }
}

impl From<SnapshotError> for PersistError {
    fn from(e: SnapshotError) -> Self {
        Self::Snapshot(e)
    }
}

/// What [`Fleet::recover`] found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence number of the snapshot recovery started from (0 =
    /// genesis / no snapshot).
    pub snapshot_seq: u64,
    /// Journal records replayed on top of the snapshot.
    pub replayed: usize,
    /// Whether the journal ended in a torn record (discarded).
    pub torn_tail: bool,
    /// The last event sequence number in the recovered state.
    pub last_seq: u64,
    /// The newest journaled worker-pool timer state (empty if none was
    /// ever recorded). Feed into `ReoptPool::restore_timers` so the
    /// recovered fleet's WAIT countdowns resume exactly.
    pub timers: Vec<TimerEntry>,
}

/// Captures the durable state from the slots. Caller holds the FREEZE
/// lock (passing its universe in) — write for a live fleet, read for a
/// freshly-built one no other thread can see.
fn capture(fleet: &Fleet, u: &fleet::Universe) -> DurableFleetState {
    let (user_agents, task_agents, active) = fleet.global_placements_locked(u);
    DurableFleetState {
        growth: u.growth.clone(),
        user_agents,
        task_agents,
        active,
        available: u.available.clone(),
        drained: u.drained.clone(),
        regions: fleet.ledger.region_names(),
        agent_regions: u
            .problem
            .instance()
            .agent_ids()
            .map(|l| fleet.ledger.region_of(l))
            .collect(),
        holdings: fleet.ledger.holdings(),
        counters: CounterSnapshot::capture(&fleet.counters),
        timers: fleet.timers.lock().clone(),
        readmit: {
            let q = fleet.readmit.lock();
            q.entries.values().copied().collect()
        },
        readmit_epochs: {
            let q = fleet.readmit.lock();
            let mut epochs: Vec<(SessionId, u64)> =
                q.epochs.iter().map(|(&s, &e)| (s, e)).collect();
            epochs.sort_unstable_by_key(|&(s, _)| s);
            epochs
        },
    }
}

/// Removes every store file (snapshots, journals, temps) from `dir`.
fn wipe_store(dir: &Path) -> io::Result<()> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let keep = entry
            .file_name()
            .to_str()
            .is_none_or(|n| !(n.starts_with("snapshot-") || n.starts_with("journal-")));
        if !keep {
            fs::remove_file(entry.path())?;
        }
    }
    Ok(())
}

impl Fleet {
    /// Creates a fleet like [`Fleet::new`] that journals every mutation
    /// to `persist.dir`, starting from a **fresh** durable store: any
    /// store files already in the directory are removed, a genesis
    /// snapshot (empty fleet, seq 0) is written, and the journal opens
    /// at seq 1. Use [`Fleet::recover`] to *resume* an existing store.
    ///
    /// # Errors
    ///
    /// Any filesystem error.
    pub fn with_persistence(
        problem: Arc<UapProblem>,
        config: FleetConfig,
        persist: PersistConfig,
    ) -> Result<Self, PersistError> {
        Self::with_persistence_on(problem, config, persist, real_vfs(), RetryPolicy::default())
    }

    /// [`Fleet::with_persistence`] through an explicit storage layer:
    /// every journal append, fsync, snapshot write, and rename goes
    /// through `vfs`, and fsync failures follow `retry` (capped backoff,
    /// then buffered-degraded mode). This is the chaos plane's entry
    /// point — wrap the real filesystem in `vc-chaos`'s `FaultyVfs` and
    /// the fleet rides out injected storage faults exactly the way
    /// production would.
    ///
    /// # Errors
    ///
    /// Any filesystem error. Store *creation* errors always propagate —
    /// degraded mode exists for a store that was healthy once, not for
    /// one that never existed.
    pub fn with_persistence_on(
        problem: Arc<UapProblem>,
        config: FleetConfig,
        persist: PersistConfig,
        vfs: Arc<dyn Vfs>,
        retry: RetryPolicy,
    ) -> Result<Self, PersistError> {
        fs::create_dir_all(&persist.dir)?;
        let lock = acquire_store_lock(&persist.dir)?;
        wipe_store(&persist.dir)?;
        let mut fleet = Fleet::new(problem, config);
        let genesis = {
            let u = fleet.freeze.read();
            capture(&fleet, &u)
        };
        write_snapshot_with(&persist.dir, 0, &genesis, &*vfs)?;
        let mut journal = JournalWriter::create_with(
            journal_path(&persist.dir, 1),
            persist.fsync,
            1,
            &*vfs,
            retry,
        )?;
        journal.set_obs(Arc::clone(&fleet.obs));
        fleet.persist = Some(FleetPersistence {
            dir: persist.dir,
            fsync: persist.fsync,
            stay_batch: persist.stay_batch.max(1),
            vfs,
            retry,
            journal: Mutex::new(journal),
            _lock: lock,
        });
        Ok(fleet)
    }

    /// Whether the fleet journals its mutations.
    pub fn is_persistent(&self) -> bool {
        self.persist.is_some()
    }

    /// The persistence directory, if attached.
    pub fn persist_dir(&self) -> Option<&Path> {
        self.persist.as_ref().map(|p| p.dir.as_path())
    }

    /// Forces the journal's buffered tail to disk — the manual
    /// durability boundary for `FsyncPolicy::Batch`/`Manual` fleets
    /// (call it once per telemetry period, at shutdown, …). Flushes any
    /// pending stay batch first, so the synced journal accounts for
    /// every counter.
    ///
    /// # Errors
    ///
    /// [`PersistError::NotAttached`] on an ephemeral fleet, or any
    /// filesystem error.
    pub fn commit_journal(&self) -> Result<(), PersistError> {
        let p = self.persist.as_ref().ok_or(PersistError::NotAttached)?;
        self.flush_stays();
        p.journal.lock().commit()?;
        Ok(())
    }

    /// Writes a snapshot of the current state, rotates the journal, and
    /// compacts the store (older snapshots and fully-covered journal
    /// files are deleted). Runs under the FREEZE lock: the snapshot is
    /// a consistent cut at the returned sequence number.
    ///
    /// # Errors
    ///
    /// [`PersistError::NotAttached`] on an ephemeral fleet, or any
    /// filesystem error.
    pub fn checkpoint(&self) -> Result<u64, PersistError> {
        let u = self.freeze.write();
        let p = self.persist.as_ref().ok_or(PersistError::NotAttached)?;
        self.flush_stays();
        let mut journal = p.journal.lock();
        journal.commit()?;
        let last_seq = journal.next_seq() - 1;
        write_snapshot_with(&p.dir, last_seq, &capture(self, &u), &*p.vfs)?;
        *journal = JournalWriter::create_with(
            journal_path(&p.dir, last_seq + 1),
            p.fsync,
            last_seq + 1,
            &*p.vfs,
            p.retry,
        )?;
        journal.set_obs(Arc::clone(&self.obs));
        compact(&p.dir, last_seq)?;
        drop(journal);
        drop(u);
        self.obs.note_op(OpKind::Checkpoint, last_seq as u32, 0);
        Ok(last_seq)
    }

    /// Reconstructs a fleet from the durable store in `persist.dir`:
    /// loads the newest valid snapshot, replays the journal tail
    /// (tolerating a torn final record), re-audits ledger conservation,
    /// and re-checkpoints so the recovered fleet continues journaling
    /// from a compact store.
    ///
    /// `problem` must be the same instance the store was written
    /// against (the control plane state is meaningless across
    /// instances); dimensions are checked and a mismatch is an error,
    /// not a panic.
    ///
    /// # Errors
    ///
    /// See [`PersistError`]. Notably, a torn record anywhere but the
    /// journal's end, a sequence gap, a hop whose old assignment
    /// disagrees with the replayed state, or a non-empty conservation
    /// audit are all hard errors: recovery refuses to go live on a
    /// state it cannot prove consistent. A directory with no snapshot
    /// at all is [`PersistError::NoStore`] — use
    /// [`Fleet::with_persistence`] to *start* a store.
    pub fn recover(
        persist: PersistConfig,
        problem: Arc<UapProblem>,
        config: FleetConfig,
    ) -> Result<(Self, RecoveryReport), PersistError> {
        Self::recover_with(persist, problem, config, real_vfs(), RetryPolicy::default())
    }

    /// [`Fleet::recover`] through an explicit storage layer (see
    /// [`Fleet::with_persistence_on`]). Reads stay on the real
    /// filesystem — recovery wants the actual on-disk bytes, faults and
    /// all — but the recovery snapshot and the fresh journal the
    /// recovered fleet continues into go through `vfs`/`retry`.
    ///
    /// # Errors
    ///
    /// See [`Fleet::recover`].
    pub fn recover_with(
        persist: PersistConfig,
        problem: Arc<UapProblem>,
        config: FleetConfig,
        vfs: Arc<dyn Vfs>,
        retry: RetryPolicy,
    ) -> Result<(Self, RecoveryReport), PersistError> {
        let lock = acquire_store_lock(&persist.dir)?;
        let snapshot = latest_snapshot::<DurableFleetState>(&persist.dir)?
            .ok_or_else(|| PersistError::NoStore(persist.dir.clone()))?;
        let (snapshot_seq, mut fleet) = (
            snapshot.0,
            Fleet::from_durable(problem, config, snapshot.1)?,
        );
        let mut expected = snapshot_seq + 1;
        let mut replayed = 0usize;
        let mut torn_tail = false;
        // One evaluation scratch across the whole replay — per-op
        // allocation would dominate recovery on large fleets.
        let mut replay_scratch = vc_core::EvalScratch::new();
        let files = journal_files(&persist.dir)?;
        for (i, (_, path)) in files.iter().enumerate() {
            let (records, tail) = read_journal::<FleetOp>(path)?;
            if tail.torn {
                if i + 1 != files.len() {
                    return Err(PersistError::Replay(format!(
                        "torn record in non-final journal {}",
                        path.display()
                    )));
                }
                torn_tail = true;
            }
            for (seq, op) in records {
                if seq <= snapshot_seq {
                    continue; // superseded by the snapshot
                }
                if seq != expected {
                    return Err(PersistError::Replay(format!(
                        "sequence gap: expected {expected}, found {seq}"
                    )));
                }
                fleet.replay_op(&op, &mut replay_scratch)?;
                // Mirror the live paths' flight-recorder notes for the
                // ops replay applies inline (Depart/Fail/Restore replay
                // through the live methods, which note their own ops),
                // so a post-replay post-mortem shows the tail of the
                // journal, not an empty ring.
                match &op {
                    FleetOp::Admit { session, tier, .. } => {
                        fleet
                            .obs
                            .note_op(OpKind::Admit, session.index() as u32, *tier as u32);
                        // Replay *installs* a journaled placement — it
                        // never re-runs admission search, so the trace
                        // shows `RecoveryInstalled`, not `AdmitAttempt`.
                        fleet.obs.note_trace(
                            TraceKind::RecoveryInstalled,
                            session.index() as u32,
                            seq,
                        );
                    }
                    FleetOp::Hop {
                        session, decision, ..
                    } => {
                        let target = match decision {
                            Decision::User(_, a) | Decision::Task(_, a) => *a,
                        };
                        fleet.obs.note_op(
                            OpKind::Hop,
                            session.index() as u32,
                            target.index() as u32,
                        );
                    }
                    _ => {}
                }
                expected += 1;
                replayed += 1;
            }
        }
        let audit = fleet.audit();
        if !audit.is_empty() {
            fleet.obs.post_mortem_once("audit_failure", &audit[0]);
            return Err(PersistError::Audit(audit));
        }
        let drift = fleet.load_drift();
        if drift > 1e-6 {
            let detail = format!("recovered loads drift from a from-scratch evaluation by {drift}");
            fleet.obs.post_mortem_once("recovery_divergence", &detail);
            return Err(PersistError::Replay(detail));
        }
        let last_seq = expected - 1;
        let recovered_state = {
            let u = fleet.freeze.read();
            capture(&fleet, &u)
        };
        write_snapshot_with(&persist.dir, last_seq, &recovered_state, &*vfs)?;
        let mut journal = JournalWriter::create_with(
            journal_path(&persist.dir, last_seq + 1),
            persist.fsync,
            last_seq + 1,
            &*vfs,
            retry,
        )?;
        journal.set_obs(Arc::clone(&fleet.obs));
        compact(&persist.dir, last_seq)?;
        fleet
            .obs
            .note_op(OpKind::Recover, replayed as u32, last_seq as u32);
        fleet.persist = Some(FleetPersistence {
            dir: persist.dir,
            fsync: persist.fsync,
            stay_batch: persist.stay_batch.max(1),
            vfs,
            retry,
            journal: Mutex::new(journal),
            _lock: lock,
        });
        let timers = fleet.timers.lock().clone();
        Ok((
            fleet,
            RecoveryReport {
                snapshot_seq,
                replayed,
                torn_tail,
                last_seq,
                timers,
            },
        ))
    }

    /// Journals the worker pool's current WAIT-timer state (and caches
    /// it for the next snapshot). Call at durability boundaries — e.g.
    /// alongside [`commit_journal`](Fleet::commit_journal) or before
    /// [`checkpoint`](Fleet::checkpoint) — so a crash-recovered fleet
    /// resumes its countdowns instead of re-drawing them. Takes the
    /// FREEZE write lock for a consistent cut; no-op apart from the
    /// cache on ephemeral fleets.
    ///
    /// **Quiescence contract**: the cut is exact only while no wakeup
    /// is *in flight* — i.e. between [`ReoptPool::tick_until`] calls
    /// (the virtual-clock drive, which is synchronous) or after
    /// [`ReoptPool::run_wall`] has returned. A wall-clock worker that
    /// has popped its due entry but not yet rescheduled is invisible to
    /// [`ReoptPool::timer_state`]; journaling mid-flight records that
    /// wakeup as still pending even though its hop may journal right
    /// after, so a recovery from such a cut would re-fire it. The
    /// bitwise resume guarantee is therefore stated (and tested) for
    /// quiescent cuts.
    pub fn journal_timers(&self, pool: &ReoptPool) {
        let _frz = self.freeze.write();
        let entries = pool.timer_state();
        *self.timers.lock() = entries.clone();
        self.log_op(|| FleetOp::Timers { entries });
    }

    /// Caches the pool's timer state for snapshot capture *without*
    /// journaling it (offline comparison helper — lets an ephemeral
    /// fleet's [`durable_state`](Fleet::durable_state) be compared
    /// field-for-field against a persistent twin).
    pub fn record_timers(&self, pool: &ReoptPool) {
        let _frz = self.freeze.write();
        *self.timers.lock() = pool.timer_state();
    }

    /// Captures the durable state under the FREEZE write lock (exposed
    /// for tests and offline tooling; [`Fleet::checkpoint`] is the
    /// operational path). Flushes any pending stay batch first, so
    /// recovery from the journal reproduces the captured counters
    /// exactly.
    pub fn durable_state(&self) -> DurableFleetState {
        let u = self.freeze.write();
        self.flush_stays();
        capture(self, &u)
    }

    fn from_durable(
        problem: Arc<UapProblem>,
        config: FleetConfig,
        durable: DurableFleetState,
    ) -> Result<Self, PersistError> {
        // Regrow the universe first: the snapshot's placements cover
        // the seed problem *plus* everything registered online. The
        // growth log is replayed in its original interleaved order —
        // a session's delay rows depend on how many agents existed
        // when it registered, so reordering would rebuild a different
        // universe.
        let problem = if durable.growth.is_empty() {
            problem
        } else {
            let mut grown = (*problem).clone();
            for (i, rec) in durable.growth.iter().enumerate() {
                match rec {
                    GrowthRecord::Session(def) => {
                        grown.register_session(def).map_err(|e| {
                            PersistError::Mismatch(format!(
                                "snapshot growth record #{i} (session) failed to re-register: {e}"
                            ))
                        })?;
                    }
                    GrowthRecord::Agent(def, _region) => {
                        grown.register_agent(def).map_err(|e| {
                            PersistError::Mismatch(format!(
                                "snapshot growth record #{i} (agent) failed to re-register: {e}"
                            ))
                        })?;
                    }
                }
            }
            Arc::new(grown)
        };
        let inst = problem.instance();
        let dims = [
            ("users", durable.user_agents.len(), inst.num_users()),
            ("tasks", durable.task_agents.len(), problem.tasks().len()),
            ("sessions", durable.active.len(), inst.num_sessions()),
            ("agents", durable.available.len(), inst.num_agents()),
            ("drained flags", durable.drained.len(), inst.num_agents()),
            (
                "agent regions",
                durable.agent_regions.len(),
                inst.num_agents(),
            ),
        ];
        for (what, got, want) in dims {
            if got != want {
                return Err(PersistError::Mismatch(format!(
                    "snapshot has {got} {what}, problem has {want}"
                )));
            }
        }
        if let Some(a) = durable
            .user_agents
            .iter()
            .chain(durable.task_agents.iter())
            .find(|a| a.index() >= inst.num_agents())
        {
            return Err(PersistError::Mismatch(format!(
                "snapshot assigns to agent {a}, past the instance's {}",
                inst.num_agents()
            )));
        }
        if let Some(&r) = durable
            .agent_regions
            .iter()
            .find(|&&r| r as usize >= durable.regions.len())
        {
            return Err(PersistError::Mismatch(format!(
                "snapshot assigns an agent to region id {r}, past its {}-entry region table",
                durable.regions.len()
            )));
        }
        let fleet = Fleet::new(problem, config);
        // Install the region table before anything touches the ledger:
        // `ensure_region` re-creates the ids in captured order (index 0
        // is the default region both here and in a fresh ledger).
        for (i, name) in durable.regions.iter().enumerate() {
            let id = fleet.ledger.ensure_region(name);
            if id as usize != i {
                return Err(PersistError::Mismatch(format!(
                    "snapshot region table re-registered {name:?} as id {id}, expected {i}"
                )));
            }
        }
        for (i, &r) in durable.agent_regions.iter().enumerate() {
            fleet.ledger.assign_region(AgentId::from(i), r);
        }
        let mut scratch = vc_core::EvalScratch::new();
        let mut live = 0usize;
        {
            let mut u = fleet.freeze.write();
            u.growth = durable.growth.clone();
            u.available = durable.available.clone();
            u.drained = durable.drained.clone();
            let u = &*u;
            for s in u.problem.instance().session_ids() {
                let mut slot = u.slots[s.index()].lock();
                for (i, &w) in u.problem.instance().session(s).users().iter().enumerate() {
                    slot.users[i] = durable.user_agents[w.index()];
                }
                for (i, &t) in u.problem.tasks().of_session(s).iter().enumerate() {
                    slot.tasks[i] = durable.task_agents[t.index()];
                }
                if durable.active[s.index()] {
                    slot.active = true;
                    live += 1;
                    let load = fleet::evaluate_slot(&u.problem, s, &slot, &mut scratch).clone();
                    slot.load = load;
                }
            }
        }
        fleet.live.store(live, Ordering::Relaxed);
        // Availability flags were installed with the universe above;
        // mirror them into the ledger (a down agent — failed or drained
        // — holds no availability there either).
        for (i, &up) in durable.available.iter().enumerate() {
            if !up {
                fleet.ledger.fail_agent(AgentId::from(i));
            }
        }
        for (session, hold) in durable.holdings {
            fleet.ledger.restore_hold(session, hold).map_err(|e| {
                PersistError::Replay(format!("snapshot holdings re-book failed: {e}"))
            })?;
        }
        durable.counters.install(&fleet.counters);
        *fleet.timers.lock() = durable.timers;
        {
            let mut q = fleet.readmit.lock();
            for e in &durable.readmit {
                q.entries.insert(e.session, *e);
            }
            for &(s, epoch) in &durable.readmit_epochs {
                q.epochs.insert(s, epoch);
            }
        }
        Ok(fleet)
    }

    /// Replay guard: a CRC-valid but semantically corrupt frame may
    /// carry ids outside the (replayed-so-far) universe; recovery must
    /// refuse with a typed error, never index-panic.
    fn replay_session_bound(&self, session: SessionId, what: &str) -> Result<(), PersistError> {
        if session.index() >= self.freeze.read().slots.len() {
            return Err(PersistError::Replay(format!(
                "{what} of unregistered session {session}"
            )));
        }
        Ok(())
    }

    /// Replay guard for agent ids. The agent pool grows mid-journal
    /// (format v6 `RegisterAgent`), so the bound is the *replayed-so-
    /// far* universe: a journal referencing agents the seed problem +
    /// growth log never produced means recovery was handed the wrong
    /// (too-small) seed problem — a typed error naming the missing
    /// agent, never an index panic.
    fn replay_agent_bound(&self, agent: AgentId, what: &str) -> Result<(), PersistError> {
        let num = self.freeze.read().problem.instance().num_agents();
        if agent.index() >= num {
            return Err(PersistError::Replay(format!(
                "{what} of unknown agent {agent}: the replayed universe has only {num} agents \
                 (wrong or stale seed problem?)"
            )));
        }
        Ok(())
    }

    /// Applies one journaled op to a recovering fleet. Counter effects
    /// mirror the live paths exactly so recovered counters equal
    /// pre-crash counters.
    fn replay_op(
        &self,
        op: &FleetOp,
        scratch: &mut vc_core::EvalScratch,
    ) -> Result<(), PersistError> {
        match op {
            FleetOp::Admit {
                session,
                users,
                tasks,
                tier,
                repair_steps,
            } => {
                let universe = self.freeze.write();
                if session.index() >= universe.slots.len() {
                    return Err(PersistError::Replay(format!(
                        "admit of unregistered session {session}"
                    )));
                }
                let mut slot = universe.slots[session.index()].lock();
                if slot.active {
                    return Err(PersistError::Replay(format!(
                        "admit of already-live session {session}"
                    )));
                }
                let inst = universe.problem.instance();
                let user_ids = inst.session(*session).users();
                for &(u, a) in users {
                    let i = user_ids.iter().position(|&w| w == u).ok_or_else(|| {
                        PersistError::Replay(format!("admit of {session} places foreign user {u}"))
                    })?;
                    slot.users[i] = a;
                }
                let task_ids = universe.problem.tasks().of_session(*session);
                for &(t, a) in tasks {
                    let i = task_ids.iter().position(|&w| w == t).ok_or_else(|| {
                        PersistError::Replay(format!("admit of {session} places foreign task {t}"))
                    })?;
                    slot.tasks[i] = a;
                }
                slot.active = true;
                let load =
                    fleet::evaluate_slot(&universe.problem, *session, &slot, scratch).clone();
                let hold = SessionHold::from_load(&load);
                slot.load = load;
                self.live.fetch_add(1, Ordering::Relaxed);
                // Book unchecked, exactly like the live engine path:
                // the admission was already accepted against the live
                // residuals, and a re-check here could refuse at an
                // epsilon boundary (or on an agent that failed later in
                // the journal) — recovery must install, never re-judge.
                // Conservation is re-established by the post-replay
                // audit.
                self.ledger.book_unchecked(*session, hold).map_err(|e| {
                    PersistError::Replay(format!("admit of {session} double-booked on replay: {e}"))
                })?;
                self.counters.admitted.fetch_add(1, Ordering::Relaxed);
                let tier_counter = match tier {
                    AdmissionTier::Enumeration => &self.counters.admitted_enumeration,
                    AdmissionTier::Repair => &self.counters.admitted_repair,
                    AdmissionTier::RankedFallback => &self.counters.admitted_fallback,
                };
                tier_counter.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .repair_steps
                    .fetch_add(*repair_steps as usize, Ordering::Relaxed);
                drop(slot);
                drop(universe);
                // Mirror the live path: a successful admission dequeues
                // any pending re-admission entry (and counts it) — the
                // live admit did exactly this under its own locks.
                self.readmit_note_admitted(*session);
            }
            FleetOp::Reject { reason, .. } => {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                match reason {
                    RefusalReason::AlreadyLive => {}
                    RefusalReason::UserFit => {
                        self.counters
                            .refused_user_fit
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    RefusalReason::TaskFit => {
                        self.counters
                            .refused_task_fit
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    RefusalReason::GlobalCheck | RefusalReason::Capacity | RefusalReason::Delay => {
                        self.counters.refused_global.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            FleetOp::Depart { session } => {
                self.replay_session_bound(*session, "depart")?;
                if self.depart(*session).is_none() {
                    return Err(PersistError::Replay(format!(
                        "depart of non-live session {session}"
                    )));
                }
                // depart() counted this replayed departure already.
            }
            FleetOp::FailAgent { agent } => {
                self.replay_agent_bound(*agent, "failure")?;
                // Replay re-runs the deterministic evacuation but does
                // NOT re-enqueue displaced sessions: the journal carries
                // every enqueue as an explicit `ReadmitEnqueue` record
                // (queue mutations are never re-derived), so the live
                // path's enqueues arrive as the very next records.
                self.fail_agent_inner(*agent, false);
            }
            FleetOp::RestoreAgent { agent } => {
                self.replay_agent_bound(*agent, "restore")?;
                // Refused restores (drained agents) journal nothing, so
                // a journaled restore that the replayed state refuses
                // means journal and snapshot disagree.
                if !self.restore_agent(*agent) {
                    return Err(PersistError::Replay(format!(
                        "restore of drained agent {agent}"
                    )));
                }
            }
            FleetOp::Hop {
                session,
                decision,
                old_agent,
            } => {
                self.replay_session_bound(*session, "hop")?;
                let universe = self.freeze.write();
                let mut slot = universe.slots[session.index()].lock();
                if !slot.active {
                    return Err(PersistError::Replay(format!(
                        "hop of non-live session {session}"
                    )));
                }
                let view = {
                    let inst = universe.problem.instance();
                    let user_ids = inst.session(*session).users();
                    let task_ids = universe.problem.tasks().of_session(*session);
                    match decision {
                        Decision::User(u, _) => user_ids
                            .iter()
                            .position(|&w| w == *u)
                            .map(|i| slot.users[i]),
                        Decision::Task(t, _) => task_ids
                            .iter()
                            .position(|&w| w == *t)
                            .map(|i| slot.tasks[i]),
                    }
                };
                let current = view.ok_or_else(|| {
                    PersistError::Replay(format!("hop {decision} targets a foreign session"))
                })?;
                if current != *old_agent {
                    return Err(PersistError::Replay(format!(
                        "hop {decision} expected old assignment {old_agent}, state has {current}"
                    )));
                }
                fleet::apply_to_slot(&universe.problem, &mut slot, *session, *decision);
                let load =
                    fleet::evaluate_slot(&universe.problem, *session, &slot, scratch).clone();
                let hold = SessionHold::from_load(&load);
                slot.load = load;
                self.ledger.force_swap(*session, hold).map_err(|e| {
                    PersistError::Replay(format!("hop ledger swap failed on replay: {e}"))
                })?;
                self.counters.migrations.fetch_add(1, Ordering::Relaxed);
            }
            FleetOp::Stay { .. } => {
                self.counters.stays.fetch_add(1, Ordering::Relaxed);
            }
            FleetOp::StayBatch { count } => {
                self.counters
                    .stays
                    .fetch_add(*count as usize, Ordering::Relaxed);
            }
            FleetOp::RegisterSession { session, def } => {
                let assigned = self.register_session(def).map_err(|e| {
                    PersistError::Replay(format!("journaled registration failed to replay: {e}"))
                })?;
                if assigned != *session {
                    return Err(PersistError::Replay(format!(
                        "journaled registration expected id {session}, replay assigned {assigned}"
                    )));
                }
            }
            FleetOp::Timers { entries } => {
                // Newest record wins: the caller gets the countdowns
                // pending at the last durability boundary.
                *self.timers.lock() = entries.clone();
            }
            FleetOp::ReadmitEnqueue {
                session,
                epoch,
                attempt,
                due_us,
            } => {
                self.replay_session_bound(*session, "readmit enqueue")?;
                self.readmit_install(crate::readmit::ReadmitEntry {
                    session: *session,
                    epoch: *epoch,
                    attempt: *attempt,
                    due_us: *due_us,
                });
            }
            FleetOp::RegisterAgent { agent, def, region } => {
                // Replay runs with persistence detached, so the live
                // registration path journals nothing here.
                let assigned = self.register_agent(def, region).map_err(|e| {
                    PersistError::Replay(format!(
                        "journaled agent registration failed to replay: {e}"
                    ))
                })?;
                if assigned != *agent {
                    return Err(PersistError::Replay(format!(
                        "journaled agent registration expected id {agent}, replay assigned \
                         {assigned}"
                    )));
                }
            }
            FleetOp::DrainAgent { agent } => {
                self.replay_agent_bound(*agent, "drain")?;
                // Like `FailAgent`: re-run the deterministic evacuation
                // but never re-enqueue — the journal carries every
                // enqueue as an explicit `ReadmitEnqueue` record.
                self.drain_agent_inner(*agent, false);
            }
            FleetOp::ReadmitDrop { session } => {
                self.replay_session_bound(*session, "readmit drop")?;
                // Overflow drops never installed an entry; exhaustion
                // drops did. Remove if present, count either way — the
                // live path counted both shapes through the same
                // `readmit_dropped` counter.
                self.readmit.lock().entries.remove(session);
                self.counters
                    .readmit_dropped
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }
}
