//! Unit tests over a small capacity-limited universe.

use crate::fleet::{AdmitError, Fleet, FleetConfig, PlacementPolicy};
use crate::ledger::{AgentHold, CapacityLedger, LedgerError, SessionHold};
use crate::orchestrator::{Orchestrator, OrchestratorConfig};
use crate::workers::ReoptPool;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use vc_algo::agrank::AgRankConfig;
use vc_algo::markov::Alg1Config;
use vc_core::UapProblem;
use vc_cost::CostModel;
use vc_model::{
    AgentId, AgentSpec, Capacity, DownstreamDemand, InstanceBuilder, ReprLadder, SessionDef,
    SessionId, UserDef,
};
use vc_workloads::{dynamic_trace, DynamicTraceConfig, FleetEvent};

/// Three agents, six 2-user sessions, moderate capacities: enough for
/// most of the fleet, tight enough to refuse pile-ups.
fn universe(cap_mbps: f64, slots: u32) -> Arc<UapProblem> {
    let ladder = ReprLadder::standard_four();
    let hi = ladder.highest();
    let lo = ladder.lowest();
    let mut b = InstanceBuilder::new(ladder);
    for name in ["a", "b", "c"] {
        b.add_agent(
            AgentSpec::builder(name)
                .capacity(Capacity::new(cap_mbps, cap_mbps, slots))
                .build(),
        );
    }
    for i in 0..6 {
        let s = b.add_session();
        // Alternate transcoding demand so some sessions occupy slots.
        if i % 2 == 0 {
            b.add_user(s, hi, lo);
            b.add_user(s, lo, lo);
        } else {
            b.add_user(s, hi, hi);
            b.add_user(s, hi, hi);
        }
    }
    b.symmetric_delays(
        |l, k| 25.0 + 20.0 * ((l as f64) - (k as f64)).abs(),
        |l, u| 8.0 + ((l * 13 + u * 7) % 23) as f64,
    );
    b.d_max_ms(10_000.0);
    Arc::new(UapProblem::new(
        b.build().unwrap(),
        CostModel::paper_default(),
    ))
}

fn fleet(cap_mbps: f64, slots: u32) -> Fleet {
    Fleet::new(
        universe(cap_mbps, slots),
        FleetConfig {
            placement: PlacementPolicy::AgRank(AgRankConfig::paper(2)),
            alg1: Alg1Config::paper(400.0),
            ledger_shards: 2,
            ..FleetConfig::default()
        },
    )
}

#[test]
fn ledger_reserves_and_releases_atomically() {
    let p = universe(100.0, 4);
    let ledger = CapacityLedger::new(&p, 2);
    let hold = SessionHold {
        holds: vec![
            AgentHold {
                agent: AgentId::new(0),
                download_mbps: 60.0,
                upload_mbps: 10.0,
                transcode_units: 2,
            },
            AgentHold {
                agent: AgentId::new(2),
                download_mbps: 50.0,
                upload_mbps: 0.0,
                transcode_units: 0,
            },
        ],
    };
    ledger.try_reserve(SessionId::new(0), hold.clone()).unwrap();
    assert_eq!(
        ledger.try_reserve(SessionId::new(0), hold.clone()),
        Err(LedgerError::AlreadyHeld(SessionId::new(0)))
    );
    // A second session asking for 60 more on agent 0 must be refused
    // whole — including its (fitting) share on agent 2.
    let err = ledger
        .try_reserve(SessionId::new(1), hold.clone())
        .unwrap_err();
    assert_eq!(
        err,
        LedgerError::Insufficient {
            agent: AgentId::new(0),
            resource: "download"
        }
    );
    let util = ledger.utilization();
    assert!(
        (util[2].download_mbps - 50.0).abs() < 1e-9,
        "partial booking leaked"
    );
    // Release returns exactly the original hold; capacity frees up.
    let released = ledger.release(SessionId::new(0)).unwrap();
    assert_eq!(released, hold);
    assert_eq!(ledger.live_sessions(), 0);
    ledger.try_reserve(SessionId::new(1), hold).unwrap();
}

#[test]
fn ledger_refuses_failed_agents_until_restored() {
    let p = universe(100.0, 4);
    let ledger = CapacityLedger::new(&p, 3);
    let hold = SessionHold {
        holds: vec![AgentHold {
            agent: AgentId::new(1),
            download_mbps: 1.0,
            upload_mbps: 1.0,
            transcode_units: 0,
        }],
    };
    ledger.fail_agent(AgentId::new(1));
    assert!(!ledger.is_agent_available(AgentId::new(1)));
    assert_eq!(
        ledger.try_reserve(SessionId::new(0), hold.clone()),
        Err(LedgerError::AgentDown(AgentId::new(1)))
    );
    assert_eq!(ledger.residuals().download[1], 0.0);
    ledger.restore_agent(AgentId::new(1));
    ledger.try_reserve(SessionId::new(0), hold).unwrap();
}

#[test]
fn admit_depart_round_trip_conserves() {
    let f = fleet(10_000.0, 100);
    for i in 0..6 {
        f.admit(SessionId::new(i)).unwrap();
        assert!(
            f.audit().is_empty(),
            "audit after admit {i}: {:?}",
            f.audit()
        );
    }
    assert_eq!(f.live_count(), 6);
    assert!(f.objective() > 0.0);
    for i in 0..6 {
        let hold = f.depart(SessionId::new(i)).expect("was live");
        // Ledger gave back a non-trivial reservation.
        assert!(!hold.is_empty());
        assert!(f.audit().is_empty(), "audit after depart {i}");
    }
    assert_eq!(f.live_count(), 0);
    assert_eq!(f.ledger().live_sessions(), 0);
    assert_eq!(f.objective(), 0.0);
}

#[test]
fn admission_refuses_when_capacity_runs_out() {
    // ~11 Mbps per agent: roughly one session's worth each.
    let f = fleet(11.0, 1);
    let mut admitted = 0;
    let mut rejected = 0;
    for i in 0..6 {
        match f.admit(SessionId::new(i)) {
            Ok(()) => admitted += 1,
            Err(AdmitError::Refused { session, .. }) => {
                assert_eq!(session, SessionId::new(i));
                rejected += 1;
            }
            Err(e) => panic!("unexpected rejection: {e:?}"),
        }
        assert!(f.audit().is_empty());
    }
    assert!(admitted >= 1, "nothing fit");
    assert!(rejected >= 1, "scarcity never refused");
    let rate = f.counters().admission_success_rate();
    assert!((0.0..1.0).contains(&rate));
}

#[test]
fn double_admit_is_rejected() {
    let f = fleet(10_000.0, 100);
    f.admit(SessionId::new(0)).unwrap();
    assert_eq!(
        f.admit(SessionId::new(0)),
        Err(AdmitError::AlreadyLive(SessionId::new(0)))
    );
    assert!(f.audit().is_empty());
}

#[test]
fn hops_keep_ledger_in_sync() {
    let f = fleet(10_000.0, 100);
    for i in 0..6 {
        f.admit(SessionId::new(i)).unwrap();
    }
    let before = f.objective();
    let mut rng = StdRng::seed_from_u64(7);
    for round in 0..200 {
        let s = SessionId::new(round % 6);
        f.hop_session(s, &mut rng);
        assert!(f.audit().is_empty(), "audit broke at hop {round}");
    }
    assert!(f.objective() <= before, "hops made things worse on average");
    assert!(
        f.counters()
            .migrations
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0
    );
}

#[test]
fn failure_evacuates_and_conserves() {
    let f = fleet(10_000.0, 100);
    for i in 0..6 {
        f.admit(SessionId::new(i)).unwrap();
    }
    let failed = AgentId::new(0);
    let (moves, forced) = f.fail_agent(failed);
    assert!(moves > 0, "nothing was evacuated");
    assert_eq!(forced, 0, "roomy universe needs no forced moves");
    assert!(f.audit().is_empty(), "audit after failure: {:?}", f.audit());
    f.with_state(|state| {
        for u in state.problem().instance().user_ids() {
            assert_ne!(state.assignment().agent_of_user(u), failed);
        }
    });
    // New admissions avoid the failed agent too (all six already live,
    // so depart one and re-admit it).
    f.depart(SessionId::new(0));
    f.admit(SessionId::new(0)).unwrap();
    f.with_state(|state| {
        for &u in state
            .problem()
            .instance()
            .session(SessionId::new(0))
            .users()
        {
            assert_ne!(state.assignment().agent_of_user(u), failed);
        }
    });
    f.restore_agent(failed);
    assert!(f.audit().is_empty());
}

#[test]
fn worker_pool_virtual_ticks_hop_live_sessions() {
    let f = fleet(10_000.0, 100);
    let pool = ReoptPool::new(11);
    for i in 0..6 {
        f.admit(SessionId::new(i)).unwrap();
        pool.register(&f, SessionId::new(i), 0.0);
    }
    let before = f.objective();
    let hops = pool.tick_until(&f, 120.0);
    assert!(hops >= 30, "expected ~72 wakeups in 120 s, got {hops}");
    assert!(f.objective() <= before);
    assert!(f.audit().is_empty());
    // Departed sessions stop hopping.
    f.depart(SessionId::new(0));
    pool.deregister(SessionId::new(0));
    let hops2 = pool.tick_until(&f, 240.0);
    assert!(hops2 > 0);
    assert!(f.audit().is_empty());
}

#[test]
fn readmitted_session_keeps_exactly_one_worker() {
    // Depart + re-admit must not leave the old heap entry resurrectable:
    // the session would otherwise hop at a multiple of the configured
    // rate forever.
    let f = fleet(10_000.0, 100);
    let pool = ReoptPool::new(11);
    f.admit(SessionId::new(0)).unwrap();
    pool.register(&f, SessionId::new(0), 0.0);
    for cycle in 0..3 {
        f.depart(SessionId::new(0));
        pool.deregister(SessionId::new(0));
        f.admit(SessionId::new(0)).unwrap();
        pool.register(&f, SessionId::new(0), 0.0);
        assert!(f.audit().is_empty(), "audit after cycle {cycle}");
    }
    // With a 10 s mean countdown, one worker executes ~horizon/10 hops;
    // duplicated workers would multiply that several-fold.
    let hops = pool.tick_until(&f, 1_000.0);
    assert!(
        (50..=200).contains(&hops),
        "expected ~100 hops from a single worker, got {hops}"
    );
}

#[test]
fn worker_pool_threads_race_hops_concurrently() {
    let f = Arc::new(fleet(10_000.0, 100));
    let pool = ReoptPool::new(3);
    for i in 0..6 {
        f.admit(SessionId::new(i)).unwrap();
        pool.register(&f, SessionId::new(i), 0.0);
    }
    let before = f.objective();
    let hops = pool.run_wall(&f, std::time::Duration::from_millis(150), 4);
    assert!(hops > 0, "threaded pool never hopped");
    assert!(
        f.audit().is_empty(),
        "threads corrupted the ledger: {:?}",
        f.audit()
    );
    assert!(f.objective() <= before);
    assert!(
        f.load_drift() < 1e-6,
        "slot loads drifted from fresh evaluation under threads"
    );
}

/// A registrable two-user conference over the 3-agent test universe
/// (one 720p→360p transcode, like the even seed sessions).
fn late_conference(problem: &UapProblem, delay_base: f64) -> SessionDef {
    let ladder = problem.instance().ladder();
    let hi = ladder.highest();
    let lo = ladder.lowest();
    SessionDef {
        users: vec![
            UserDef {
                upstream: hi,
                downstream: DownstreamDemand::uniform(lo),
                agent_delays_ms: vec![delay_base, delay_base + 4.0, delay_base + 8.0],
                site_index: None,
            },
            UserDef {
                upstream: lo,
                downstream: DownstreamDemand::uniform(lo),
                agent_delays_ms: vec![delay_base + 6.0, delay_base + 2.0, delay_base + 10.0],
                site_index: None,
            },
        ],
    }
}

#[test]
fn registered_conference_lives_like_a_seed_one() {
    let f = fleet(10_000.0, 100);
    assert_eq!(f.universe_size(), (6, 12));
    for i in 0..6 {
        f.admit(SessionId::new(i)).unwrap();
    }
    let before = f.objective();
    // Register two never-before-seen conferences while the fleet is live.
    let s6 = f
        .register_session(&late_conference(&f.problem(), 9.0))
        .expect("registers");
    let s7 = f
        .register_session(&late_conference(&f.problem(), 14.0))
        .expect("registers");
    assert_eq!((s6, s7), (SessionId::new(6), SessionId::new(7)));
    assert_eq!(f.universe_size(), (8, 16));
    // Registration alone reserves nothing and changes no live state.
    assert_eq!(f.objective().to_bits(), before.to_bits());
    assert_eq!(f.ledger().live_sessions(), 6);
    assert!(f.audit().is_empty());
    assert!(!f.is_live(s6));
    // The new conferences admit, hop, and depart like seed sessions.
    f.admit(s6).unwrap();
    f.admit(s7).unwrap();
    assert_eq!(f.live_count(), 8);
    let mut rng = StdRng::seed_from_u64(3);
    for round in 0..40 {
        f.hop_session(if round % 2 == 0 { s6 } else { s7 }, &mut rng);
        assert!(f.audit().is_empty(), "audit broke at hop {round}");
    }
    assert!(f.load_drift() < 1e-9);
    f.depart(s6).expect("live");
    assert!(f.audit().is_empty());
    // Growth registered while sessions hop: workers keep running.
    let pool = ReoptPool::new(5);
    pool.register(&f, s7, 0.0);
    assert!(pool.tick_until(&f, 100.0) > 0);
    assert!(f.audit().is_empty());
}

#[test]
fn register_session_validates_atomically() {
    let f = fleet(10_000.0, 100);
    let mut def = late_conference(&f.problem(), 9.0);
    def.users[0].agent_delays_ms.pop(); // wrong agent count
    assert!(f.register_session(&def).is_err());
    assert_eq!(f.universe_size(), (6, 12));
    assert!(f.audit().is_empty());
}

#[test]
fn trace_run_reoptimization_beats_nearest_bootstrap() {
    let problem = universe(10_000.0, 100);
    let trace = dynamic_trace(
        6,
        &DynamicTraceConfig {
            horizon_s: 120.0,
            warm_sessions: 6,
            mean_interarrival_s: None,
            mean_holding_s: 1e9, // nobody leaves: clean A/B comparison
            ..DynamicTraceConfig::default()
        },
    );
    let run = |placement: PlacementPolicy, reoptimize: bool| {
        let mut orch = Orchestrator::new(
            problem.clone(),
            OrchestratorConfig {
                fleet: FleetConfig {
                    placement,
                    ..FleetConfig::default()
                },
                reoptimize,
                ..OrchestratorConfig::default()
            },
        );
        orch.run_trace(&trace, 120.0)
    };
    let baseline = run(PlacementPolicy::Nearest, false);
    let optimized = run(PlacementPolicy::AgRank(AgRankConfig::paper(3)), true);
    assert_eq!(baseline.final_snapshot.admitted, 6);
    assert_eq!(optimized.final_snapshot.admitted, 6);
    assert!(optimized.hops_executed > 0);
    assert_eq!(optimized.final_snapshot.conservation_violations, 0);
    assert!(
        optimized.final_snapshot.mean_session_objective
            < baseline.final_snapshot.mean_session_objective,
        "re-optimized {} !< bootstrap-only {}",
        optimized.final_snapshot.mean_session_objective,
        baseline.final_snapshot.mean_session_objective
    );
}

#[test]
fn trace_run_handles_churn_events() {
    let problem = universe(10_000.0, 100);
    let trace = dynamic_trace(
        6,
        &DynamicTraceConfig {
            horizon_s: 60.0,
            warm_sessions: 4,
            mean_interarrival_s: Some(10.0),
            mean_holding_s: 30.0,
            failures: vec![(20.0, AgentId::new(1))],
            restores: vec![(40.0, AgentId::new(1))],
            ..DynamicTraceConfig::default()
        },
    );
    assert!(trace.count(|e| matches!(e, FleetEvent::FailAgent(_))) == 1);
    let mut orch = Orchestrator::new(problem, OrchestratorConfig::default());
    let report = orch.run_trace(&trace, 60.0);
    assert_eq!(report.final_snapshot.conservation_violations, 0);
    assert_eq!(report.telemetry.total_conservation_violations(), 0);
    assert!(report.final_snapshot.admitted >= 4);
    // Series cover the whole horizon at 1 Hz plus the final sample.
    assert!(report.telemetry.objective_series().len() >= 61);
}

mod persistence {
    //! Crash-recovery round trips over the small universe.

    use super::*;
    use crate::persist::{CounterSnapshot, PersistConfig, PersistError};
    use std::path::PathBuf;
    use vc_persist::journal::FsyncPolicy;

    fn store_dir(name: &str) -> PathBuf {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp-persist")
            .join(format!("orch-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn persistent_fleet(name: &str) -> (Fleet, PathBuf) {
        let dir = store_dir(name);
        let fleet = Fleet::with_persistence(
            universe(120.0, 6),
            FleetConfig {
                placement: PlacementPolicy::AgRank(AgRankConfig::paper(2)),
                alg1: Alg1Config::paper(400.0),
                ledger_shards: 2,
                ..FleetConfig::default()
            },
            PersistConfig {
                dir: dir.clone(),
                fsync: FsyncPolicy::Always,
                stay_batch: 4,
            },
        )
        .expect("persistent fleet");
        (fleet, dir)
    }

    fn recover(dir: &std::path::Path) -> (Fleet, crate::persist::RecoveryReport) {
        Fleet::recover(
            PersistConfig {
                dir: dir.to_path_buf(),
                fsync: FsyncPolicy::Always,
                stay_batch: 4,
            },
            universe(120.0, 6),
            FleetConfig {
                placement: PlacementPolicy::AgRank(AgRankConfig::paper(2)),
                alg1: Alg1Config::paper(400.0),
                ledger_shards: 2,
                ..FleetConfig::default()
            },
        )
        .expect("recovery")
    }

    /// A busy history: admits, hops, a failure, a departure.
    fn churn(fleet: &Fleet) {
        let mut rng = StdRng::seed_from_u64(11);
        for i in 0..6usize {
            let _ = fleet.admit(SessionId::from(i));
        }
        for i in 0..6usize {
            let _ = fleet.hop_session(SessionId::from(i), &mut rng);
        }
        fleet.fail_agent(AgentId::new(1));
        fleet.depart(SessionId::new(0));
        let _ = fleet.admit(SessionId::new(0));
        fleet.restore_agent(AgentId::new(1));
        for i in 0..6usize {
            let _ = fleet.hop_session(SessionId::from(i), &mut rng);
        }
    }

    #[test]
    fn crash_and_recover_reproduces_the_fleet_exactly() {
        let (fleet, dir) = persistent_fleet("crash-exact");
        churn(&fleet);
        let before = fleet.durable_state();
        let objective = fleet.objective();
        assert!(fleet.audit().is_empty());
        drop(fleet); // crash: Always policy ⇒ every event is durable

        let (recovered, report) = recover(&dir);
        assert!(report.replayed > 0, "nothing replayed");
        assert!(!report.torn_tail);
        assert_eq!(recovered.durable_state(), before);
        assert_eq!(recovered.objective().to_bits(), objective.to_bits());
        assert!(recovered.audit().is_empty());
        assert!(recovered.is_persistent(), "recovered fleet must journal");
    }

    #[test]
    fn checkpoint_compacts_and_recovery_prefers_the_snapshot() {
        let (fleet, dir) = persistent_fleet("checkpoint");
        churn(&fleet);
        let seq = fleet.checkpoint().expect("checkpoint");
        assert!(seq > 0);
        // Post-checkpoint tail.
        fleet.depart(SessionId::new(2));
        let before = fleet.durable_state();
        drop(fleet);

        let (recovered, report) = recover(&dir);
        assert_eq!(report.snapshot_seq, seq);
        assert_eq!(report.replayed, 1, "only the tail replays");
        assert_eq!(recovered.durable_state(), before);
        // Compaction kept exactly one snapshot + one (fresh) journal.
        let snaps = std::fs::read_dir(&dir)
            .expect("dir")
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .starts_with("snapshot-")
            })
            .count();
        assert_eq!(snaps, 1);
    }

    #[test]
    fn recovery_tolerates_a_torn_final_record() {
        let (fleet, dir) = persistent_fleet("torn-tail");
        churn(&fleet);
        let before = fleet.durable_state();
        drop(fleet);
        // Simulate a crash mid-append: garbage half-frame at the end.
        let journal = vc_persist::journal_files(&dir)
            .expect("journal files")
            .pop()
            .expect("one journal")
            .1;
        let mut bytes = std::fs::read(&journal).expect("read journal");
        bytes.extend_from_slice(&[0x42, 0x00, 0x00, 0x00, 0xDE, 0xAD]);
        std::fs::write(&journal, &bytes).expect("write torn journal");

        let (recovered, report) = recover(&dir);
        assert!(report.torn_tail, "tail tear not detected");
        assert_eq!(recovered.durable_state(), before);
        assert!(recovered.audit().is_empty());
    }

    #[test]
    fn recovery_rejects_a_mismatched_problem() {
        let (fleet, dir) = persistent_fleet("mismatch");
        churn(&fleet);
        let mut durable = fleet.durable_state();
        drop(fleet);
        durable.user_agents.pop(); // snapshot for a smaller instance
        let last = vc_persist::latest_snapshot::<crate::persist::DurableFleetState>(&dir)
            .expect("scan")
            .expect("snapshot")
            .0;
        vc_persist::write_snapshot(&dir, last + 1000, &durable).expect("write");
        let err = Fleet::recover(
            PersistConfig {
                dir,
                fsync: FsyncPolicy::Always,
                stay_batch: 4,
            },
            universe(120.0, 6),
            FleetConfig::default(),
        )
        .expect_err("dimension mismatch must refuse");
        assert!(matches!(err, PersistError::Mismatch(_)), "got {err:?}");
    }

    #[test]
    fn recovered_counters_match_including_stays() {
        let (fleet, dir) = persistent_fleet("counters");
        churn(&fleet);
        let _ = fleet.admit(SessionId::new(0)); // duplicate ⇒ rejected
                                                // Stays are batched; `commit_journal` is a durability boundary
                                                // that flushes the pending batch, making the captured counters
                                                // recoverable exactly.
        fleet.commit_journal().expect("commit");
        let before = CounterSnapshot::capture(fleet.counters());
        drop(fleet);
        let (recovered, _) = recover(&dir);
        assert_eq!(CounterSnapshot::capture(recovered.counters()), before);
        assert!(before.rejected > 0, "history had no rejection");
    }

    #[test]
    fn refused_admission_leaves_no_trace_in_the_durable_state() {
        // A contended universe: capacity for only some of the fleet, so
        // at least one admission is refused. A refusal must not leak
        // the attempted placement into the (inert) assignment — journal
        // replay only sees the Reject record, so any leak would make
        // recovery diverge from the pre-crash state.
        let dir = store_dir("refused-admit");
        let fleet = Fleet::with_persistence(
            universe(30.0, 2),
            FleetConfig {
                placement: PlacementPolicy::AgRank(AgRankConfig::paper(2)),
                alg1: Alg1Config::paper(400.0),
                ledger_shards: 2,
                ..FleetConfig::default()
            },
            PersistConfig {
                dir: dir.clone(),
                fsync: FsyncPolicy::Always,
                stay_batch: 4,
            },
        )
        .expect("persistent fleet");
        let mut refused = 0usize;
        for i in 0..6usize {
            if fleet.admit(SessionId::from(i)).is_err() {
                refused += 1;
            }
        }
        assert!(refused > 0, "universe not contended enough to refuse");
        let before = fleet.durable_state();
        drop(fleet);
        let (recovered, _) = Fleet::recover(
            PersistConfig {
                dir,
                fsync: FsyncPolicy::Always,
                stay_batch: 4,
            },
            universe(30.0, 2),
            FleetConfig {
                placement: PlacementPolicy::AgRank(AgRankConfig::paper(2)),
                alg1: Alg1Config::paper(400.0),
                ledger_shards: 2,
                ..FleetConfig::default()
            },
        )
        .expect("recovery");
        assert_eq!(
            recovered.durable_state(),
            before,
            "a refused admission left state that replay cannot reproduce"
        );
    }

    /// A fleet that grew its universe online recovers exactly — via
    /// journal replay of the `RegisterSession` records (pre-checkpoint
    /// crash) AND via the snapshot's registered definitions
    /// (post-checkpoint crash). `recover` is handed only the seed
    /// problem both times.
    #[test]
    fn grown_universe_recovers_from_journal_and_snapshot() {
        let (fleet, dir) = persistent_fleet("open-world");
        churn(&fleet);
        let def_a = super::late_conference(&fleet.problem(), 9.0);
        let def_b = super::late_conference(&fleet.problem(), 14.0);
        let s6 = fleet.register_session(&def_a).expect("registers");
        fleet.admit(s6).expect("admits");
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..4 {
            let _ = fleet.hop_session(s6, &mut rng);
        }
        fleet.commit_journal().expect("commit");
        let before = fleet.durable_state();
        let objective = fleet.objective();
        drop(fleet); // crash before any checkpoint: defs live in the journal

        let (recovered, report) = recover(&dir);
        assert!(report.replayed > 0);
        assert_eq!(recovered.universe_size(), (7, 14));
        assert_eq!(recovered.durable_state(), before);
        assert_eq!(recovered.objective().to_bits(), objective.to_bits());
        assert!(recovered.is_live(s6));

        // Grow again, checkpoint (snapshot now carries both defs), more
        // history, crash: recovery starts from the snapshot.
        let s7 = recovered.register_session(&def_b).expect("registers");
        recovered.admit(s7).expect("admits");
        let seq = recovered.checkpoint().expect("checkpoint");
        assert!(seq > 0);
        recovered.depart(SessionId::new(2));
        let before = recovered.durable_state();
        drop(recovered);

        let (again, report) = recover(&dir);
        assert_eq!(report.snapshot_seq, seq);
        assert_eq!(again.universe_size(), (8, 16));
        assert_eq!(again.durable_state(), before);
        assert!(again.audit().is_empty());
        assert!(again.is_live(s7));
    }

    /// A CRC-valid journal frame can still carry ids outside the
    /// (replayed-so-far) universe — semantic corruption the checksum
    /// cannot catch. Recovery must refuse with a typed `Replay` error,
    /// never index-panic.
    #[test]
    fn replay_refuses_out_of_range_ids_without_panicking() {
        use vc_persist::Encode;
        let (fleet, dir) = persistent_fleet("oob-replay");
        churn(&fleet);
        drop(fleet);
        let journal = vc_persist::journal_files(&dir)
            .expect("scan")
            .pop()
            .expect("one journal")
            .1;
        let (records, _) =
            vc_persist::read_journal::<crate::persist::FleetOp>(&journal).expect("read");
        let next_seq = records.last().expect("history").0 + 1;
        // Hop of a session the universe never registered.
        let op = crate::persist::FleetOp::Hop {
            session: SessionId::new(99),
            decision: vc_core::Decision::User(vc_model::UserId::new(0), AgentId::new(0)),
            old_agent: AgentId::new(0),
        };
        let mut payload = Vec::new();
        next_seq.encode(&mut payload);
        op.encode(&mut payload);
        let mut bytes = std::fs::read(&journal).expect("journal bytes");
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&vc_persist::crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        std::fs::write(&journal, &bytes).expect("write");
        let err = Fleet::recover(
            PersistConfig {
                dir,
                fsync: FsyncPolicy::Always,
                stay_batch: 4,
            },
            universe(120.0, 6),
            FleetConfig::default(),
        )
        .expect_err("out-of-range id must refuse");
        assert!(matches!(err, PersistError::Replay(_)), "got {err:?}");
    }

    #[test]
    fn recovering_an_empty_directory_is_a_hard_error() {
        // Every valid store has a genesis snapshot; a snapshot-less
        // directory is a wrong path or lost data, and going live on a
        // silently-fresh fleet would drop every reservation.
        let dir = store_dir("no-store");
        std::fs::create_dir_all(&dir).expect("empty dir");
        let err = Fleet::recover(
            PersistConfig {
                dir,
                fsync: FsyncPolicy::Always,
                stay_batch: 4,
            },
            universe(120.0, 6),
            FleetConfig::default(),
        )
        .expect_err("empty store must refuse");
        assert!(matches!(err, PersistError::NoStore(_)), "got {err:?}");
    }

    #[test]
    fn a_live_store_refuses_a_second_writer() {
        let (fleet, dir) = persistent_fleet("store-lock");
        // A second fleet on the same directory must be refused — it
        // would wipe the live store. Same for a concurrent recovery.
        let again = Fleet::with_persistence(
            universe(120.0, 6),
            FleetConfig::default(),
            PersistConfig {
                dir: dir.clone(),
                fsync: FsyncPolicy::Always,
                stay_batch: 4,
            },
        );
        assert!(
            matches!(again, Err(PersistError::Locked(_))),
            "second writer was not refused"
        );
        let concurrent = Fleet::recover(
            PersistConfig {
                dir: dir.clone(),
                fsync: FsyncPolicy::Always,
                stay_batch: 4,
            },
            universe(120.0, 6),
            FleetConfig::default(),
        );
        assert!(matches!(concurrent, Err(PersistError::Locked(_))));
        // Once the holder is gone (crash or shutdown), the store opens.
        churn(&fleet);
        drop(fleet);
        let (recovered, _) = recover(&dir);
        assert!(recovered.audit().is_empty());
    }

    #[test]
    fn ephemeral_fleet_refuses_persistence_calls() {
        let fleet = fleet(120.0, 6);
        assert!(!fleet.is_persistent());
        assert!(fleet.persist_dir().is_none());
        assert!(matches!(fleet.checkpoint(), Err(PersistError::NotAttached)));
        assert!(matches!(
            fleet.commit_journal(),
            Err(PersistError::NotAttached)
        ));
    }

    #[test]
    fn telemetry_exports_every_field_as_csv() {
        let problem = universe(10_000.0, 100);
        let trace = dynamic_trace(
            6,
            &DynamicTraceConfig {
                horizon_s: 10.0,
                warm_sessions: 4,
                ..DynamicTraceConfig::default()
            },
        );
        let mut orch = Orchestrator::new(problem, OrchestratorConfig::default());
        let report = orch.run_trace(&trace, 10.0);
        let t = &report.telemetry;
        let n = t.snapshots().len();
        for series in [
            t.universe_sessions_series(),
            t.universe_users_series(),
            t.objective_series(),
            t.mean_session_objective_series(),
            t.traffic_series(),
            t.mean_delay_series(),
            t.live_sessions_series(),
            t.mean_utilization_series(),
            t.max_utilization_series(),
            t.admitted_series(),
            t.rejected_series(),
            t.departed_series(),
            t.migrations_series(),
            t.admission_success_rate_series(),
            t.admission_attempts_series(),
            t.admitted_enumeration_series(),
            t.admitted_repair_series(),
            t.admitted_fallback_series(),
            t.admission_repair_steps_series(),
            t.refused_user_fit_series(),
            t.refused_task_fit_series(),
            t.refused_global_series(),
            t.conservation_violations_series(),
            t.overshoot_fraction_series(),
            t.displaced_series(),
            t.readmit_queued_series(),
            t.durability_degraded_series(),
        ] {
            assert_eq!(series.len(), n, "a series is missing samples");
        }
        let csv = t.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().expect("header");
        assert_eq!(header.split(',').count(), 28);
        assert_eq!(lines.count(), n);
        // Admissions are cumulative and should end ≥ warm pool.
        assert!(t.admitted_series().last_value().expect("samples") >= 4.0);
        // The closed-world trace never grows the universe: the size
        // series is the constant instance size.
        assert_eq!(t.universe_sessions_series().last_value(), Some(6.0));
    }
}
