//! The fleet: admission, departure, failure handling, and hop execution
//! over per-session assignment slots + the sharded [`CapacityLedger`].
//!
//! ## The sharded FREEZE
//!
//! The seed design serialized *every* mutation — including each Alg. 1
//! HOP — behind one `Mutex<SystemState>` (the paper's FREEZE message,
//! literally). That lock is gone. The fleet now owns:
//!
//! * one [`SessionSlot`] per session (its users'/tasks' agents, its
//!   evaluated [`SessionLoad`], its live flag), each behind its own
//!   mutex — a HOP touches exactly one slot;
//! * the sharded [`CapacityLedger`] as the *only* cross-session
//!   coordination point: a HOP commit is a checked
//!   [`try_swap`](CapacityLedger::try_swap), so two sessions racing for
//!   the same agent's capacity are arbitrated by the ledger's shard
//!   locks, not by freezing the world;
//! * a `freeze: RwLock<Universe>` — hops take it **shared**, so hops on
//!   different sessions run concurrently; the coarse paths (admit,
//!   depart, fail/restore, snapshot, audit, **universe growth**) take it
//!   **exclusively** and see a quiescent fleet.
//!
//! ## The open world
//!
//! The FREEZE lock guards more than quiescence: it owns the
//! [`Universe`] — the problem (instance + tasks) and the per-session
//! slot vector. Both are **append-only extensible** while the fleet is
//! live: [`Fleet::register_session`] (exclusive FREEZE) registers a
//! never-before-seen conference, growing the instance, the task table,
//! and the slot vector in one step. The ledger is untouched until the
//! new session is actually admitted (agents are fixed; a registered
//! conference reserves nothing). Because growth never renumbers an id
//! or moves an existing delay entry, every evaluated load, objective
//! and hold of the pre-growth fleet is bitwise unchanged — a fleet
//! grown session-by-session is indistinguishable from one built over
//! the full universe up front.
//!
//! Journal total order: every journal append happens through the single
//! journal mutex, whose monotonically increasing sequence number is the
//! global sequence counter; a hop appends while still holding its slot
//! lock, so per-session journal order equals per-session commit order,
//! and ops of different sessions commute under replay (state-exactly
//! for slots and holdings; evacuation feasibility deliberately derives
//! its residuals from slot loads, not the ledger's commit-order float
//! sums, so `FailAgent` re-derivation is order-independent too) —
//! recovery semantics are untouched.

use crate::ledger::{CapacityLedger, HopResiduals, LedgerError, SessionHold};
use crate::readmit::{backoff_us, ReadmitConfig, ReadmitEntry, ReadmitState};
use crate::workers::TimerEntry;
use parking_lot::{Mutex, RwLock};
use rand::Rng;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use vc_algo::admission::{
    AdmissionConfig, AdmissionEngine, AdmissionFailure, AdmissionPolicy, AdmissionTier,
};
use vc_algo::agrank::{self, AgRankConfig, Residuals};
use vc_algo::markov::{Alg1Config, Alg1Engine, HopOutcome, HopScratch};
use vc_algo::placement;
use vc_core::{
    AgentTotals, Assignment, AssignmentView, Decision, EvalScratch, OverlayView, SessionLoad,
    SystemState, TaskId, UapProblem, CAPACITY_EPS,
};
use vc_model::{AgentDef, AgentId, ModelError, SessionDef, SessionId, UserId};
use vc_obs::{ObsConfig, ObsPlane, OpKind, Site, TraceKind};

/// One candidate placement: session users and tasks to agents.
pub type Placement = (Vec<(UserId, AgentId)>, Vec<(TaskId, AgentId)>);

/// How arriving sessions are placed.
#[derive(Debug, Clone)]
pub enum PlacementPolicy {
    /// Nearest agent per user (the Airlift/vSkyConf rule) — resource-
    /// oblivious, no fallback.
    Nearest,
    /// AgRank bootstrap (Alg. 2) against the ledger's live residuals,
    /// falling back through each user's ranked candidates.
    AgRank(AgRankConfig),
}

/// Which admission search `Fleet::admit` runs.
#[derive(Debug, Clone)]
pub enum AdmissionMode {
    /// The shared [`AdmissionEngine`] (enumeration → repair → ranked
    /// fallback) against live ledger residuals — the same search the
    /// offline Fig. 9 `admit_all` runs, so the control plane and the
    /// experiments admit identical session sets.
    Engine(AdmissionConfig),
    /// The control plane's historical search: first-choice placement,
    /// then each user walked one step down its ranked candidate list.
    /// Retained for differential testing and the `admission_parity`
    /// benchmark baseline.
    LegacyRanked,
}

impl Default for AdmissionMode {
    fn default() -> Self {
        Self::Engine(AdmissionConfig::default())
    }
}

/// Fleet configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Placement at admission.
    pub placement: PlacementPolicy,
    /// Which admission search runs over that policy's candidates.
    pub admission: AdmissionMode,
    /// Alg. 1 parameters for the re-optimization workers.
    pub alg1: Alg1Config,
    /// Ledger shard count (clamped to the agent count).
    pub ledger_shards: usize,
    /// Observability-plane tuning: span sampling rates (hop, WAIT
    /// dispatch) and flight/trace ring capacities.
    pub obs: ObsConfig,
    /// Self-healing re-admission: `Some` queues sessions displaced by
    /// forced evacuations (and refusals routed through
    /// [`Fleet::admit_or_queue`]) for deterministic backoff retries;
    /// `None` keeps the historical force-move-and-overshoot behavior.
    pub readmit: Option<ReadmitConfig>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            placement: PlacementPolicy::AgRank(AgRankConfig::live()),
            admission: AdmissionMode::default(),
            alg1: Alg1Config::default(),
            ledger_shards: 8,
            obs: ObsConfig::default(),
            readmit: None,
        }
    }
}

/// Why a session was not admitted.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmitError {
    /// The session is already live.
    AlreadyLive(SessionId),
    /// The admission engine exhausted its search; the stage is the
    /// furthest the search reached (user fit → task fit → global
    /// check), mirroring the offline `admit_all` diagnostics.
    Refused {
        /// The refused session.
        session: SessionId,
        /// The furthest search stage reached.
        stage: AdmissionFailure,
    },
    /// No placement satisfied the ledger (last refusal attached;
    /// [`AdmissionMode::LegacyRanked`] only).
    NoCapacity(LedgerError),
    /// The placement satisfied capacities but broke the delay bound
    /// ([`AdmissionMode::LegacyRanked`] only).
    DelayBound {
        /// Worst flow delay of the attempted placement (ms).
        delay_ms: f64,
        /// The instance's `Dmax` (ms).
        bound_ms: f64,
    },
    /// An open-world arrival's definition failed to register (the
    /// universe is unchanged; nothing was admitted).
    Register(ModelError),
}

/// What [`Fleet::admit_or_queue`] did with the session.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmitOutcome {
    /// Admitted immediately.
    Admitted,
    /// Refused, but queued for deterministic-backoff re-admission.
    Queued {
        /// The refusal that sent it to the queue.
        error: AdmitError,
        /// Virtual time (µs) of the first retry.
        due_us: u64,
    },
    /// Refused with no queue entry (queue disabled, full, or the
    /// refusal is non-retryable).
    Refused(AdmitError),
}

/// Running totals of control-plane activity (all monotone counters).
#[derive(Debug, Default)]
pub struct FleetCounters {
    /// Sessions admitted.
    pub admitted: AtomicUsize,
    /// Admission attempts refused.
    pub rejected: AtomicUsize,
    /// Sessions departed.
    pub departed: AtomicUsize,
    /// Successful HOP migrations.
    pub migrations: AtomicUsize,
    /// HOPs that stayed put (including no-feasible-move and ledger-race
    /// refusals).
    pub stays: AtomicUsize,
    /// Evacuation moves applied on agent failures.
    pub evacuations: AtomicUsize,
    /// Evacuation moves that were *forced* (no feasible target existed —
    /// capacity may be overshot until re-optimization drains it).
    pub forced_moves: AtomicUsize,
    /// Admissions placed by the engine's enumeration tier.
    pub admitted_enumeration: AtomicUsize,
    /// Admissions placed by greedy + violation-driven repair.
    pub admitted_repair: AtomicUsize,
    /// Admissions placed by the ranked-fallback tier (including every
    /// [`AdmissionMode::LegacyRanked`] admission).
    pub admitted_fallback: AtomicUsize,
    /// Violation-driven repair moves applied across all admissions.
    pub repair_steps: AtomicUsize,
    /// Refusals at the user-placement stage.
    pub refused_user_fit: AtomicUsize,
    /// Refusals at the transcoding-placement stage.
    pub refused_task_fit: AtomicUsize,
    /// Refusals at the global feasibility check (capacity interplay or
    /// the delay bound; legacy-mode capacity/delay refusals included).
    pub refused_global: AtomicUsize,
    /// Sessions displaced whole by an evacuation that found no feasible
    /// target (re-admission enabled; the session left the fleet and
    /// entered — or overflowed — the re-admission queue).
    pub displaced: AtomicUsize,
    /// Re-admission queue installs (first enqueues and backoff
    /// re-enqueues both count).
    pub readmit_enqueued: AtomicUsize,
    /// Queued sessions that were admitted back into the fleet.
    pub readmit_admitted: AtomicUsize,
    /// Queued sessions dropped (queue overflow or retry exhaustion).
    pub readmit_dropped: AtomicUsize,
}

impl FleetCounters {
    /// Admission success rate over all attempts so far (1.0 when idle).
    pub fn admission_success_rate(&self) -> f64 {
        let ok = self.admitted.load(Ordering::Relaxed);
        let no = self.rejected.load(Ordering::Relaxed);
        if ok + no == 0 {
            1.0
        } else {
            ok as f64 / (ok + no) as f64
        }
    }
}

/// One session's share of the assignment: its users' and tasks' agents
/// (parallel to `instance.session(s).users()` and
/// `tasks.of_session(s)`), the evaluated load under that placement, and
/// whether the session is live. Inactive sessions keep their (inert)
/// placement and a zeroed load.
#[derive(Debug)]
pub(crate) struct SessionSlot {
    pub(crate) users: Vec<AgentId>,
    pub(crate) tasks: Vec<AgentId>,
    pub(crate) load: SessionLoad,
    pub(crate) active: bool,
}

/// [`AssignmentView`] over one slot: lookups are linear in the session
/// size (a handful of users), touching no global structure.
struct SlotView<'a> {
    user_ids: &'a [UserId],
    task_ids: &'a [TaskId],
    slot: &'a SessionSlot,
}

impl AssignmentView for SlotView<'_> {
    fn agent_of_user(&self, u: UserId) -> AgentId {
        let i = self
            .user_ids
            .iter()
            .position(|&w| w == u)
            .expect("user belongs to the evaluated session");
        self.slot.users[i]
    }
    fn agent_of_task(&self, t: TaskId) -> AgentId {
        let i = self
            .task_ids
            .iter()
            .position(|&w| w == t)
            .expect("task belongs to the evaluated session");
        self.slot.tasks[i]
    }
}

/// A proposed (partial) placement over a slot: pairs win, the slot's
/// current (possibly inert) assignment backs everything else — the
/// admission-evaluation shape.
struct PairsView<'a> {
    users: &'a [(UserId, AgentId)],
    tasks: &'a [(TaskId, AgentId)],
    base: SlotView<'a>,
}

impl AssignmentView for PairsView<'_> {
    fn agent_of_user(&self, u: UserId) -> AgentId {
        match self.users.iter().find(|(w, _)| *w == u) {
            Some(&(_, a)) => a,
            None => self.base.agent_of_user(u),
        }
    }
    fn agent_of_task(&self, t: TaskId) -> AgentId {
        match self.tasks.iter().find(|(w, _)| *w == t) {
            Some(&(_, a)) => a,
            None => self.base.agent_of_task(t),
        }
    }
}

/// Reusable per-worker buffers for the fleet hop path: the engine's
/// [`HopScratch`] plus the ledger residual snapshot. One per worker
/// thread; steady-state hops allocate nothing.
#[derive(Debug, Default)]
pub struct FleetHopScratch {
    pub(crate) hop: HopScratch,
    pub(crate) residuals: HopResiduals,
    /// Φ delta of the last committed migration (set inside the slot
    /// lock, traced after it drops — recording never happens under
    /// FREEZE).
    pub(crate) last_delta_phi: f64,
    /// Whether the last hop lost its ledger swap to a concurrent hop.
    pub(crate) last_swap_conflict: bool,
}

impl FleetHopScratch {
    /// An empty scratch; buffers size themselves on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One-pass consistent-ish fleet metrics (see [`Fleet::metrics`]).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FleetMetrics {
    pub(crate) live: usize,
    pub(crate) objective: f64,
    pub(crate) traffic_mbps: f64,
    pub(crate) mean_delay_ms: f64,
}

/// One append-only universe-growth event. A durable snapshot carries
/// these in registration order so recovery can regrow the universe from
/// the seed problem; sessions and agents must replay **interleaved
/// exactly as they happened** — a session definition's per-agent delay
/// rows are sized by the agent count at its registration time.
#[derive(Debug, Clone, PartialEq)]
pub enum GrowthRecord {
    /// `register_session(def)`.
    Session(SessionDef),
    /// `register_agent(def, region)`.
    Agent(AgentDef, String),
}

/// What the FREEZE lock owns: the growable universe — the problem
/// (instance + derived tables), one slot per registered session, and
/// the per-agent availability/drain masks. Hops read it shared; coarse
/// ops and [`Fleet::register_session`] / [`Fleet::register_agent`] hold
/// it exclusively.
#[derive(Debug)]
pub(crate) struct Universe {
    pub(crate) problem: Arc<UapProblem>,
    pub(crate) slots: Vec<Mutex<SessionSlot>>,
    /// Universe growth since construction, in registration order —
    /// what a durable snapshot must carry so recovery can regrow the
    /// universe from the seed problem.
    pub(crate) growth: Vec<GrowthRecord>,
    /// Per-agent availability. Mutated only under the FREEZE write
    /// lock; read under (at least) the shared lock.
    pub(crate) available: Vec<bool>,
    /// Per-agent drain flag: a drained agent is permanently out —
    /// [`Fleet::restore_agent`] refuses it.
    pub(crate) drained: Vec<bool>,
}

impl Universe {
    /// Appends one inert slot for freshly-registered session `s`.
    fn push_slot(&mut self, s: SessionId) {
        let inst = self.problem.instance();
        self.slots.push(Mutex::new(SessionSlot {
            users: vec![AgentId::new(0); inst.session(s).len()],
            tasks: vec![AgentId::new(0); self.problem.tasks().of_session(s).len()],
            load: SessionLoad::empty(inst.num_agents()),
            active: false,
        }));
    }
}

/// The multi-session control plane. See the module docs.
#[derive(Debug)]
pub struct Fleet {
    /// The sharded FREEZE: hops shared, coarse ops exclusive. Owns the
    /// growable [`Universe`] (problem + slots), so universe growth is
    /// just another exclusive path.
    pub(crate) freeze: RwLock<Universe>,
    pub(crate) live: AtomicUsize,
    pub(crate) ledger: CapacityLedger,
    pub(crate) engine: Alg1Engine,
    pub(crate) config: FleetConfig,
    pub(crate) counters: FleetCounters,
    /// Write-ahead journal sink; `None` runs the fleet ephemeral.
    /// Every state-changing hook below fires while the mutated slot's
    /// lock (or the FREEZE write lock) is held, so per-session journal
    /// order equals per-session commit order.
    pub(crate) persist: Option<crate::persist::FleetPersistence>,
    /// Stays observed but not yet flushed as a `StayBatch` record.
    pub(crate) pending_stays: AtomicU64,
    /// The last worker-pool timer state this fleet saw — journaled via
    /// [`journal_timers`](Fleet::journal_timers), restored by recovery,
    /// and carried by every durable snapshot so recovered fleets resume
    /// WAIT countdowns instead of re-drawing them.
    pub(crate) timers: Mutex<Vec<TimerEntry>>,
    /// Reusable evaluation buffers for the admission path (admissions
    /// are FREEZE-exclusive, so the mutex is uncontended; reusing the
    /// `L×L` flow matrix avoids re-allocating it per admit).
    admit_scratch: Mutex<EvalScratch>,
    /// The observability plane: per-site latency histograms, per-shard
    /// swap contention counters, and the flight recorder. Enabled by
    /// default; disabling reduces every probe to one relaxed load.
    pub(crate) obs: Arc<ObsPlane>,
    /// The bounded re-admission queue (empty and inert unless
    /// [`FleetConfig::readmit`] is set). Locked *after* the FREEZE/slot
    /// locks, never before.
    pub(crate) readmit: Mutex<ReadmitState>,
    /// Virtual-clock watermark (µs): the latest time any caller has
    /// advanced the fleet to. New re-admission due times are computed
    /// from it; it is *not* durable — replay takes due times from the
    /// journaled enqueue records, and a recovered fleet's driver
    /// re-advances the clock as it resumes.
    pub(crate) clock_us: AtomicU64,
}

impl Fleet {
    /// Creates a fleet over `problem` with **no** live sessions: every
    /// session of the instance is a *potential* conference that may
    /// arrive later (and more can be registered online afterwards via
    /// [`register_session`](Self::register_session)). Initial (inert)
    /// placements sit on agent 0.
    pub fn new(problem: Arc<UapProblem>, config: FleetConfig) -> Self {
        let nl = problem.instance().num_agents();
        let ledger = CapacityLedger::new(&problem, config.ledger_shards);
        let mut universe = Universe {
            problem,
            slots: Vec::new(),
            growth: Vec::new(),
            available: vec![true; nl],
            drained: vec![false; nl],
        };
        for i in 0..universe.problem.instance().num_sessions() {
            universe.push_slot(SessionId::from(i));
        }
        let obs = Arc::new(ObsPlane::with_config(ledger.num_shards(), config.obs));
        Self {
            freeze: RwLock::new(universe),
            live: AtomicUsize::new(0),
            ledger,
            engine: Alg1Engine::new(config.alg1.clone()),
            config,
            counters: FleetCounters::default(),
            persist: None,
            pending_stays: AtomicU64::new(0),
            timers: Mutex::new(Vec::new()),
            admit_scratch: Mutex::new(EvalScratch::new()),
            obs,
            readmit: Mutex::new(ReadmitState::default()),
            clock_us: AtomicU64::new(0),
        }
    }

    /// The fleet's observability plane ([`vc_obs::ObsPlane`]): latency
    /// histograms per instrumented site, swap contention counters, and
    /// the flight recorder. Shareable; telemetry and benches read it.
    pub fn obs(&self) -> &Arc<ObsPlane> {
        &self.obs
    }

    /// The current problem (a clone of the `Arc` under the shared
    /// FREEZE lock — the universe may have grown since, so callers get
    /// a consistent point-in-time view rather than a borrow).
    pub fn problem(&self) -> Arc<UapProblem> {
        self.freeze.read().problem.clone()
    }

    /// Current universe size: `(registered sessions, registered users)`.
    /// Live sessions are a subset; see [`live_count`](Self::live_count).
    pub fn universe_size(&self) -> (usize, usize) {
        let u = self.freeze.read();
        let inst = u.problem.instance();
        (inst.num_sessions(), inst.num_users())
    }

    /// Registers a never-before-seen conference online, returning its
    /// (always next-dense) session id. Exclusive FREEZE path: the
    /// instance, task table and slot vector grow in one step; the
    /// **ledger is untouched** — a registered conference holds nothing
    /// until it is admitted. On error the fleet is unchanged.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from the instance-level validation.
    pub fn register_session(&self, def: &SessionDef) -> Result<SessionId, ModelError> {
        let t0 = self.obs.timer();
        let mut u = self.freeze.write();
        let t_acq = t0.map(|_| Instant::now());
        // `make_mut` mutates in place when the fleet is the sole owner
        // (the common case — `problem()` clones are short-lived), so a
        // burst of registrations does not deep-copy the whole problem
        // per arrival.
        let s = Arc::make_mut(&mut u.problem).register_session(def)?;
        u.push_slot(s);
        u.growth.push(GrowthRecord::Session(def.clone()));
        self.log_op(|| crate::persist::FleetOp::RegisterSession {
            session: s,
            def: def.clone(),
        });
        drop(u);
        if let Some(t0) = t0 {
            let t_acq = t_acq.expect("taken together with t0");
            let t_end = Instant::now();
            self.obs.record_span(Site::FreezeWriteWait, t0, t_acq);
            self.obs.record_span(Site::FreezeWriteHold, t_acq, t_end);
            self.obs.record_span(Site::RegisterSession, t0, t_end);
            self.obs
                .note_op_at(t_end, OpKind::RegisterSession, s.index() as u32, 0);
            self.obs.note_trace_at(
                t_end,
                TraceKind::Registered,
                s.index() as u32,
                def.users.len() as u64,
            );
        }
        Ok(s)
    }

    /// Registers a never-before-seen agent online into `region`
    /// (elastic capacity), returning its (always next-dense) agent id.
    /// Exclusive FREEZE path: the instance's agent pool and delay
    /// matrices, every stored slot load's agent axis, the availability/
    /// drain masks, and the ledger all grow in one step — append-only,
    /// nothing renumbers, so every evaluated load, objective and hold of
    /// the pre-growth fleet is bitwise unchanged. The region is created
    /// if new. On error the fleet is unchanged.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from the instance-level validation
    /// (delay-row lengths, finiteness).
    pub fn register_agent(&self, def: &AgentDef, region: &str) -> Result<AgentId, ModelError> {
        let t0 = self.obs.timer();
        let mut u = self.freeze.write();
        let t_acq = t0.map(|_| Instant::now());
        let l = Arc::make_mut(&mut u.problem).register_agent(def)?;
        let nl = u.problem.instance().num_agents();
        // Stored slot loads are dense over the agent axis; grow them so
        // every later evaluation/summation sees matching lengths. The
        // new tail is zero, so grown loads stay bitwise-equal to their
        // up-front-construction twins.
        for slot in &u.slots {
            slot.lock().load.grow(nl);
        }
        u.available.push(true);
        u.drained.push(false);
        let region_id = self.ledger.ensure_region(region);
        let ledger_id = self.ledger.register_agent(def.spec.capacity(), region_id);
        debug_assert_eq!(l, ledger_id, "problem and ledger agree on the new id");
        u.growth
            .push(GrowthRecord::Agent(def.clone(), region.to_string()));
        self.log_op(|| crate::persist::FleetOp::RegisterAgent {
            agent: l,
            def: def.clone(),
            region: region.to_string(),
        });
        drop(u);
        if let Some(t0) = t0 {
            let t_acq = t_acq.expect("taken together with t0");
            let t_end = Instant::now();
            self.obs.record_span(Site::FreezeWriteWait, t0, t_acq);
            self.obs.record_span(Site::FreezeWriteHold, t_acq, t_end);
        }
        Ok(l)
    }

    /// Current agent-pool size (grows with
    /// [`register_agent`](Self::register_agent)).
    pub fn num_agents(&self) -> usize {
        self.freeze.read().problem.instance().num_agents()
    }

    /// Whether `agent` has been drained (permanently out).
    pub fn is_agent_drained(&self, agent: AgentId) -> bool {
        self.freeze.read().drained[agent.index()]
    }

    /// Whether `agent` is currently available.
    pub fn is_agent_available(&self, agent: AgentId) -> bool {
        self.freeze.read().available[agent.index()]
    }

    /// The shared capacity ledger.
    pub fn ledger(&self) -> &CapacityLedger {
        &self.ledger
    }

    /// Control-plane counters.
    pub fn counters(&self) -> &FleetCounters {
        &self.counters
    }

    /// The configured Alg. 1 engine (workers draw countdowns from it).
    pub fn engine(&self) -> &Alg1Engine {
        &self.engine
    }

    /// The offline-shaped admission policy the configured placement
    /// maps to (the engine consumes `vc-algo`'s policy type).
    fn admission_policy(&self) -> AdmissionPolicy {
        match &self.config.placement {
            PlacementPolicy::Nearest => AdmissionPolicy::Nearest,
            PlacementPolicy::AgRank(config) => AdmissionPolicy::AgRank(*config),
        }
    }

    /// Admits session `s` through the configured admission search
    /// against **live** fleet state (ledger residuals + availability),
    /// then books the ledger hold and activates the slot. On any
    /// refusal the fleet is left exactly as before. Coarse path: takes
    /// the FREEZE write lock.
    ///
    /// Under [`AdmissionMode::Engine`] the search is the shared
    /// [`AdmissionEngine`] — the same enumeration / violation-driven
    /// repair / ranked fallback the Fig. 9 `admit_all` runs — so the
    /// control plane admits exactly the sessions the offline
    /// reproduction admits (proptested in `tests/admission_parity.rs`).
    ///
    /// # Errors
    ///
    /// See [`AdmitError`].
    pub fn admit(&self, s: SessionId) -> Result<(), AdmitError> {
        let t0 = self.obs.timer();
        let u = self.freeze.write();
        let t_acq = t0.map(|_| Instant::now());
        let result = self.admit_locked(&u, s);
        drop(u);
        // All recording happens after the exclusive section is released:
        // observation must never extend the FREEZE hold it measures.
        if let Some(t0) = t0 {
            let t_acq = t_acq.expect("taken together with t0");
            let t_end = Instant::now();
            self.obs.record_span(Site::FreezeWriteWait, t0, t_acq);
            self.obs.record_span(Site::FreezeWriteHold, t_acq, t_end);
            match &result {
                Ok((stats, placement_hash)) => {
                    let site = match (&self.config.admission, stats.tier) {
                        (AdmissionMode::LegacyRanked, _) => Site::AdmitLegacy,
                        (_, AdmissionTier::Enumeration) => Site::AdmitEnumeration,
                        (_, AdmissionTier::Repair) => Site::AdmitRepair,
                        (_, AdmissionTier::RankedFallback) => Site::AdmitFallback,
                    };
                    self.obs.record_span(site, t0, t_end);
                    self.obs
                        .note_op_at(t_end, OpKind::Admit, s.index() as u32, stats.tier as u32);
                    let tier = match (&self.config.admission, stats.tier) {
                        (AdmissionMode::LegacyRanked, _) => 3u64,
                        (_, t) => t as u64,
                    };
                    self.obs
                        .note_trace_at(t_end, TraceKind::AdmitAttempt, s.index() as u32, tier);
                    self.obs.note_trace_at(
                        t_end,
                        TraceKind::Admitted,
                        s.index() as u32,
                        *placement_hash,
                    );
                }
                Err(e) => {
                    self.obs.record_span(Site::AdmitRefused, t0, t_end);
                    self.obs
                        .note_op_at(t_end, OpKind::Reject, s.index() as u32, 0);
                    // Refusal stage codes (see `TraceKind::Refused`); an
                    // already-live refusal ran no search, so it gets no
                    // `AdmitAttempt` in its chain.
                    let stage = match e {
                        AdmitError::Refused {
                            stage: AdmissionFailure::UserFit,
                            ..
                        } => 0u64,
                        AdmitError::Refused {
                            stage: AdmissionFailure::TaskFit,
                            ..
                        } => 1,
                        AdmitError::Refused {
                            stage: AdmissionFailure::GlobalCheck,
                            ..
                        } => 2,
                        AdmitError::NoCapacity(_) => 3,
                        AdmitError::DelayBound { .. } => 4,
                        AdmitError::AlreadyLive(_) | AdmitError::Register(_) => 5,
                    };
                    if !matches!(e, AdmitError::AlreadyLive(_)) {
                        let tier = match &self.config.admission {
                            AdmissionMode::LegacyRanked => 3u64,
                            AdmissionMode::Engine(_) => 2,
                        };
                        self.obs.note_trace_at(
                            t_end,
                            TraceKind::AdmitAttempt,
                            s.index() as u32,
                            tier,
                        );
                    }
                    self.obs
                        .note_trace_at(t_end, TraceKind::Refused, s.index() as u32, stage);
                }
            }
        }
        result.map(|_| ())
    }

    /// The admission proper, run under the caller's FREEZE write lock.
    /// Success carries the stats plus the FNV-1a hash of the committed
    /// placement (the `Admitted` lifecycle event's payload).
    fn admit_locked(
        &self,
        u: &Universe,
        s: SessionId,
    ) -> Result<(vc_algo::admission::AdmissionStats, u64), AdmitError> {
        let mut slot = u.slots[s.index()].lock();
        if slot.active {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            self.log_op(|| crate::persist::FleetOp::Reject {
                session: s,
                reason: crate::persist::RefusalReason::AlreadyLive,
            });
            return Err(AdmitError::AlreadyLive(s));
        }
        let problem = &u.problem;
        let result = match &self.config.admission {
            AdmissionMode::Engine(config) => {
                self.admit_engine(problem, &u.available, &mut slot, s, config.clone())
            }
            AdmissionMode::LegacyRanked => self.admit_legacy(problem, &mut slot, s),
        };
        match &result {
            Ok(stats) => {
                self.live.fetch_add(1, Ordering::Relaxed);
                self.counters.admitted.fetch_add(1, Ordering::Relaxed);
                // A queued re-admission that lands here is healed; any
                // other admission of a queued session retires its entry
                // too (replay of the `Admit` record does the same).
                self.readmit_note_admitted(s);
                let tier_counter = match stats.tier {
                    AdmissionTier::Enumeration => &self.counters.admitted_enumeration,
                    AdmissionTier::Repair => &self.counters.admitted_repair,
                    AdmissionTier::RankedFallback => &self.counters.admitted_fallback,
                };
                tier_counter.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .repair_steps
                    .fetch_add(stats.repair_steps, Ordering::Relaxed);
                let (tier, repair_steps) = (stats.tier, stats.repair_steps as u64);
                self.log_op(|| {
                    let (users, tasks) = placement_of_slot(problem, s, &slot);
                    crate::persist::FleetOp::Admit {
                        session: s,
                        users,
                        tasks,
                        tier,
                        repair_steps,
                    }
                });
            }
            Err(e) => {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                let reason = match e {
                    AdmitError::Refused {
                        stage: AdmissionFailure::UserFit,
                        ..
                    } => {
                        self.counters
                            .refused_user_fit
                            .fetch_add(1, Ordering::Relaxed);
                        crate::persist::RefusalReason::UserFit
                    }
                    AdmitError::Refused {
                        stage: AdmissionFailure::TaskFit,
                        ..
                    } => {
                        self.counters
                            .refused_task_fit
                            .fetch_add(1, Ordering::Relaxed);
                        crate::persist::RefusalReason::TaskFit
                    }
                    AdmitError::Refused {
                        stage: AdmissionFailure::GlobalCheck,
                        ..
                    } => {
                        self.counters.refused_global.fetch_add(1, Ordering::Relaxed);
                        crate::persist::RefusalReason::GlobalCheck
                    }
                    AdmitError::NoCapacity(_) => {
                        self.counters.refused_global.fetch_add(1, Ordering::Relaxed);
                        crate::persist::RefusalReason::Capacity
                    }
                    AdmitError::DelayBound { .. } => {
                        self.counters.refused_global.fetch_add(1, Ordering::Relaxed);
                        crate::persist::RefusalReason::Delay
                    }
                    AdmitError::AlreadyLive(_) | AdmitError::Register(_) => {
                        unreachable!("search paths never produce these")
                    }
                };
                self.log_op(|| crate::persist::FleetOp::Reject { session: s, reason });
            }
        };
        result.map(|stats| (stats, placement_hash(&slot)))
    }

    /// The shared-engine admission search against the live ledger:
    /// residuals are capacity minus the booked reservation totals —
    /// derived through the same [`Residuals::from_totals`] the offline
    /// world uses, so both worlds search identical spaces — and failed
    /// agents are masked. On success the placement is installed and the
    /// hold booked *unchecked* (the engine already proved it fits; the
    /// exclusive FREEZE lock excludes races).
    fn admit_engine(
        &self,
        problem: &Arc<UapProblem>,
        available: &[bool],
        slot: &mut SessionSlot,
        s: SessionId,
        config: AdmissionConfig,
    ) -> Result<vc_algo::admission::AdmissionStats, AdmitError> {
        let engine = AdmissionEngine::new(config);
        let residuals = Residuals::from_totals(problem, &self.ledger.reserved_totals());
        let mut scratch = self.admit_scratch.lock();
        let decision = engine
            .place_session(
                problem,
                s,
                &self.admission_policy(),
                &residuals,
                available,
                &mut scratch,
            )
            .map_err(|stage| AdmitError::Refused { session: s, stage })?;
        // `scratch` holds the accepted placement's evaluated load.
        install_placement(problem, slot, s, &decision.users, &decision.tasks);
        slot.load.clone_from(scratch.load());
        slot.active = true;
        // Booking is unchecked either way (the engine already proved the
        // fit). A hold spanning ≥ 2 regions routes through the two-phase
        // protocol so the commit point — and hence the journal record —
        // sits strictly after every region's debit: a crash between
        // prepare and commit replays to pre-admission residuals in every
        // region.
        let hold = SessionHold::from_load(scratch.load());
        if self.ledger.split_by_region(&hold).len() >= 2 {
            let prepared = self.ledger.prepare_booked(s, hold);
            self.ledger
                .commit_prepared(prepared)
                .expect("inactive session holds no reservation");
        } else {
            self.ledger
                .book_unchecked(s, hold)
                .expect("inactive session holds no reservation");
        }
        Ok(decision.stats)
    }

    /// The historical control-plane search (see
    /// [`AdmissionMode::LegacyRanked`]).
    fn admit_legacy(
        &self,
        problem: &Arc<UapProblem>,
        slot: &mut SessionSlot,
        s: SessionId,
    ) -> Result<vc_algo::admission::AdmissionStats, AdmitError> {
        let inst = problem.instance();
        let mut scratch = self.admit_scratch.lock();
        let mut candidates_evaluated = 1usize;
        let result = match &self.config.placement {
            PlacementPolicy::Nearest => {
                let users: Vec<(UserId, AgentId)> = inst
                    .session(s)
                    .users()
                    .iter()
                    .map(|&u| (u, inst.delays().nearest_agent(u)))
                    .collect();
                let (users, tasks) = with_tasks(problem, s, users);
                self.try_placement(problem, slot, &mut scratch, s, &users, &tasks)
            }
            PlacementPolicy::AgRank(config) => {
                let residuals = self.ledger.residuals();
                let sa = agrank::assign_session(problem, s, &residuals, config);
                // First choice reuses the bootstrap's own task placement.
                let mut outcome =
                    self.try_placement(problem, slot, &mut scratch, s, &sa.users, &sa.tasks);
                if outcome.is_err() {
                    // Fallbacks, built lazily only after a refusal: walk
                    // each user one step down its ranked candidate list.
                    'search: for (i, (u, _)) in sa.users.iter().enumerate() {
                        for &alt in sa.ranking.candidates_of(*u).iter().skip(1) {
                            let mut users = sa.users.clone();
                            users[i] = (*u, alt);
                            let (users, tasks) = with_tasks(problem, s, users);
                            candidates_evaluated += 1;
                            match self.try_placement(problem, slot, &mut scratch, s, &users, &tasks)
                            {
                                Ok(()) => {
                                    outcome = Ok(());
                                    break 'search;
                                }
                                refused => outcome = refused,
                            }
                        }
                    }
                }
                outcome
            }
        };
        result.map(|()| vc_algo::admission::AdmissionStats {
            tier: AdmissionTier::RankedFallback,
            repair_steps: 0,
            candidates_evaluated,
        })
    }

    /// Tries one placement: evaluate it (overlaying the proposal on the
    /// slot's inert assignment), check the delay bound, reserve in the
    /// ledger, and only then install it into the slot — nothing to roll
    /// back on refusal.
    fn try_placement(
        &self,
        problem: &Arc<UapProblem>,
        slot: &mut SessionSlot,
        scratch: &mut EvalScratch,
        s: SessionId,
        users: &[(UserId, AgentId)],
        tasks: &[(TaskId, AgentId)],
    ) -> Result<(), AdmitError> {
        {
            let view = PairsView {
                users,
                tasks,
                base: slot_view(problem, s, slot),
            };
            scratch.evaluate(problem, &view, s);
        }
        let load = scratch.load();
        let bound = problem.instance().d_max_ms();
        if load.max_flow_delay > bound + CAPACITY_EPS {
            return Err(AdmitError::DelayBound {
                delay_ms: load.max_flow_delay,
                bound_ms: bound,
            });
        }
        self.ledger
            .try_reserve(s, SessionHold::from_load(load))
            .map_err(AdmitError::NoCapacity)?;
        install_placement(problem, slot, s, users, tasks);
        slot.load.clone_from(scratch.load());
        slot.active = true;
        Ok(())
    }

    /// Departs session `s`, releasing exactly what it reserved. Returns
    /// the released hold (`None` if the session was not live). Coarse
    /// path: takes the FREEZE write lock.
    pub fn depart(&self, s: SessionId) -> Option<SessionHold> {
        let u = self.freeze.write();
        let mut slot = u.slots[s.index()].lock();
        if !slot.active {
            return None;
        }
        slot.active = false;
        slot.load = SessionLoad::empty(u.problem.instance().num_agents());
        self.live.fetch_sub(1, Ordering::Relaxed);
        let hold = self
            .ledger
            .release(s)
            .expect("live session holds a reservation");
        self.counters.departed.fetch_add(1, Ordering::Relaxed);
        self.log_op(|| crate::persist::FleetOp::Depart { session: s });
        drop(slot);
        drop(u);
        self.obs.note_op(OpKind::Depart, s.index() as u32, 0);
        self.obs
            .note_trace(TraceKind::Departed, s.index() as u32, 0);
        Some(hold)
    }

    /// Fails `agent`: the ledger stops taking reservations on it, and
    /// every stranded user/task of a live session is evacuated
    /// immediately to its objective-minimizing feasible alternative
    /// (force-moved to the least-bad one when nothing is feasible).
    /// Returns `(moves, forced)`. Coarse path: takes the FREEZE write
    /// lock, so the evacuation is deterministic — replay re-runs it.
    pub fn fail_agent(&self, agent: AgentId) -> (usize, usize) {
        self.down_agent_inner(agent, true, false)
    }

    /// Drains `agent`: a *planned* evacuation. The ledger refuses new
    /// reservations on the agent first, then its load is evacuated
    /// through exactly the [`fail_agent`](Self::fail_agent) machinery,
    /// and the agent is marked permanently drained —
    /// [`restore_agent`](Self::restore_agent) refuses it. Returns
    /// `(moves, forced)`. Coarse path: takes the FREEZE write lock.
    pub fn drain_agent(&self, agent: AgentId) -> (usize, usize) {
        self.down_agent_inner(agent, true, true)
    }

    /// [`fail_agent`](Self::fail_agent) with the re-admission enqueue
    /// split out (see [`down_agent_inner`](Self::down_agent_inner)) —
    /// the `FailAgent` replay entry point.
    pub(crate) fn fail_agent_inner(
        &self,
        agent: AgentId,
        enqueue_displaced: bool,
    ) -> (usize, usize) {
        self.down_agent_inner(agent, enqueue_displaced, false)
    }

    /// [`drain_agent`](Self::drain_agent) with the re-admission enqueue
    /// split out — the `DrainAgent` replay entry point.
    pub(crate) fn drain_agent_inner(
        &self,
        agent: AgentId,
        enqueue_displaced: bool,
    ) -> (usize, usize) {
        self.down_agent_inner(agent, enqueue_displaced, true)
    }

    /// The shared fail/drain path, with the re-admission enqueue split
    /// out: the evacuation (including whole-session displacement when
    /// the queue is enabled) is deterministic state change that journal
    /// replay re-derives by re-running it, but the *enqueue* of each
    /// displaced session rides the journal as an explicit
    /// `ReadmitEnqueue` record — so replay passes `enqueue_displaced:
    /// false` here and installs the queue from the records instead.
    /// `drain` marks the agent permanently out (refuse-then-evacuate:
    /// the ledger availability flips before any session moves, so no
    /// concurrent path can book onto the leaving agent).
    fn down_agent_inner(
        &self,
        agent: AgentId,
        enqueue_displaced: bool,
        drain: bool,
    ) -> (usize, usize) {
        let mut evacuated = Vec::new();
        let mut displaced = Vec::new();
        let mut u = self.freeze.write();
        u.available[agent.index()] = false;
        if drain {
            u.drained[agent.index()] = true;
        }
        self.ledger.fail_agent(agent);
        let (moves, forced) = self.evacuate_locked(&u, agent, &mut evacuated, &mut displaced);
        self.counters
            .evacuations
            .fetch_add(moves, Ordering::Relaxed);
        self.counters
            .forced_moves
            .fetch_add(forced, Ordering::Relaxed);
        // Evacuation is deterministic given the state, so the journal
        // records the *cause*; replay re-runs the same evacuation.
        self.log_op(|| {
            if drain {
                crate::persist::FleetOp::DrainAgent { agent }
            } else {
                crate::persist::FleetOp::FailAgent { agent }
            }
        });
        // Queue installs journal *after* the FailAgent record, under
        // the same FREEZE hold, so replay sees the displacement state
        // change before the enqueues that depend on it.
        let mut queued = Vec::new();
        let mut overflowed = Vec::new();
        if enqueue_displaced {
            for &s in &displaced {
                match self.readmit_enqueue_locked(s) {
                    Some(entry) => queued.push(entry),
                    None => overflowed.push(s),
                }
            }
        }
        drop(u);
        self.obs
            .note_op(OpKind::FailAgent, agent.index() as u32, moves as u32);
        // One `Evacuated` lifecycle event per force-moved session,
        // emitted after the exclusive section releases (same rule as
        // every other trace/obs record).
        for (s, target) in evacuated {
            self.obs.note_trace(
                TraceKind::Evacuated,
                s.index() as u32,
                target.index() as u64,
            );
        }
        for entry in queued {
            self.obs.note_trace(
                TraceKind::ReadmitQueued,
                entry.session.index() as u32,
                entry.due_us,
            );
        }
        for s in overflowed {
            self.obs
                .note_trace(TraceKind::ReadmitDropped, s.index() as u32, 0);
        }
        (moves, forced)
    }

    /// The evacuation proper (FREEZE write lock held): for each stranded
    /// decision — sessions ascending, users before tasks, mirroring
    /// `vc-algo`'s churn module — pick the feasible alternative
    /// minimizing `Φ_s`. When no feasible target exists: with
    /// re-admission enabled the *whole session* is displaced (pushed to
    /// `displaced`, its hold released, its slot deactivated) instead of
    /// overshooting a surviving agent; without it, the least-bad move
    /// is forced, preserving the historical behavior.
    fn evacuate_locked(
        &self,
        u: &Universe,
        agent: AgentId,
        evacuated: &mut Vec<(SessionId, AgentId)>,
        displaced: &mut Vec<SessionId>,
    ) -> (usize, usize) {
        let problem = &u.problem;
        let inst = problem.instance();
        let mut stranded: Vec<(SessionId, Decision)> = Vec::new();
        for s in inst.session_ids() {
            let slot = u.slots[s.index()].lock();
            if !slot.active {
                continue;
            }
            for (i, &a) in slot.users.iter().enumerate() {
                if a == agent {
                    stranded.push((s, Decision::User(inst.session(s).users()[i], agent)));
                }
            }
            for (i, &a) in slot.tasks.iter().enumerate() {
                if a == agent {
                    stranded.push((s, Decision::Task(problem.tasks().of_session(s)[i], agent)));
                }
            }
        }
        let readmit_on = self.config.readmit.is_some();
        let mut eval = EvalScratch::new();
        let mut residuals = HopResiduals::default();
        let mut moves = 0usize;
        let mut forced = 0usize;
        for (s, d) in stranded {
            // A session displaced by an earlier stranded decision is
            // gone; its remaining decisions are moot.
            if displaced.contains(&s) {
                continue;
            }
            // Residuals re-derived from the slot loads (ascending
            // session order), NOT from the ledger's reserved sums: the
            // latter accumulate in journal-append order, which for
            // concurrent hops can differ between the live run and
            // replay by a ulp — and FailAgent replay must re-pick the
            // exact same evacuation targets. Slot-load summation is
            // deterministic given the replayed state. (Computed before
            // taking `s`'s slot lock — it locks every slot in turn.)
            self.residuals_from_slots_locked(u, &mut residuals);
            let mut slot = u.slots[s.index()].lock();
            let mut best_feasible: Option<(AgentId, f64)> = None;
            let mut best_any: Option<(AgentId, f64)> = None;
            for l in inst.agent_ids() {
                if l == agent || !u.available[l.index()] {
                    continue;
                }
                let candidate = redirect(d, l);
                let feasible =
                    self.weigh_candidate(problem, &slot, s, candidate, &mut eval, &residuals);
                let phi = eval.load().phi;
                if best_any.as_ref().is_none_or(|(_, best)| phi < *best) {
                    best_any = Some((l, phi));
                }
                if feasible && best_feasible.as_ref().is_none_or(|(_, best)| phi < *best) {
                    best_feasible = Some((l, phi));
                }
            }
            let target = match (best_feasible, best_any) {
                (Some((l, _)), _) => Some(l),
                (None, _) if readmit_on => {
                    // No feasible target: displace the whole session
                    // into the re-admission queue instead of forcing an
                    // overshoot. Runs identically under replay (the
                    // caller re-derives this from the FailAgent record).
                    slot.active = false;
                    slot.load = SessionLoad::empty(inst.num_agents());
                    self.live.fetch_sub(1, Ordering::Relaxed);
                    self.ledger
                        .release(s)
                        .expect("live session holds a reservation");
                    self.counters.displaced.fetch_add(1, Ordering::Relaxed);
                    displaced.push(s);
                    None
                }
                (None, Some((l, _))) => {
                    forced += 1;
                    Some(l)
                }
                (None, None) => {
                    // No other agent exists at all; nothing we can do.
                    forced += 1;
                    None
                }
            };
            if let Some(l) = target {
                let decision = redirect(d, l);
                // Re-evaluate the chosen candidate (the scratch holds the
                // last-scanned one) and commit slot + ledger.
                {
                    let base = slot_view(problem, s, &slot);
                    let view = OverlayView::new(&base, decision);
                    eval.evaluate(problem, &view, s);
                }
                apply_to_slot(problem, &mut slot, s, decision);
                slot.load.clone_from(eval.load());
                self.ledger
                    .force_swap(s, SessionHold::from_load(eval.load()))
                    .expect("evacuated session holds a reservation");
                moves += 1;
                evacuated.push((s, l));
            }
        }
        (moves, forced)
    }

    /// Availability-blind residual capacities derived by summing live
    /// slot loads in ascending session order — bit-deterministic given
    /// the slots, unlike the ledger's reserved sums, which accumulate
    /// in commit order. Caller holds the FREEZE write lock and no slot
    /// lock (every slot is locked in turn).
    fn residuals_from_slots_locked(&self, u: &Universe, out: &mut HopResiduals) {
        let inst = u.problem.instance();
        let nl = inst.num_agents();
        let mut totals = AgentTotals::zero(nl);
        for s in inst.session_ids() {
            let slot = u.slots[s.index()].lock();
            if slot.active {
                totals.add(&slot.load);
            }
        }
        out.download.clear();
        out.download.resize(nl, 0.0);
        out.upload.clear();
        out.upload.resize(nl, 0.0);
        out.transcode.clear();
        out.transcode.resize(nl, 0.0);
        for l in inst.agent_ids() {
            let i = l.index();
            let cap = inst.agent(l).capacity();
            out.download[i] = cap.download_mbps - totals.download[i];
            out.upload[i] = cap.upload_mbps - totals.upload[i];
            out.transcode[i] = if cap.transcode_slots == u32::MAX {
                f64::INFINITY
            } else {
                f64::from(cap.transcode_slots) - f64::from(totals.transcode[i])
            };
        }
    }

    /// Brings a failed agent back; Alg. 1 hops will migrate load onto it
    /// again as the Gibbs weights dictate. Returns whether the agent was
    /// actually restored: **drained agents are refused** (a drain is a
    /// permanent, planned departure — nothing is journaled for a refused
    /// restore, so replay never sees one). Coarse path.
    pub fn restore_agent(&self, agent: AgentId) -> bool {
        let mut frz = self.freeze.write();
        if frz.drained[agent.index()] {
            return false;
        }
        frz.available[agent.index()] = true;
        self.ledger.restore_agent(agent);
        self.log_op(|| crate::persist::FleetOp::RestoreAgent { agent });
        drop(frz);
        self.obs
            .note_op(OpKind::RestoreAgent, agent.index() as u32, 0);
        true
    }

    /// Advances the fleet's virtual-clock watermark (monotone max).
    /// Drive it alongside the worker pool's virtual time: new
    /// re-admission due times are `now + backoff`.
    pub fn set_clock_us(&self, t_us: u64) {
        self.clock_us.fetch_max(t_us, Ordering::Relaxed);
    }

    /// The virtual-clock watermark (µs).
    pub fn now_us(&self) -> u64 {
        self.clock_us.load(Ordering::Relaxed)
    }

    /// [`admit`](Self::admit), but a capacity/feasibility refusal lands
    /// the session in the re-admission queue (when enabled) for a
    /// deterministic backoff retry instead of being dropped on the
    /// floor. `AlreadyLive`/`Register` refusals never queue — retrying
    /// them cannot succeed.
    pub fn admit_or_queue(&self, s: SessionId) -> AdmitOutcome {
        match self.admit(s) {
            Ok(()) => AdmitOutcome::Admitted,
            Err(e @ (AdmitError::AlreadyLive(_) | AdmitError::Register(_))) => {
                AdmitOutcome::Refused(e)
            }
            Err(e) => {
                if self.config.readmit.is_none() {
                    return AdmitOutcome::Refused(e);
                }
                let u = self.freeze.write();
                let entry = self.readmit_enqueue_locked(s);
                drop(u);
                match entry {
                    Some(entry) => {
                        self.obs.note_trace(
                            TraceKind::ReadmitQueued,
                            s.index() as u32,
                            entry.due_us,
                        );
                        AdmitOutcome::Queued {
                            error: e,
                            due_us: entry.due_us,
                        }
                    }
                    None => {
                        self.obs
                            .note_trace(TraceKind::ReadmitDropped, s.index() as u32, 0);
                        AdmitOutcome::Refused(e)
                    }
                }
            }
        }
    }

    /// Enqueues `s` for re-admission (caller holds the FREEZE write
    /// lock). Returns the installed entry, or `None` if the bounded
    /// queue overflowed (counted + journaled as a drop). The journaled
    /// `ReadmitEnqueue` record carries everything replay needs — epoch,
    /// attempt, due time — so recovery installs rather than recomputes.
    fn readmit_enqueue_locked(&self, s: SessionId) -> Option<ReadmitEntry> {
        let cfg = self.config.readmit?;
        let (overflow, epoch) = {
            let q = self.readmit.lock();
            (
                q.entries.len() >= cfg.capacity.max(1) && !q.entries.contains_key(&s),
                q.epochs.get(&s).copied().unwrap_or(0) + 1,
            )
        };
        if overflow {
            self.counters
                .readmit_dropped
                .fetch_add(1, Ordering::Relaxed);
            self.log_op(|| crate::persist::FleetOp::ReadmitDrop { session: s });
            return None;
        }
        let due_us = self.now_us() + backoff_us(&cfg, s, epoch, 0);
        let entry = ReadmitEntry {
            session: s,
            epoch,
            attempt: 0,
            due_us,
        };
        self.readmit_install(entry);
        self.log_op(|| crate::persist::FleetOp::ReadmitEnqueue {
            session: s,
            epoch,
            attempt: 0,
            due_us,
        });
        Some(entry)
    }

    /// Installs one queue entry — the shared primitive of the live
    /// enqueue paths and `ReadmitEnqueue` replay, so counters and the
    /// epoch watermark move identically in both worlds.
    pub(crate) fn readmit_install(&self, e: ReadmitEntry) {
        let mut q = self.readmit.lock();
        let w = q.epochs.entry(e.session).or_insert(0);
        *w = (*w).max(e.epoch);
        q.entries.insert(e.session, e);
        drop(q);
        self.counters
            .readmit_enqueued
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Retires `s`'s queue entry after a successful admission (live
    /// path and `Admit` replay both come through here). Counts only if
    /// an entry was actually present.
    pub(crate) fn readmit_note_admitted(&self, s: SessionId) {
        if self.config.readmit.is_none() {
            return;
        }
        let removed = self.readmit.lock().entries.remove(&s).is_some();
        if removed {
            self.counters
                .readmit_admitted
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops `s` from the queue under the FREEZE write lock (retry
    /// exhaustion), journaling the drop.
    fn readmit_drop_locked(&self, s: SessionId) {
        self.readmit.lock().entries.remove(&s);
        self.counters
            .readmit_dropped
            .fetch_add(1, Ordering::Relaxed);
        self.log_op(|| crate::persist::FleetOp::ReadmitDrop { session: s });
    }

    /// Attempts the earliest-due queued re-admission at virtual time
    /// `now_us` (single-threaded virtual drive — `ReoptPool::tick_until`
    /// interleaves this with WAIT wakeups in due order). Returns the
    /// session if it was admitted back, `None` if nothing was due or
    /// the attempt failed (failed attempts re-enqueue with the next
    /// backoff draw, or drop once the retry budget is spent).
    pub fn readmit_attempt_one(&self, now_us: u64) -> Option<SessionId> {
        let cfg = self.config.readmit?;
        let entry = self.readmit.lock().next_due()?;
        if entry.due_us > now_us {
            return None;
        }
        self.set_clock_us(now_us);
        match self.admit(entry.session) {
            Ok(()) => {
                // `admit_locked`'s success path already retired the
                // entry and counted the heal.
                self.obs.note_trace(
                    TraceKind::ReadmitAdmitted,
                    entry.session.index() as u32,
                    u64::from(entry.attempt),
                );
                Some(entry.session)
            }
            Err(_) => {
                // The admission journaled its own Reject record; now
                // journal what happens to the queue entry.
                let u = self.freeze.write();
                let still_there = self.readmit.lock().entries.get(&entry.session) == Some(&entry);
                if still_there {
                    if entry.attempt + 1 >= cfg.max_attempts {
                        self.readmit_drop_locked(entry.session);
                        drop(u);
                        self.obs.note_trace(
                            TraceKind::ReadmitDropped,
                            entry.session.index() as u32,
                            u64::from(entry.attempt + 1),
                        );
                    } else {
                        let attempt = entry.attempt + 1;
                        let due_us =
                            entry.due_us + backoff_us(&cfg, entry.session, entry.epoch, attempt);
                        let next = ReadmitEntry {
                            session: entry.session,
                            epoch: entry.epoch,
                            attempt,
                            due_us,
                        };
                        self.readmit_install(next);
                        self.log_op(|| crate::persist::FleetOp::ReadmitEnqueue {
                            session: next.session,
                            epoch: next.epoch,
                            attempt: next.attempt,
                            due_us: next.due_us,
                        });
                        drop(u);
                        self.obs.note_trace(
                            TraceKind::ReadmitQueued,
                            entry.session.index() as u32,
                            due_us,
                        );
                    }
                }
                None
            }
        }
    }

    /// Earliest pending re-admission due time (µs), if any.
    pub fn next_readmit_due(&self) -> Option<u64> {
        self.config.readmit?;
        self.readmit.lock().next_due().map(|e| e.due_us)
    }

    /// Number of sessions waiting in the re-admission queue.
    pub fn readmit_queue_len(&self) -> usize {
        self.readmit.lock().entries.len()
    }

    /// The queued re-admission entries, ascending by session (durable
    /// capture + test introspection).
    pub fn readmit_entries(&self) -> Vec<ReadmitEntry> {
        self.readmit.lock().entries.values().copied().collect()
    }

    /// Whether the attached journal is running degraded (a storage
    /// fault exhausted its fsync retries; appends buffer in memory
    /// until healed). Always `false` for ephemeral fleets.
    pub fn durability_degraded(&self) -> bool {
        self.persist
            .as_ref()
            .is_some_and(|p| p.journal.lock().degraded())
    }

    /// Total fsync retries the attached journal has burned (0 when
    /// ephemeral) — the telemetry-facing wear indicator.
    pub fn journal_sync_retries(&self) -> u64 {
        self.persist
            .as_ref()
            .map_or(0, |p| p.journal.lock().sync_retries())
    }

    /// One heal attempt on a degraded journal: cut back any torn tail,
    /// rewrite the buffered suffix, and fsync. Returns whether the
    /// journal is fully durable again (trivially true when ephemeral or
    /// never degraded).
    pub fn heal_journal(&self) -> bool {
        match &self.persist {
            Some(p) => p.journal.lock().try_heal(),
            None => true,
        }
    }

    /// One Alg. 1 HOP for session `s` (convenience wrapper allocating a
    /// fresh scratch — worker pools use
    /// [`hop_session_with`](Self::hop_session_with)).
    pub fn hop_session<R: Rng + ?Sized>(&self, s: SessionId, rng: &mut R) -> HopOutcome {
        let mut scratch = FleetHopScratch::new();
        self.hop_session_with(s, rng, &mut scratch)
    }

    /// One Alg. 1 HOP for session `s` under the **shared** FREEZE lock:
    /// candidates are weighed against the slot's placement and the
    /// ledger's residual snapshot (allocation-free via `scratch`), and a
    /// chosen migration commits through the ledger's checked
    /// [`try_swap`](CapacityLedger::try_swap) — losing a capacity race
    /// to a concurrent hop simply stays put. No-op for non-live
    /// sessions.
    pub fn hop_session_with<R: Rng + ?Sized>(
        &self,
        s: SessionId,
        rng: &mut R,
        scratch: &mut FleetHopScratch,
    ) -> HopOutcome {
        // Spans are sampled 1-in-16 (`timer_sampled`): at ~150k hops/s
        // even two clock reads per hop measurably dent throughput, and
        // percentiles over 1/16 of the stream are statistically the
        // same. The flight recorder still sees *every* hop — unsampled
        // ones carry the last sampled timestamp (`note_op_coarse`).
        // Warming the flight slot here overlaps the ring's cache miss
        // with the hop work instead of stalling the closing record.
        self.obs.warm_flight();
        let t0 = self.obs.timer_sampled();
        scratch.last_delta_phi = 0.0;
        scratch.last_swap_conflict = false;
        let outcome = self.hop_inner(s, rng, scratch);
        let (kind, a, b) = match outcome {
            HopOutcome::Migrated(d) => {
                let target = match d {
                    Decision::User(_, a) | Decision::Task(_, a) => a,
                };
                (OpKind::Hop, s.index() as u32, target.index() as u32)
            }
            HopOutcome::Stayed | HopOutcome::NoFeasibleMove => (OpKind::Stay, s.index() as u32, 0),
        };
        if let Some(t0) = t0 {
            self.obs.record_sampled(Site::Hop, t0, kind, a, b);
        } else {
            self.obs.note_op_coarse(kind, a, b);
        }
        // Lifecycle tracing stays off the common path: only committed
        // migrations and lost swaps emit, and both reuse the coarse
        // timestamp (no extra clock read per hop).
        match outcome {
            HopOutcome::Migrated(_) => self.obs.note_trace_coarse(
                TraceKind::HopCommitted,
                s.index() as u32,
                scratch.last_delta_phi.to_bits(),
            ),
            HopOutcome::Stayed if scratch.last_swap_conflict => self.obs.note_trace_coarse(
                TraceKind::SwapConflict,
                s.index() as u32,
                (s.index() % self.ledger.num_shards()) as u64,
            ),
            _ => {}
        }
        outcome
    }

    /// The hop proper (see [`hop_session_with`](Self::hop_session_with)).
    fn hop_inner<R: Rng + ?Sized>(
        &self,
        s: SessionId,
        rng: &mut R,
        scratch: &mut FleetHopScratch,
    ) -> HopOutcome {
        // FREEZE shared acquisition: the uncontended fast path is a
        // plain counter (no clock read); only a contended wait — a
        // coarse op holds the lock exclusively — is worth a histogram.
        let universe = match self.freeze.try_read() {
            Some(guard) => {
                self.obs.note_freeze_read_fast();
                guard
            }
            None => {
                let tw = self.obs.timer();
                let guard = self.freeze.read();
                self.obs.record_since(Site::FreezeRead, tw);
                guard
            }
        };
        let problem = &universe.problem;
        let mut slot = universe.slots[s.index()].lock();
        if !slot.active {
            return HopOutcome::NoFeasibleMove;
        }
        let inst = problem.instance();
        let nl = inst.num_agents();
        self.ledger.hop_residuals_into(&mut scratch.residuals);
        scratch.hop.decisions.clear();
        scratch.hop.phis.clear();
        let user_ids = inst.session(s).users();
        let task_ids = problem.tasks().of_session(s);
        for (i, &u) in user_ids.iter().enumerate() {
            let current = slot.users[i];
            for l in 0..nl {
                let l = AgentId::from(l);
                if l == current || !universe.available[l.index()] {
                    continue;
                }
                let d = Decision::User(u, l);
                if self.weigh_candidate(
                    problem,
                    &slot,
                    s,
                    d,
                    &mut scratch.hop.eval,
                    &scratch.residuals,
                ) {
                    scratch.hop.decisions.push(d);
                    scratch.hop.phis.push(scratch.hop.eval.load().phi);
                }
            }
        }
        for (i, &t) in task_ids.iter().enumerate() {
            let current = slot.tasks[i];
            for l in 0..nl {
                let l = AgentId::from(l);
                if l == current || !universe.available[l.index()] {
                    continue;
                }
                let d = Decision::Task(t, l);
                if self.weigh_candidate(
                    problem,
                    &slot,
                    s,
                    d,
                    &mut scratch.hop.eval,
                    &scratch.residuals,
                ) {
                    scratch.hop.decisions.push(d);
                    scratch.hop.phis.push(scratch.hop.eval.load().phi);
                }
            }
        }
        if scratch.hop.decisions.is_empty() {
            self.counters.stays.fetch_add(1, Ordering::Relaxed);
            self.note_stay();
            return HopOutcome::NoFeasibleMove;
        }
        let phi_now = self.engine.observe(slot.load.phi, rng);
        for phi in &mut scratch.hop.phis {
            *phi = self.engine.observe(*phi, rng);
        }
        let chosen = self.engine.gibbs_select(
            self.engine.config().beta,
            phi_now,
            &scratch.hop.phis,
            &mut scratch.hop.exponents,
            rng,
        );
        if chosen == 0 {
            self.counters.stays.fetch_add(1, Ordering::Relaxed);
            self.note_stay();
            return HopOutcome::Stayed;
        }
        let decision = scratch.hop.decisions[chosen - 1];
        {
            let base = slot_view(problem, s, &slot);
            let view = OverlayView::new(&base, decision);
            scratch.hop.eval.evaluate(problem, &view, s);
        }
        // Resolve the slot index once; it serves both the journaled
        // old assignment and the commit below.
        let (slot_idx, new_agent) = match decision {
            Decision::User(u, a) => (
                user_ids
                    .iter()
                    .position(|&w| w == u)
                    .expect("hopped user belongs to the session"),
                a,
            ),
            Decision::Task(t, a) => (
                task_ids
                    .iter()
                    .position(|&w| w == t)
                    .expect("hopped task belongs to the session"),
                a,
            ),
        };
        let old_agent = match decision {
            Decision::User(..) => slot.users[slot_idx],
            Decision::Task(..) => slot.tasks[slot_idx],
        };
        let swap = self
            .ledger
            .try_swap(s, SessionHold::from_load(scratch.hop.eval.load()));
        // Attempt/conflict counters keyed by session — no clock reads;
        // contention shows up as a conflict ratio, not a latency. The
        // plane masks the key onto its counter shards itself.
        self.obs.note_swap(s.index(), swap.is_err());
        match swap {
            Ok(()) => {
                match decision {
                    Decision::User(..) => slot.users[slot_idx] = new_agent,
                    Decision::Task(..) => slot.tasks[slot_idx] = new_agent,
                }
                scratch.last_delta_phi = scratch.hop.eval.load().phi - slot.load.phi;
                slot.load.clone_from(scratch.hop.eval.load());
                self.counters.migrations.fetch_add(1, Ordering::Relaxed);
                self.log_op(|| crate::persist::FleetOp::Hop {
                    session: s,
                    decision,
                    old_agent,
                });
                HopOutcome::Migrated(decision)
            }
            Err(_) => {
                // A concurrent hop consumed the capacity between the
                // residual snapshot and the commit — stay put.
                scratch.last_swap_conflict = true;
                self.counters.stays.fetch_add(1, Ordering::Relaxed);
                self.note_stay();
                HopOutcome::Stayed
            }
        }
    }

    /// Evaluates `decision` over `slot` into `eval` and checks
    /// feasibility: the delay bound plus, per *touched* agent only,
    /// `new − old ≤ residual` (the sparse mirror of the closed-world
    /// capacity check). Returns whether the candidate is feasible; the
    /// evaluated load stays in `eval` either way.
    fn weigh_candidate(
        &self,
        problem: &Arc<UapProblem>,
        slot: &SessionSlot,
        s: SessionId,
        decision: Decision,
        eval: &mut EvalScratch,
        residuals: &HopResiduals,
    ) -> bool {
        {
            let base = slot_view(problem, s, slot);
            let view = OverlayView::new(&base, decision);
            eval.evaluate(problem, &view, s);
        }
        let load = eval.load();
        if load.max_flow_delay > problem.instance().d_max_ms() + CAPACITY_EPS {
            return false;
        }
        let old = &slot.load;
        for &a in &load.touched {
            let i = a as usize;
            if load.download[i] - old.download[i] > residuals.download[i] + CAPACITY_EPS {
                return false;
            }
            if load.upload[i] - old.upload[i] > residuals.upload[i] + CAPACITY_EPS {
                return false;
            }
            if f64::from(load.transcode_units[i]) - f64::from(old.transcode_units[i])
                > residuals.transcode[i]
            {
                return false;
            }
        }
        true
    }

    /// Whether session `s` is live.
    pub fn is_live(&self, s: SessionId) -> bool {
        self.freeze.read().slots[s.index()].lock().active
    }

    /// Number of live sessions.
    pub fn live_count(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// One pass over the slots (under the shared FREEZE lock; per-slot
    /// consistency — the telemetry contract).
    pub(crate) fn metrics(&self) -> FleetMetrics {
        let u = self.freeze.read();
        let mut m = FleetMetrics::default();
        let mut delay_sum = 0.0;
        let mut users = 0usize;
        for slot in &u.slots {
            let slot = slot.lock();
            if !slot.active {
                continue;
            }
            m.live += 1;
            m.objective += slot.load.phi;
            m.traffic_mbps += slot.load.total_ingress_mbps();
            for d in &slot.load.user_delay {
                delay_sum += d;
                users += 1;
            }
        }
        m.mean_delay_ms = if users == 0 {
            0.0
        } else {
            delay_sum / users as f64
        };
        m
    }

    /// Global objective over live sessions (deterministic: ascending
    /// session order, so a recovered fleet reproduces it bitwise).
    pub fn objective(&self) -> f64 {
        let u = self.freeze.read();
        let mut sum = 0.0;
        for slot in &u.slots {
            let slot = slot.lock();
            if slot.active {
                sum += slot.load.phi;
            }
        }
        sum
    }

    /// Mean objective per live session (0 when idle) — the fleet-level
    /// quality figure reported by telemetry.
    pub fn mean_session_objective(&self) -> f64 {
        let m = self.metrics();
        if m.live == 0 {
            0.0
        } else {
            m.objective / m.live as f64
        }
    }

    /// Total inter-agent traffic (Mbps).
    pub fn total_traffic_mbps(&self) -> f64 {
        self.metrics().traffic_mbps
    }

    /// Mean conferencing delay over live users (ms).
    pub fn mean_delay_ms(&self) -> f64 {
        self.metrics().mean_delay_ms
    }

    /// Ids of the currently live sessions, ascending.
    pub fn live_sessions(&self) -> Vec<SessionId> {
        let u = self.freeze.read();
        u.problem
            .instance()
            .session_ids()
            .filter(|s| u.slots[s.index()].lock().active)
            .collect()
    }

    /// Materializes a full [`SystemState`] (assignment, active set,
    /// loads, availability) and runs `f` on it, under the FREEZE write
    /// lock. This re-evaluates every live session — an offline-analysis
    /// convenience, not a hot path.
    pub fn with_state<T>(&self, f: impl FnOnce(&SystemState) -> T) -> T {
        let u = self.freeze.write();
        let state = self.materialize_locked(&u);
        f(&state)
    }

    /// Scatters the per-session slots into global instance-indexed
    /// vectors: `(λ: user → agent, γ: task → agent, active mask)`.
    /// Caller holds the FREEZE write lock (or exclusive ownership of a
    /// fresh fleet). Shared by state materialization and the durable
    /// snapshot capture.
    pub(crate) fn global_placements_locked(
        &self,
        u: &Universe,
    ) -> (Vec<AgentId>, Vec<AgentId>, Vec<bool>) {
        let inst = u.problem.instance();
        let mut user_agents = vec![AgentId::new(0); inst.num_users()];
        let mut task_agents = vec![AgentId::new(0); u.problem.tasks().len()];
        let mut active = vec![false; inst.num_sessions()];
        for s in inst.session_ids() {
            let slot = u.slots[s.index()].lock();
            for (i, &w) in inst.session(s).users().iter().enumerate() {
                user_agents[w.index()] = slot.users[i];
            }
            for (i, &t) in u.problem.tasks().of_session(s).iter().enumerate() {
                task_agents[t.index()] = slot.tasks[i];
            }
            active[s.index()] = slot.active;
        }
        (user_agents, task_agents, active)
    }

    fn materialize_locked(&self, u: &Universe) -> SystemState {
        let (user_agents, task_agents, active) = self.global_placements_locked(u);
        let assignment = Assignment::new(&u.problem, user_agents, task_agents);
        let mut state = SystemState::with_active(u.problem.clone(), assignment, active);
        for l in u.problem.instance().agent_ids() {
            if !u.available[l.index()] {
                state.set_agent_available(l, false);
            }
        }
        state
    }

    /// Re-evaluates every live slot from scratch and returns the largest
    /// absolute discrepancy against the stored loads (then installs the
    /// fresh values). The standing self-check that the allocation-free
    /// scratch path and a cold evaluation agree.
    pub fn load_drift(&self) -> f64 {
        let u = self.freeze.write();
        let mut scratch = EvalScratch::new();
        let mut drift: f64 = 0.0;
        for s in u.problem.instance().session_ids() {
            let mut slot = u.slots[s.index()].lock();
            if !slot.active {
                continue;
            }
            {
                let view = slot_view(&u.problem, s, &slot);
                scratch.evaluate(&u.problem, &view, s);
            }
            let fresh = scratch.load();
            // Union of the two touched sets: stale load on an agent the
            // fresh evaluation does NOT touch must count as drift too
            // (duplicate visits are harmless for a max-of-abs).
            for &a in fresh.touched.iter().chain(slot.load.touched.iter()) {
                let i = a as usize;
                drift = drift.max((fresh.download[i] - slot.load.download[i]).abs());
                drift = drift.max((fresh.upload[i] - slot.load.upload[i]).abs());
            }
            drift = drift.max((fresh.phi - slot.load.phi).abs());
            slot.load.clone_from(fresh);
        }
        drift
    }

    /// Ledger-vs-state conservation audit (empty = conserved): per
    /// agent, booked reservations must equal the sum of live slot
    /// loads; holding sessions must equal the live set. Coarse path.
    pub fn audit(&self) -> Vec<String> {
        let u = self.freeze.write();
        self.audit_locked(&u)
    }

    pub(crate) fn audit_locked(&self, u: &Universe) -> Vec<String> {
        let mut totals = AgentTotals::zero(u.problem.instance().num_agents());
        let mut active = Vec::new();
        for s in u.problem.instance().session_ids() {
            let slot = u.slots[s.index()].lock();
            if slot.active {
                totals.add(&slot.load);
                active.push(s);
            }
        }
        self.ledger.audit_against_totals(&totals, &active)
    }

    /// Appends one journal record, building it lazily so ephemeral
    /// fleets pay nothing. Called with the mutated slot's lock (or the
    /// FREEZE write lock) held; all appends serialize on the journal
    /// mutex, whose sequence numbers are the fleet's global mutation
    /// order. A journal write failure is fail-stop: durability was
    /// promised and can no longer be provided.
    pub(crate) fn log_op(&self, op: impl FnOnce() -> crate::persist::FleetOp) {
        if let Some(p) = &self.persist {
            p.journal
                .lock()
                .append(&op())
                .expect("write-ahead journal append failed");
        }
    }

    /// Records a counter-only stay for the journal's batched
    /// `StayBatch` stream (no-op on ephemeral fleets). Batches flush at
    /// the configured threshold and at every durability boundary
    /// ([`commit_journal`](Fleet::commit_journal),
    /// [`checkpoint`](Fleet::checkpoint),
    /// [`durable_state`](Fleet::durable_state)).
    pub(crate) fn note_stay(&self) {
        if let Some(p) = &self.persist {
            let pending = self.pending_stays.fetch_add(1, Ordering::Relaxed) + 1;
            if pending >= p.stay_batch as u64 {
                self.flush_stays();
            }
        }
    }

    /// Flushes pending stays as one `StayBatch` journal record.
    pub(crate) fn flush_stays(&self) {
        if let Some(p) = &self.persist {
            let count = self.pending_stays.swap(0, Ordering::Relaxed);
            if count > 0 {
                p.journal
                    .lock()
                    .append(&crate::persist::FleetOp::StayBatch { count })
                    .expect("write-ahead journal append failed");
            }
        }
    }
}

/// [`SlotView`] over one slot under `problem` (free function: the
/// problem now lives inside the FREEZE lock, so helpers take it
/// explicitly instead of reading a fleet field).
fn slot_view<'a>(problem: &'a UapProblem, s: SessionId, slot: &'a SessionSlot) -> SlotView<'a> {
    SlotView {
        user_ids: problem.instance().session(s).users(),
        task_ids: problem.tasks().of_session(s),
        slot,
    }
}

/// Completes a user placement with the transcoding rule of thumb
/// (session-scoped: admission must not pay a whole-instance pass).
fn with_tasks(problem: &Arc<UapProblem>, s: SessionId, users: Vec<(UserId, AgentId)>) -> Placement {
    let tasks = placement::rule_of_thumb_session(problem, s, &users);
    (users, tasks)
}

/// Writes a full (or partial) placement into the slot's vectors,
/// resolving each id to its slot index.
pub(crate) fn install_placement(
    problem: &UapProblem,
    slot: &mut SessionSlot,
    s: SessionId,
    users: &[(UserId, AgentId)],
    tasks: &[(TaskId, AgentId)],
) {
    let user_ids = problem.instance().session(s).users();
    for &(u, a) in users {
        let i = user_ids
            .iter()
            .position(|&w| w == u)
            .expect("placed user belongs to the session");
        slot.users[i] = a;
    }
    let task_ids = problem.tasks().of_session(s);
    for &(t, a) in tasks {
        let i = task_ids
            .iter()
            .position(|&w| w == t)
            .expect("placed task belongs to the session");
        slot.tasks[i] = a;
    }
}

/// Writes `decision` into the slot's placement vectors.
pub(crate) fn apply_to_slot(
    problem: &UapProblem,
    slot: &mut SessionSlot,
    s: SessionId,
    decision: Decision,
) {
    match decision {
        Decision::User(u, a) => {
            let i = problem
                .instance()
                .session(s)
                .users()
                .iter()
                .position(|&w| w == u)
                .expect("moved user belongs to the session");
            slot.users[i] = a;
        }
        Decision::Task(t, a) => {
            let i = problem
                .tasks()
                .of_session(s)
                .iter()
                .position(|&w| w == t)
                .expect("moved task belongs to the session");
            slot.tasks[i] = a;
        }
    }
}

/// The full placement of session `s` (its slot's current assignment),
/// in instance order — the shape the persistence layer journals for an
/// admission.
pub(crate) fn placement_of_slot(
    problem: &UapProblem,
    s: SessionId,
    slot: &SessionSlot,
) -> Placement {
    let users = problem
        .instance()
        .session(s)
        .users()
        .iter()
        .zip(&slot.users)
        .map(|(&u, &a)| (u, a))
        .collect();
    let tasks = problem
        .tasks()
        .of_session(s)
        .iter()
        .zip(&slot.tasks)
        .map(|(&t, &a)| (t, a))
        .collect();
    (users, tasks)
}

/// FNV-1a over a slot's committed placement (user agents then task
/// agents, in slot order) — the `Admitted` lifecycle event's payload.
/// Two admissions that land the identical placement hash identically,
/// across processes and restarts.
pub(crate) fn placement_hash(slot: &SessionSlot) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &a in slot.users.iter().chain(slot.tasks.iter()) {
        h = (h ^ a.index() as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Evaluates `slot`'s current placement for session `s` into `scratch`
/// (recovery/replay helper).
pub(crate) fn evaluate_slot<'a>(
    problem: &UapProblem,
    s: SessionId,
    slot: &SessionSlot,
    scratch: &'a mut EvalScratch,
) -> &'a SessionLoad {
    let view = slot_view(problem, s, slot);
    scratch.evaluate(problem, &view, s)
}

/// `d` with its target replaced by `l`.
fn redirect(d: Decision, l: AgentId) -> Decision {
    match d {
        Decision::User(u, _) => Decision::User(u, l),
        Decision::Task(t, _) => Decision::Task(t, l),
    }
}

/// The full placement of one session under `state`'s assignment:
/// `(user → agent, task → agent)`, in instance order — the shape the
/// persistence layer journals for an admission and what replay
/// re-installs.
pub fn placement_of(state: &SystemState, s: SessionId) -> Placement {
    let problem = state.problem();
    let users = problem
        .instance()
        .session(s)
        .users()
        .iter()
        .map(|&u| (u, state.assignment().agent_of_user(u)))
        .collect();
    let tasks = problem
        .tasks()
        .of_session(s)
        .iter()
        .map(|&t| (t, state.assignment().agent_of_task(t)))
        .collect();
    (users, tasks)
}
