//! The fleet: admission, departure, failure handling, and hop execution
//! over one shared `SystemState` + [`CapacityLedger`] pair.
//!
//! The `SystemState` (behind the FREEZE lock) is the *authoritative*
//! assignment and load accounting; the ledger is the *contended*
//! capacity view that admissions race on and telemetry reads without
//! blocking migrations. Every mutation keeps the two in lock-step:
//! [`Fleet::audit`] must always come back clean.

use crate::ledger::{CapacityLedger, LedgerError, SessionHold};
use parking_lot::Mutex;
use rand::Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use vc_algo::agrank::{self, AgRankConfig};
use vc_algo::churn::evacuate_agent;
use vc_algo::markov::{Alg1Config, Alg1Engine, HopOutcome};
use vc_algo::placement;
use vc_core::{Assignment, SystemState, TaskId, UapProblem};
use vc_model::{AgentId, SessionId, UserId};

/// One candidate placement: session users and tasks to agents.
pub type Placement = (Vec<(UserId, AgentId)>, Vec<(TaskId, AgentId)>);

/// How arriving sessions are placed.
#[derive(Debug, Clone)]
pub enum PlacementPolicy {
    /// Nearest agent per user (the Airlift/vSkyConf rule) — resource-
    /// oblivious, no fallback.
    Nearest,
    /// AgRank bootstrap (Alg. 2) against the ledger's live residuals,
    /// falling back through each user's ranked candidates.
    AgRank(AgRankConfig),
}

/// Fleet configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Placement at admission.
    pub placement: PlacementPolicy,
    /// Alg. 1 parameters for the re-optimization workers.
    pub alg1: Alg1Config,
    /// Ledger shard count (clamped to the agent count).
    pub ledger_shards: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            placement: PlacementPolicy::AgRank(AgRankConfig::paper(3)),
            alg1: Alg1Config::default(),
            ledger_shards: 8,
        }
    }
}

/// Why a session was not admitted.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmitError {
    /// The session is already live.
    AlreadyLive(SessionId),
    /// No placement satisfied the ledger (last refusal attached).
    NoCapacity(LedgerError),
    /// The placement satisfied capacities but broke the delay bound.
    DelayBound {
        /// Worst flow delay of the attempted placement (ms).
        delay_ms: f64,
        /// The instance's `Dmax` (ms).
        bound_ms: f64,
    },
}

/// Running totals of control-plane activity (all monotone counters).
#[derive(Debug, Default)]
pub struct FleetCounters {
    /// Sessions admitted.
    pub admitted: AtomicUsize,
    /// Admission attempts refused.
    pub rejected: AtomicUsize,
    /// Sessions departed.
    pub departed: AtomicUsize,
    /// Successful HOP migrations.
    pub migrations: AtomicUsize,
    /// HOPs that stayed put (including no-feasible-move).
    pub stays: AtomicUsize,
    /// Evacuation moves applied on agent failures.
    pub evacuations: AtomicUsize,
    /// Evacuation moves that were *forced* (no feasible target existed —
    /// capacity may be overshot until re-optimization drains it).
    pub forced_moves: AtomicUsize,
}

impl FleetCounters {
    /// Admission success rate over all attempts so far (1.0 when idle).
    pub fn admission_success_rate(&self) -> f64 {
        let ok = self.admitted.load(Ordering::Relaxed);
        let no = self.rejected.load(Ordering::Relaxed);
        if ok + no == 0 {
            1.0
        } else {
            ok as f64 / (ok + no) as f64
        }
    }
}

/// The multi-session control plane. See the module docs.
#[derive(Debug)]
pub struct Fleet {
    pub(crate) problem: Arc<UapProblem>,
    /// The FREEZE lock: every assignment mutation serializes here.
    pub(crate) state: Mutex<SystemState>,
    pub(crate) ledger: CapacityLedger,
    pub(crate) engine: Alg1Engine,
    pub(crate) config: FleetConfig,
    pub(crate) counters: FleetCounters,
    /// Write-ahead journal sink; `None` runs the fleet ephemeral.
    /// Every hook below fires while the FREEZE lock is held, so journal
    /// order equals the serialization order of the mutations.
    pub(crate) persist: Option<crate::persist::FleetPersistence>,
}

impl Fleet {
    /// Creates a fleet over `problem` with **no** live sessions: every
    /// session of the instance is a *potential* conference that may
    /// arrive later.
    pub fn new(problem: Arc<UapProblem>, config: FleetConfig) -> Self {
        let num_sessions = problem.instance().num_sessions();
        let initial = Assignment::all_to_agent(&problem, AgentId::new(0));
        let state = SystemState::with_active(problem.clone(), initial, vec![false; num_sessions]);
        let ledger = CapacityLedger::new(&problem, config.ledger_shards);
        Self {
            problem,
            state: Mutex::new(state),
            ledger,
            engine: Alg1Engine::new(config.alg1.clone()),
            config,
            counters: FleetCounters::default(),
            persist: None,
        }
    }

    /// The underlying problem.
    pub fn problem(&self) -> &Arc<UapProblem> {
        &self.problem
    }

    /// The shared capacity ledger.
    pub fn ledger(&self) -> &CapacityLedger {
        &self.ledger
    }

    /// Control-plane counters.
    pub fn counters(&self) -> &FleetCounters {
        &self.counters
    }

    /// The configured Alg. 1 engine (workers draw countdowns from it).
    pub fn engine(&self) -> &Alg1Engine {
        &self.engine
    }

    /// Admits session `s`: bootstrap placement (per the configured
    /// policy), atomic ledger reservation, activation. On any refusal
    /// the fleet is left exactly as before.
    ///
    /// # Errors
    ///
    /// See [`AdmitError`].
    pub fn admit(&self, s: SessionId) -> Result<(), AdmitError> {
        let mut state = self.state.lock();
        if state.is_active(s) {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            self.log_op(|| crate::persist::FleetOp::Reject { session: s });
            return Err(AdmitError::AlreadyLive(s));
        }
        let inst = self.problem.instance();
        let result = match &self.config.placement {
            PlacementPolicy::Nearest => {
                let users: Vec<(UserId, AgentId)> = inst
                    .session(s)
                    .users()
                    .iter()
                    .map(|&u| (u, inst.delays().nearest_agent(u)))
                    .collect();
                let (users, tasks) = self.with_tasks(s, users);
                self.try_placement(&mut state, s, users, tasks)
            }
            PlacementPolicy::AgRank(config) => {
                let residuals = self.ledger.residuals();
                let sa = agrank::assign_session(&self.problem, s, &residuals, config);
                // First choice reuses the bootstrap's own task placement.
                let mut outcome =
                    self.try_placement(&mut state, s, sa.users.clone(), sa.tasks.clone());
                if outcome.is_err() {
                    // Fallbacks, built lazily only after a refusal: walk
                    // each user one step down its ranked candidate list
                    // (bounded; full combinatorial search is admission's
                    // offline job, not the control plane's).
                    'search: for (i, (u, _)) in sa.users.iter().enumerate() {
                        for &alt in sa.ranking.candidates_of(*u).iter().skip(1) {
                            let mut users = sa.users.clone();
                            users[i] = (*u, alt);
                            let (users, tasks) = self.with_tasks(s, users);
                            match self.try_placement(&mut state, s, users, tasks) {
                                Ok(()) => {
                                    outcome = Ok(());
                                    break 'search;
                                }
                                refused => outcome = refused,
                            }
                        }
                    }
                }
                outcome
            }
        };
        match result {
            Ok(()) => {
                self.counters.admitted.fetch_add(1, Ordering::Relaxed);
                self.log_op(|| {
                    let (users, tasks) = placement_of(&state, s);
                    crate::persist::FleetOp::Admit {
                        session: s,
                        users,
                        tasks,
                    }
                });
            }
            Err(_) => {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                self.log_op(|| crate::persist::FleetOp::Reject { session: s });
            }
        };
        result
    }

    /// Tries one placement: activate, check the delay bound, reserve in
    /// the ledger. On refusal the state is rolled back exactly —
    /// including the session's (inert) assignment, which otherwise
    /// would keep the refused placement and make a crashed fleet's
    /// state diverge from what journal replay (which only logs the
    /// refusal, not the attempted placement) reconstructs.
    fn try_placement(
        &self,
        state: &mut SystemState,
        s: SessionId,
        users: Vec<(UserId, AgentId)>,
        tasks: Vec<(TaskId, AgentId)>,
    ) -> Result<(), AdmitError> {
        let prior = placement_of(state, s);
        state.reassign_session(s, &users, &tasks);
        state.activate(s);
        let rollback = |state: &mut SystemState| {
            state.deactivate(s);
            state.reassign_session(s, &prior.0, &prior.1);
        };
        let load = state.session_load(s);
        let bound = self.problem.instance().d_max_ms();
        if load.max_flow_delay > bound + 1e-6 {
            let refusal = AdmitError::DelayBound {
                delay_ms: load.max_flow_delay,
                bound_ms: bound,
            };
            rollback(state);
            return Err(refusal);
        }
        match self.ledger.try_reserve(s, SessionHold::from_load(load)) {
            Ok(()) => Ok(()),
            Err(e) => {
                rollback(state);
                Err(AdmitError::NoCapacity(e))
            }
        }
    }

    /// Completes a user placement with the transcoding rule of thumb
    /// (session-scoped: admission must not pay a whole-instance pass).
    fn with_tasks(&self, s: SessionId, users: Vec<(UserId, AgentId)>) -> Placement {
        let tasks = placement::rule_of_thumb_session(&self.problem, s, &users);
        (users, tasks)
    }

    /// Departs session `s`, releasing exactly what it reserved. Returns
    /// the released hold (`None` if the session was not live).
    pub fn depart(&self, s: SessionId) -> Option<SessionHold> {
        let mut state = self.state.lock();
        if !state.is_active(s) {
            return None;
        }
        state.deactivate(s);
        let hold = self
            .ledger
            .release(s)
            .expect("live session holds a reservation");
        self.counters.departed.fetch_add(1, Ordering::Relaxed);
        self.log_op(|| crate::persist::FleetOp::Depart { session: s });
        Some(hold)
    }

    /// Fails `agent`: the ledger stops taking reservations on it, and
    /// every stranded user/task of a live session is evacuated
    /// immediately (via `vc-algo`'s churn module), with the ledger
    /// re-synced for every session the evacuation touched. Returns
    /// `(moves, forced)`.
    pub fn fail_agent(&self, agent: AgentId) -> (usize, usize) {
        let mut state = self.state.lock();
        self.ledger.fail_agent(agent);
        let report = evacuate_agent(&mut state, agent);
        let mut touched: Vec<SessionId> =
            report.moves.iter().map(|&d| state.session_of(d)).collect();
        touched.sort_unstable();
        touched.dedup();
        for s in touched {
            self.ledger
                .force_swap(s, SessionHold::from_load(state.session_load(s)))
                .expect("evacuated session holds a reservation");
        }
        self.counters
            .evacuations
            .fetch_add(report.moves.len(), Ordering::Relaxed);
        self.counters
            .forced_moves
            .fetch_add(report.forced, Ordering::Relaxed);
        // Evacuation is deterministic given the state, so the journal
        // records the *cause*; replay re-runs the same evacuation.
        self.log_op(|| crate::persist::FleetOp::FailAgent { agent });
        (report.moves.len(), report.forced)
    }

    /// Brings a failed agent back; Alg. 1 hops will migrate load onto it
    /// again as the Gibbs weights dictate.
    pub fn restore_agent(&self, agent: AgentId) {
        let mut state = self.state.lock();
        self.ledger.restore_agent(agent);
        state.set_agent_available(agent, true);
        self.log_op(|| crate::persist::FleetOp::RestoreAgent { agent });
    }

    /// One Alg. 1 HOP for session `s` under the FREEZE lock, mirroring
    /// any migration into the ledger. No-op for non-live sessions.
    pub fn hop_session<R: Rng + ?Sized>(&self, s: SessionId, rng: &mut R) -> HopOutcome {
        let mut state = self.state.lock();
        if !state.is_active(s) {
            return HopOutcome::NoFeasibleMove;
        }
        // Journaling needs the pre-hop placement to name the decision's
        // old assignment; capture it (session-scoped, a handful of
        // entries) only when a journal is attached.
        let before = self.persist.as_ref().map(|_| placement_of(&state, s));
        let outcome = self.engine.hop(&mut state, s, rng);
        match outcome {
            HopOutcome::Migrated(decision) => {
                self.ledger
                    .force_swap(s, SessionHold::from_load(state.session_load(s)))
                    .expect("live session holds a reservation");
                self.counters.migrations.fetch_add(1, Ordering::Relaxed);
                self.log_op(|| {
                    let (users, tasks) = before.expect("captured before the hop");
                    let old_agent = match decision {
                        vc_core::Decision::User(u, _) => {
                            users
                                .iter()
                                .find(|(user, _)| *user == u)
                                .expect("hopped user belongs to the session")
                                .1
                        }
                        vc_core::Decision::Task(t, _) => {
                            tasks
                                .iter()
                                .find(|(task, _)| *task == t)
                                .expect("hopped task belongs to the session")
                                .1
                        }
                    };
                    crate::persist::FleetOp::Hop {
                        session: s,
                        decision,
                        old_agent,
                    }
                });
            }
            HopOutcome::Stayed | HopOutcome::NoFeasibleMove => {
                self.counters.stays.fetch_add(1, Ordering::Relaxed);
                self.log_op(|| crate::persist::FleetOp::Stay { session: s });
            }
        }
        outcome
    }

    /// Whether session `s` is live.
    pub fn is_live(&self, s: SessionId) -> bool {
        self.state.lock().is_active(s)
    }

    /// Number of live sessions.
    pub fn live_count(&self) -> usize {
        self.state.lock().active_sessions().count()
    }

    /// Global objective over live sessions.
    pub fn objective(&self) -> f64 {
        self.state.lock().objective()
    }

    /// Mean objective per live session (0 when idle) — the fleet-level
    /// quality figure reported by telemetry.
    pub fn mean_session_objective(&self) -> f64 {
        let state = self.state.lock();
        let n = state.active_sessions().count();
        if n == 0 {
            0.0
        } else {
            state.objective() / n as f64
        }
    }

    /// Total inter-agent traffic (Mbps).
    pub fn total_traffic_mbps(&self) -> f64 {
        self.state.lock().total_traffic_mbps()
    }

    /// Mean conferencing delay over live users (ms).
    pub fn mean_delay_ms(&self) -> f64 {
        self.state.lock().mean_delay_ms()
    }

    /// Runs `f` on the authoritative state under the FREEZE lock (for
    /// callers needing a consistent multi-metric read).
    pub fn with_state<T>(&self, f: impl FnOnce(&SystemState) -> T) -> T {
        f(&self.state.lock())
    }

    /// Ledger-vs-state conservation audit (empty = conserved).
    pub fn audit(&self) -> Vec<String> {
        let state = self.state.lock();
        self.ledger.audit_against(&state)
    }

    /// Appends one journal record, building it lazily so ephemeral
    /// fleets pay nothing. Called with the FREEZE lock held, which
    /// makes the journal a faithful serialization of the mutation
    /// history. A journal write failure is fail-stop: durability was
    /// promised and can no longer be provided.
    pub(crate) fn log_op(&self, op: impl FnOnce() -> crate::persist::FleetOp) {
        if let Some(p) = &self.persist {
            p.journal
                .lock()
                .append(&op())
                .expect("write-ahead journal append failed");
        }
    }
}

/// The full placement of one session under `state`'s assignment:
/// `(user → agent, task → agent)`, in instance order — the shape the
/// persistence layer journals for an admission and what replay
/// re-installs.
pub fn placement_of(state: &SystemState, s: SessionId) -> Placement {
    let problem = state.problem();
    let users = problem
        .instance()
        .session(s)
        .users()
        .iter()
        .map(|&u| (u, state.assignment().agent_of_user(u)))
        .collect();
    let tasks = problem
        .tasks()
        .of_session(s)
        .iter()
        .map(|&t| (t, state.assignment().agent_of_task(t)))
        .collect();
    (users, tasks)
}
