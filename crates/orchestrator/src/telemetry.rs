//! Fleet telemetry: periodic snapshots and time series.
//!
//! Series use `vc-sim`'s [`TimeSeries`] so fleet runs drop into the
//! existing experiment plumbing (`vc-bench`'s table printers, figure
//! regeneration) unchanged.

use crate::fleet::Fleet;
use crate::workers::ReoptPool;
use std::sync::atomic::Ordering;
use vc_obs::{Watchdog, WatchdogFire};
use vc_sim::metrics::TimeSeries;

/// Fleet-level gauges in Prometheus text exposition format — the
/// `extra` closure for [`vc_obs::ObsServer`], so `/metrics` serves the
/// control-plane state next to the plane's own latency series.
pub fn fleet_metrics_text(fleet: &Fleet) -> String {
    let m = fleet.metrics();
    let c = fleet.counters();
    let load = |a: &std::sync::atomic::AtomicUsize| a.load(Ordering::Relaxed);
    let mut out = String::with_capacity(512);
    out.push_str("# TYPE vc_fleet_live_sessions gauge\n");
    out.push_str(&format!("vc_fleet_live_sessions {}\n", m.live));
    out.push_str("# TYPE vc_fleet_objective gauge\n");
    out.push_str(&format!("vc_fleet_objective {:.6}\n", m.objective));
    out.push_str("# TYPE vc_fleet_traffic_mbps gauge\n");
    out.push_str(&format!("vc_fleet_traffic_mbps {:.6}\n", m.traffic_mbps));
    out.push_str("# TYPE vc_fleet_mean_delay_ms gauge\n");
    out.push_str(&format!("vc_fleet_mean_delay_ms {:.6}\n", m.mean_delay_ms));
    out.push_str("# TYPE vc_fleet_admitted counter\n");
    out.push_str(&format!("vc_fleet_admitted {}\n", load(&c.admitted)));
    out.push_str("# TYPE vc_fleet_rejected counter\n");
    out.push_str(&format!("vc_fleet_rejected {}\n", load(&c.rejected)));
    out.push_str("# TYPE vc_fleet_departed counter\n");
    out.push_str(&format!("vc_fleet_departed {}\n", load(&c.departed)));
    out.push_str("# TYPE vc_fleet_migrations counter\n");
    out.push_str(&format!("vc_fleet_migrations {}\n", load(&c.migrations)));
    out.push_str("# TYPE vc_fleet_admission_success_rate gauge\n");
    out.push_str(&format!(
        "vc_fleet_admission_success_rate {:.6}\n",
        c.admission_success_rate()
    ));
    out.push_str("# TYPE vc_fleet_overshoot_fraction gauge\n");
    out.push_str(&format!(
        "vc_fleet_overshoot_fraction {:.6}\n",
        fleet.ledger().max_overshoot_fraction()
    ));
    out.push_str("# TYPE vc_fleet_displaced counter\n");
    out.push_str(&format!("vc_fleet_displaced {}\n", load(&c.displaced)));
    out.push_str("# TYPE vc_fleet_readmit_queued gauge\n");
    out.push_str(&format!(
        "vc_fleet_readmit_queued {}\n",
        fleet.readmit_queue_len()
    ));
    out.push_str("# TYPE vc_fleet_durability_degraded gauge\n");
    out.push_str(&format!(
        "vc_fleet_durability_degraded {}\n",
        u8::from(fleet.durability_degraded())
    ));
    // Per-region residual/occupancy gauges (elastic capacity). Inf is
    // Prometheus' `+Inf` — unlimited agents sum to an infinite residual.
    let prom = |v: f64| {
        if v == f64::INFINITY {
            "+Inf".to_string()
        } else {
            format!("{v:.6}")
        }
    };
    let regions = fleet.ledger().region_residuals();
    out.push_str("# TYPE vc_region_agents gauge\n");
    for r in &regions {
        out.push_str(&format!(
            "vc_region_agents{{region=\"{}\"}} {}\n",
            r.name, r.agents
        ));
    }
    out.push_str("# TYPE vc_region_available_agents gauge\n");
    for r in &regions {
        out.push_str(&format!(
            "vc_region_available_agents{{region=\"{}\"}} {}\n",
            r.name, r.available_agents
        ));
    }
    out.push_str("# TYPE vc_region_residual_download_mbps gauge\n");
    for r in &regions {
        out.push_str(&format!(
            "vc_region_residual_download_mbps{{region=\"{}\"}} {}\n",
            r.name,
            prom(r.download_mbps)
        ));
    }
    out.push_str("# TYPE vc_region_residual_upload_mbps gauge\n");
    for r in &regions {
        out.push_str(&format!(
            "vc_region_residual_upload_mbps{{region=\"{}\"}} {}\n",
            r.name,
            prom(r.upload_mbps)
        ));
    }
    out.push_str("# TYPE vc_region_reserved_download_mbps gauge\n");
    for r in &regions {
        out.push_str(&format!(
            "vc_region_reserved_download_mbps{{region=\"{}\"}} {}\n",
            r.name,
            prom(r.reserved_download_mbps)
        ));
    }
    out.push_str("# TYPE vc_region_reserved_upload_mbps gauge\n");
    for r in &regions {
        out.push_str(&format!(
            "vc_region_reserved_upload_mbps{{region=\"{}\"}} {}\n",
            r.name,
            prom(r.reserved_upload_mbps)
        ));
    }
    let (prepares, commits, aborts) = fleet.ledger().cross_region_counters();
    out.push_str("# TYPE vc_region_cross_prepares counter\n");
    out.push_str(&format!("vc_region_cross_prepares {prepares}\n"));
    out.push_str("# TYPE vc_region_cross_commits counter\n");
    out.push_str(&format!("vc_region_cross_commits {commits}\n"));
    out.push_str("# TYPE vc_region_cross_aborts counter\n");
    out.push_str(&format!("vc_region_cross_aborts {aborts}\n"));
    out
}

/// Wakeup-scheduler gauges in Prometheus text exposition format —
/// append to [`fleet_metrics_text`]'s output in a `/metrics` closure
/// so the sharded wheel's health (stale backlog, per-shard depth, lock
/// contention) is scrapeable next to the fleet state.
pub fn sched_metrics_text(pool: &ReoptPool) -> String {
    let mut out = String::with_capacity(512);
    out.push_str("# TYPE vc_sched_shards gauge\n");
    out.push_str(&format!("vc_sched_shards {}\n", pool.num_shards()));
    out.push_str("# TYPE vc_sched_stale_entries gauge\n");
    out.push_str(&format!(
        "vc_sched_stale_entries {}\n",
        pool.stale_entries()
    ));
    out.push_str("# TYPE vc_sched_stale_reclaimed counter\n");
    out.push_str(&format!(
        "vc_sched_stale_reclaimed {}\n",
        pool.stale_reclaimed()
    ));
    out.push_str("# TYPE vc_sched_depth gauge\n");
    for (i, depth) in pool.shard_depths().into_iter().enumerate() {
        out.push_str(&format!("vc_sched_depth{{shard=\"{i}\"}} {depth}\n"));
    }
    let counters = pool.shard_lock_counters();
    out.push_str("# TYPE vc_sched_lock_acquires counter\n");
    out.push_str(&format!(
        "vc_sched_lock_acquires {}\n",
        counters.iter().map(|&(a, _)| a).sum::<u64>()
    ));
    out.push_str("# TYPE vc_sched_lock_conflicts counter\n");
    out.push_str(&format!(
        "vc_sched_lock_conflicts {}\n",
        counters.iter().map(|&(_, c)| c).sum::<u64>()
    ));
    out
}

/// One periodic observation of the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSnapshot {
    /// Virtual time of the sample (s).
    pub time_s: f64,
    /// Registered sessions in the universe (seed + online-registered;
    /// live sessions are a subset).
    pub universe_sessions: usize,
    /// Registered users in the universe.
    pub universe_users: usize,
    /// Live session count.
    pub live_sessions: usize,
    /// Global objective `Σ_s Φ_s`.
    pub objective: f64,
    /// Mean objective per live session.
    pub mean_session_objective: f64,
    /// Total inter-agent traffic (Mbps).
    pub traffic_mbps: f64,
    /// Mean conferencing delay over live users (ms).
    pub mean_delay_ms: f64,
    /// Mean of per-agent max-fraction utilizations (capacity-limited
    /// agents only contribute meaningfully; unlimited ones read 0).
    pub mean_utilization: f64,
    /// Largest per-agent utilization fraction.
    pub max_utilization: f64,
    /// Sessions admitted so far.
    pub admitted: usize,
    /// Admissions refused so far.
    pub rejected: usize,
    /// Sessions departed so far.
    pub departed: usize,
    /// HOP migrations so far.
    pub migrations: usize,
    /// Admission success rate so far.
    pub admission_success_rate: f64,
    /// Total admission attempts so far (admitted + rejected).
    pub admission_attempts: usize,
    /// Admissions the engine's enumeration tier placed.
    pub admitted_enumeration: usize,
    /// Admissions greedy + violation-driven repair placed.
    pub admitted_repair: usize,
    /// Admissions the ranked-fallback tier placed (every legacy-mode
    /// admission counts here).
    pub admitted_fallback: usize,
    /// Violation-driven repair moves applied across all admissions.
    pub admission_repair_steps: usize,
    /// Refusals at the user-placement stage.
    pub refused_user_fit: usize,
    /// Refusals at the transcoding-placement stage.
    pub refused_task_fit: usize,
    /// Refusals at the global feasibility check (legacy capacity/delay
    /// refusals included).
    pub refused_global: usize,
    /// Ledger-conservation discrepancies at sample time (must be 0).
    pub conservation_violations: usize,
    /// Worst per-agent capacity overshoot past 1.0 (0 when every agent
    /// is within capacity) — the un-healed displacement debt gauge.
    pub overshoot_fraction: f64,
    /// Sessions displaced by forced evacuations so far.
    pub displaced: usize,
    /// Sessions currently waiting in the re-admission queue.
    pub readmit_queued: usize,
    /// Whether the journal is running buffered-degraded (fsync retries
    /// exhausted; events held in memory until healed).
    pub durability_degraded: bool,
}

/// Accumulates snapshots and the derived time series — one series per
/// [`FleetSnapshot`] field, so any fleet metric (including a
/// recovered-vs-original diff) drops into the existing table printers,
/// and a [CSV export](FleetTelemetry::to_csv) for offline analysis.
#[derive(Debug, Default)]
pub struct FleetTelemetry {
    snapshots: Vec<FleetSnapshot>,
    universe_sessions: TimeSeries,
    universe_users: TimeSeries,
    objective: TimeSeries,
    mean_session_objective: TimeSeries,
    traffic: TimeSeries,
    mean_delay: TimeSeries,
    live_sessions: TimeSeries,
    mean_utilization: TimeSeries,
    max_utilization: TimeSeries,
    admitted: TimeSeries,
    rejected: TimeSeries,
    departed: TimeSeries,
    migrations: TimeSeries,
    admission_success_rate: TimeSeries,
    admission_attempts: TimeSeries,
    admitted_enumeration: TimeSeries,
    admitted_repair: TimeSeries,
    admitted_fallback: TimeSeries,
    admission_repair_steps: TimeSeries,
    refused_user_fit: TimeSeries,
    refused_task_fit: TimeSeries,
    refused_global: TimeSeries,
    conservation_violations: TimeSeries,
    overshoot_fraction: TimeSeries,
    displaced: TimeSeries,
    readmit_queued: TimeSeries,
    durability_degraded: TimeSeries,
}

impl FleetTelemetry {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Samples the fleet at virtual time `t_s`, recording and returning
    /// the snapshot. Runs the conservation audit — the control plane's
    /// standing self-check.
    pub fn sample(&mut self, fleet: &Fleet, t_s: f64) -> FleetSnapshot {
        let m = fleet.metrics();
        let (live, objective, traffic, delay) =
            (m.live, m.objective, m.traffic_mbps, m.mean_delay_ms);
        let util = fleet.ledger().utilization();
        let fractions: Vec<f64> = util.iter().map(|u| u.max_fraction).collect();
        let mean_util = if fractions.is_empty() {
            0.0
        } else {
            fractions.iter().sum::<f64>() / fractions.len() as f64
        };
        let max_util = fractions.iter().copied().fold(0.0f64, f64::max);
        let (universe_sessions, universe_users) = fleet.universe_size();
        let audit = fleet.audit();
        if !audit.is_empty() {
            // Conservation violated: dump the flight-recorder post-mortem
            // (once per plane) before anyone asserts on the snapshot.
            fleet
                .obs()
                .post_mortem_once("conservation_violation", &audit[0]);
        }
        let c = fleet.counters();
        let load = |a: &std::sync::atomic::AtomicUsize| a.load(Ordering::Relaxed);
        let snapshot = FleetSnapshot {
            time_s: t_s,
            universe_sessions,
            universe_users,
            live_sessions: live,
            objective,
            mean_session_objective: if live == 0 {
                0.0
            } else {
                objective / live as f64
            },
            traffic_mbps: traffic,
            mean_delay_ms: delay,
            mean_utilization: mean_util,
            max_utilization: max_util,
            admitted: load(&c.admitted),
            rejected: load(&c.rejected),
            departed: load(&c.departed),
            migrations: load(&c.migrations),
            admission_success_rate: c.admission_success_rate(),
            admission_attempts: load(&c.admitted) + load(&c.rejected),
            admitted_enumeration: load(&c.admitted_enumeration),
            admitted_repair: load(&c.admitted_repair),
            admitted_fallback: load(&c.admitted_fallback),
            admission_repair_steps: load(&c.repair_steps),
            refused_user_fit: load(&c.refused_user_fit),
            refused_task_fit: load(&c.refused_task_fit),
            refused_global: load(&c.refused_global),
            conservation_violations: audit.len(),
            overshoot_fraction: fractions
                .iter()
                .map(|f| (f - 1.0).max(0.0))
                .fold(0.0, f64::max),
            displaced: load(&c.displaced),
            readmit_queued: fleet.readmit_queue_len(),
            durability_degraded: fleet.durability_degraded(),
        };
        self.universe_sessions
            .push(t_s, snapshot.universe_sessions as f64);
        self.universe_users
            .push(t_s, snapshot.universe_users as f64);
        self.objective.push(t_s, snapshot.objective);
        self.mean_session_objective
            .push(t_s, snapshot.mean_session_objective);
        self.traffic.push(t_s, snapshot.traffic_mbps);
        self.mean_delay.push(t_s, snapshot.mean_delay_ms);
        self.live_sessions.push(t_s, live as f64);
        self.mean_utilization.push(t_s, snapshot.mean_utilization);
        self.max_utilization.push(t_s, snapshot.max_utilization);
        self.admitted.push(t_s, snapshot.admitted as f64);
        self.rejected.push(t_s, snapshot.rejected as f64);
        self.departed.push(t_s, snapshot.departed as f64);
        self.migrations.push(t_s, snapshot.migrations as f64);
        self.admission_success_rate
            .push(t_s, snapshot.admission_success_rate);
        self.admission_attempts
            .push(t_s, snapshot.admission_attempts as f64);
        self.admitted_enumeration
            .push(t_s, snapshot.admitted_enumeration as f64);
        self.admitted_repair
            .push(t_s, snapshot.admitted_repair as f64);
        self.admitted_fallback
            .push(t_s, snapshot.admitted_fallback as f64);
        self.admission_repair_steps
            .push(t_s, snapshot.admission_repair_steps as f64);
        self.refused_user_fit
            .push(t_s, snapshot.refused_user_fit as f64);
        self.refused_task_fit
            .push(t_s, snapshot.refused_task_fit as f64);
        self.refused_global
            .push(t_s, snapshot.refused_global as f64);
        self.conservation_violations
            .push(t_s, snapshot.conservation_violations as f64);
        self.overshoot_fraction
            .push(t_s, snapshot.overshoot_fraction);
        self.displaced.push(t_s, snapshot.displaced as f64);
        self.readmit_queued
            .push(t_s, snapshot.readmit_queued as f64);
        self.durability_degraded
            .push(t_s, f64::from(u8::from(snapshot.durability_degraded)));
        self.snapshots.push(snapshot.clone());
        snapshot
    }

    /// [`sample`](Self::sample) plus one SLO-watchdog observation: the
    /// watchdog windows the plane's histograms and the snapshot's
    /// admission success rate, and fires (once per watchdog) when a
    /// budget burns — the returned [`WatchdogFire`] carries the
    /// post-mortem and the Perfetto trace dump. The admission signal is
    /// withheld until any admission has been attempted, so an idle
    /// warm-up can't trip the floor. The snapshot's durability-degraded
    /// flag feeds the watchdog's fifth detector, so a journal riding
    /// out storage faults in memory pages even while every latency
    /// budget is healthy.
    pub fn sample_with_watchdog(
        &mut self,
        fleet: &Fleet,
        t_s: f64,
        watchdog: &Watchdog,
    ) -> (FleetSnapshot, Option<WatchdogFire>) {
        let snapshot = self.sample(fleet, t_s);
        let admission =
            (snapshot.admission_attempts > 0).then_some(snapshot.admission_success_rate);
        let fire = watchdog.observe_full(fleet.obs(), admission, snapshot.durability_degraded);
        (snapshot, fire)
    }

    /// All snapshots, in time order.
    pub fn snapshots(&self) -> &[FleetSnapshot] {
        &self.snapshots
    }

    /// The most recent snapshot.
    pub fn last(&self) -> Option<&FleetSnapshot> {
        self.snapshots.last()
    }

    /// Universe-size series (registered sessions).
    pub fn universe_sessions_series(&self) -> &TimeSeries {
        &self.universe_sessions
    }

    /// Universe-size series (registered users).
    pub fn universe_users_series(&self) -> &TimeSeries {
        &self.universe_users
    }

    /// Global-objective series.
    pub fn objective_series(&self) -> &TimeSeries {
        &self.objective
    }

    /// Mean per-session objective series.
    pub fn mean_session_objective_series(&self) -> &TimeSeries {
        &self.mean_session_objective
    }

    /// Inter-agent-traffic series (Mbps).
    pub fn traffic_series(&self) -> &TimeSeries {
        &self.traffic
    }

    /// Mean-delay series (ms).
    pub fn mean_delay_series(&self) -> &TimeSeries {
        &self.mean_delay
    }

    /// Live-session-count series.
    pub fn live_sessions_series(&self) -> &TimeSeries {
        &self.live_sessions
    }

    /// Mean-utilization series (mean of per-agent max fractions).
    pub fn mean_utilization_series(&self) -> &TimeSeries {
        &self.mean_utilization
    }

    /// Max-utilization series.
    pub fn max_utilization_series(&self) -> &TimeSeries {
        &self.max_utilization
    }

    /// Cumulative-admissions series.
    pub fn admitted_series(&self) -> &TimeSeries {
        &self.admitted
    }

    /// Cumulative-rejections series.
    pub fn rejected_series(&self) -> &TimeSeries {
        &self.rejected
    }

    /// Cumulative-departures series.
    pub fn departed_series(&self) -> &TimeSeries {
        &self.departed
    }

    /// Cumulative-migrations series.
    pub fn migrations_series(&self) -> &TimeSeries {
        &self.migrations
    }

    /// Admission-success-rate series.
    pub fn admission_success_rate_series(&self) -> &TimeSeries {
        &self.admission_success_rate
    }

    /// Cumulative-admission-attempts series (admitted + rejected).
    pub fn admission_attempts_series(&self) -> &TimeSeries {
        &self.admission_attempts
    }

    /// Enumeration-tier-admissions series.
    pub fn admitted_enumeration_series(&self) -> &TimeSeries {
        &self.admitted_enumeration
    }

    /// Repair-tier-admissions series.
    pub fn admitted_repair_series(&self) -> &TimeSeries {
        &self.admitted_repair
    }

    /// Ranked-fallback-admissions series.
    pub fn admitted_fallback_series(&self) -> &TimeSeries {
        &self.admitted_fallback
    }

    /// Cumulative-repair-steps series.
    pub fn admission_repair_steps_series(&self) -> &TimeSeries {
        &self.admission_repair_steps
    }

    /// User-fit-refusals series.
    pub fn refused_user_fit_series(&self) -> &TimeSeries {
        &self.refused_user_fit
    }

    /// Task-fit-refusals series.
    pub fn refused_task_fit_series(&self) -> &TimeSeries {
        &self.refused_task_fit
    }

    /// Global-check-refusals series.
    pub fn refused_global_series(&self) -> &TimeSeries {
        &self.refused_global
    }

    /// Conservation-violations series (must be identically zero).
    pub fn conservation_violations_series(&self) -> &TimeSeries {
        &self.conservation_violations
    }

    /// Overshoot-fraction series (worst per-agent debt past capacity).
    pub fn overshoot_fraction_series(&self) -> &TimeSeries {
        &self.overshoot_fraction
    }

    /// Cumulative-displacements series.
    pub fn displaced_series(&self) -> &TimeSeries {
        &self.displaced
    }

    /// Re-admission queue-depth series.
    pub fn readmit_queued_series(&self) -> &TimeSeries {
        &self.readmit_queued
    }

    /// Durability-degraded series (0/1 per sample).
    pub fn durability_degraded_series(&self) -> &TimeSeries {
        &self.durability_degraded
    }

    /// Total conservation violations observed across all samples.
    pub fn total_conservation_violations(&self) -> usize {
        self.snapshots
            .iter()
            .map(|s| s.conservation_violations)
            .sum()
    }

    /// Column names of [`to_csv`](Self::to_csv), in order.
    pub const CSV_HEADER: &'static str = "time_s,universe_sessions,universe_users,\
        live_sessions,objective,\
        mean_session_objective,traffic_mbps,mean_delay_ms,mean_utilization,\
        max_utilization,admitted,rejected,departed,migrations,\
        admission_success_rate,admission_attempts,admitted_enumeration,\
        admitted_repair,admitted_fallback,admission_repair_steps,\
        refused_user_fit,refused_task_fit,refused_global,\
        conservation_violations,overshoot_fraction,displaced,\
        readmit_queued,durability_degraded";

    /// Every snapshot as CSV (header + one row per sample), precise
    /// enough to round-trip `f64`s — two runs can be diffed offline
    /// (e.g. a recovered fleet against the original).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(Self::CSV_HEADER);
        out.push('\n');
        for s in &self.snapshots {
            out.push_str(&format!(
                "{},{},{},{},{:.17e},{:.17e},{:.17e},{:.17e},{:.17e},{:.17e},{},{},{},{},{:.17e},{},{},{},{},{},{},{},{},{},{:.17e},{},{},{}\n",
                s.time_s,
                s.universe_sessions,
                s.universe_users,
                s.live_sessions,
                s.objective,
                s.mean_session_objective,
                s.traffic_mbps,
                s.mean_delay_ms,
                s.mean_utilization,
                s.max_utilization,
                s.admitted,
                s.rejected,
                s.departed,
                s.migrations,
                s.admission_success_rate,
                s.admission_attempts,
                s.admitted_enumeration,
                s.admitted_repair,
                s.admitted_fallback,
                s.admission_repair_steps,
                s.refused_user_fit,
                s.refused_task_fit,
                s.refused_global,
                s.conservation_violations,
                s.overshoot_fraction,
                s.displaced,
                s.readmit_queued,
                u8::from(s.durability_degraded),
            ));
        }
        out
    }

    /// Writes [`to_csv`](Self::to_csv) to `path`.
    ///
    /// # Errors
    ///
    /// Any filesystem error.
    pub fn write_csv(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }

    /// One snapshot as a JSON object (fields mirror the CSV columns).
    fn snapshot_json(s: &FleetSnapshot) -> String {
        format!(
            "{{\"time_s\": {}, \"universe_sessions\": {}, \"universe_users\": {}, \
             \"live_sessions\": {}, \"objective\": {:.17e}, \
             \"mean_session_objective\": {:.17e}, \"traffic_mbps\": {:.17e}, \
             \"mean_delay_ms\": {:.17e}, \"mean_utilization\": {:.17e}, \
             \"max_utilization\": {:.17e}, \"admitted\": {}, \"rejected\": {}, \
             \"departed\": {}, \"migrations\": {}, \"admission_success_rate\": {:.17e}, \
             \"admission_attempts\": {}, \"admitted_enumeration\": {}, \
             \"admitted_repair\": {}, \"admitted_fallback\": {}, \
             \"admission_repair_steps\": {}, \"refused_user_fit\": {}, \
             \"refused_task_fit\": {}, \"refused_global\": {}, \
             \"conservation_violations\": {}, \"overshoot_fraction\": {:.17e}, \
             \"displaced\": {}, \"readmit_queued\": {}, \
             \"durability_degraded\": {}}}",
            s.time_s,
            s.universe_sessions,
            s.universe_users,
            s.live_sessions,
            s.objective,
            s.mean_session_objective,
            s.traffic_mbps,
            s.mean_delay_ms,
            s.mean_utilization,
            s.max_utilization,
            s.admitted,
            s.rejected,
            s.departed,
            s.migrations,
            s.admission_success_rate,
            s.admission_attempts,
            s.admitted_enumeration,
            s.admitted_repair,
            s.admitted_fallback,
            s.admission_repair_steps,
            s.refused_user_fit,
            s.refused_task_fit,
            s.refused_global,
            s.conservation_violations,
            s.overshoot_fraction,
            s.displaced,
            s.readmit_queued,
            s.durability_degraded,
        )
    }

    /// The structured JSON export alongside the CSV: every snapshot,
    /// plus the fleet's observability-plane summaries — per-site
    /// latency percentiles, swap contention per shard, flight-recorder
    /// op count, and the process alloc counter when registered.
    pub fn to_json(&self, fleet: &Fleet) -> String {
        let rows: Vec<String> = self.snapshots.iter().map(Self::snapshot_json).collect();
        format!(
            "{{\n  \"snapshots\": [\n    {}\n  ],\n  \"obs\": {}\n}}\n",
            rows.join(",\n    "),
            fleet.obs().summary_json()
        )
    }

    /// Writes [`to_json`](Self::to_json) to `path`.
    ///
    /// # Errors
    ///
    /// Any filesystem error.
    pub fn write_json(
        &self,
        path: impl AsRef<std::path::Path>,
        fleet: &Fleet,
    ) -> std::io::Result<()> {
        std::fs::write(path, self.to_json(fleet))
    }
}
