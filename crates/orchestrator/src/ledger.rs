//! The sharded per-agent capacity ledger.
//!
//! A [`vc_core::SystemState`] is a closed world: its
//! capacity checks only see the sessions of its own instance. The
//! orchestrator instead treats agent capacity as a *shared, contended*
//! resource: every live session holds an explicit reservation
//! (bandwidth + transcoding slots per agent), taken and released
//! atomically as sessions are admitted, migrated, and torn down —
//! possibly from many worker threads at once.
//!
//! Agents are partitioned into shards, each behind its own lock, so
//! concurrent reservations contend only when they touch the same shard.
//! A multi-agent reservation locks the shards it spans in ascending
//! order (deadlock-free) and is all-or-nothing.
//!
//! ## Elastic agents and regions
//!
//! The agent pool is append-only extensible: [`CapacityLedger::
//! register_agent`] pushes a fresh entry behind the entries `RwLock`
//! without renumbering anything — the shard count is fixed at
//! construction, so the agent→shard mapping of existing agents never
//! changes. Every agent belongs to exactly one named **region**
//! (seed agents land in region 0, `"default"`); a reservation whose
//! agents span several regions goes through the two-phase
//! [`prepare_reserve`](CapacityLedger::prepare_reserve) /
//! [`commit_prepared`](CapacityLedger::commit_prepared) /
//! [`abort_prepared`](CapacityLedger::abort_prepared) protocol — see
//! `crate`-level docs for the full state machine.
//!
//! Lock order (deadlock-free by construction): holding-shard lock →
//! agent-shard locks (ascending) → entries read lock. The entries
//! *write* lock (registration only) is taken alone, under the fleet's
//! FREEZE write lock, which quiesces every mutator.

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use vc_core::{AgentTotals, SystemState, UapProblem, CAPACITY_EPS};
use vc_model::{AgentId, Capacity, SessionId};

/// One agent's worth of a session's reservation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentHold {
    /// The agent held on.
    pub agent: AgentId,
    /// Reserved download bandwidth (Mbps), constraint (5).
    pub download_mbps: f64,
    /// Reserved upload bandwidth (Mbps), constraint (6).
    pub upload_mbps: f64,
    /// Reserved transcoding units, constraint (7).
    pub transcode_units: u32,
}

/// A session's complete reservation: one [`AgentHold`] per agent it
/// touches (sparse — most sessions touch a handful of agents).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SessionHold {
    /// Per-agent holds, ascending by agent id.
    pub holds: Vec<AgentHold>,
}

impl SessionHold {
    /// Extracts the reservation implied by a session's evaluated load
    /// (sparse: only the agents the load touches are scanned).
    pub fn from_load(load: &vc_core::SessionLoad) -> Self {
        let mut holds = Vec::new();
        for &a in &load.touched {
            let i = a as usize;
            let (d, u, t) = (load.download[i], load.upload[i], load.transcode_units[i]);
            if d > 0.0 || u > 0.0 || t > 0 {
                holds.push(AgentHold {
                    agent: AgentId::from(i),
                    download_mbps: d,
                    upload_mbps: u,
                    transcode_units: t,
                });
            }
        }
        Self { holds }
    }

    /// Whether the hold reserves nothing.
    pub fn is_empty(&self) -> bool {
        self.holds.is_empty()
    }
}

/// Why a reservation was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerError {
    /// An agent lacks the requested resource.
    Insufficient {
        /// The constrained agent.
        agent: AgentId,
        /// Which resource ran out: `"download"`, `"upload"` or `"transcode"`.
        resource: &'static str,
    },
    /// An agent in the request is marked failed.
    AgentDown(AgentId),
    /// The session already holds a reservation (admit without depart).
    AlreadyHeld(SessionId),
    /// The session holds nothing (release/swap without admit).
    NotHeld(SessionId),
}

/// Why a cross-region two-phase reservation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum CrossRegionError {
    /// The session already holds a reservation.
    AlreadyHeld(SessionId),
    /// Phase 1 failed in `region`: every region prepared before it has
    /// been rolled back, so the ledger is back at its pre-prepare
    /// residuals.
    Prepare {
        /// The region that refused its sub-hold.
        region: u32,
        /// Why it refused.
        error: LedgerError,
    },
}

impl std::fmt::Display for CrossRegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::AlreadyHeld(s) => write!(f, "session {s} already holds a reservation"),
            Self::Prepare { region, error } => {
                write!(
                    f,
                    "cross-region prepare refused by region {region}: {error}"
                )
            }
        }
    }
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Insufficient { agent, resource } => {
                write!(f, "agent {agent} has insufficient {resource}")
            }
            Self::AgentDown(a) => write!(f, "agent {a} is down"),
            Self::AlreadyHeld(s) => write!(f, "session {s} already holds a reservation"),
            Self::NotHeld(s) => write!(f, "session {s} holds no reservation"),
        }
    }
}

/// One agent's booked totals. The reserved fields are atomics:
/// *mutation* happens only while the owning shard lock is held (so
/// read-modify-write needs no CAS), while *readers* — per-hop residual
/// snapshots, telemetry, the audit — load them lock-free. Each field is
/// individually consistent; cross-field consistency for mutators comes
/// from the shard lock, and the audit runs under the fleet's FREEZE
/// write lock, which quiesces all mutators.
#[derive(Debug)]
struct AgentEntry {
    capacity: Capacity,
    /// `f64` bit pattern of the reserved download bandwidth (Mbps).
    reserved_download: AtomicU64,
    /// `f64` bit pattern of the reserved upload bandwidth (Mbps).
    reserved_upload: AtomicU64,
    reserved_units: AtomicU32,
    available: AtomicBool,
    /// Region id (index into the ledger's region-name table). Written
    /// at registration/recovery only, under the FREEZE write lock.
    region: AtomicU32,
}

impl AgentEntry {
    fn fresh(capacity: Capacity, region: u32) -> Self {
        Self {
            capacity,
            reserved_download: AtomicU64::new(0.0f64.to_bits()),
            reserved_upload: AtomicU64::new(0.0f64.to_bits()),
            reserved_units: AtomicU32::new(0),
            available: AtomicBool::new(true),
            region: AtomicU32::new(region),
        }
    }
}

impl AgentEntry {
    fn download(&self) -> f64 {
        f64::from_bits(self.reserved_download.load(Ordering::Relaxed))
    }

    fn upload(&self) -> f64 {
        f64::from_bits(self.reserved_upload.load(Ordering::Relaxed))
    }

    fn units(&self) -> u32 {
        self.reserved_units.load(Ordering::Relaxed)
    }

    fn is_up(&self) -> bool {
        self.available.load(Ordering::Relaxed)
    }

    fn fits(&self, hold: &AgentHold) -> Result<(), &'static str> {
        if self.download() + hold.download_mbps > self.capacity.download_mbps + CAPACITY_EPS {
            return Err("download");
        }
        if self.upload() + hold.upload_mbps > self.capacity.upload_mbps + CAPACITY_EPS {
            return Err("upload");
        }
        if self.units() + hold.transcode_units > self.capacity.transcode_slots {
            return Err("transcode");
        }
        Ok(())
    }

    /// Caller holds the owning shard lock.
    fn add(&self, hold: &AgentHold) {
        self.reserved_download.store(
            (self.download() + hold.download_mbps).to_bits(),
            Ordering::Relaxed,
        );
        self.reserved_upload.store(
            (self.upload() + hold.upload_mbps).to_bits(),
            Ordering::Relaxed,
        );
        self.reserved_units
            .store(self.units() + hold.transcode_units, Ordering::Relaxed);
    }

    /// Caller holds the owning shard lock.
    fn remove(&self, hold: &AgentHold) {
        self.reserved_download.store(
            (self.download() - hold.download_mbps).max(0.0).to_bits(),
            Ordering::Relaxed,
        );
        self.reserved_upload.store(
            (self.upload() - hold.upload_mbps).max(0.0).to_bits(),
            Ordering::Relaxed,
        );
        self.reserved_units.store(
            self.units().saturating_sub(hold.transcode_units),
            Ordering::Relaxed,
        );
    }
}

/// Point-in-time utilization of one agent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentUtilization {
    /// The agent.
    pub agent: AgentId,
    /// Reserved download bandwidth (Mbps).
    pub download_mbps: f64,
    /// Reserved upload bandwidth (Mbps).
    pub upload_mbps: f64,
    /// Reserved transcoding units.
    pub transcode_units: u32,
    /// Largest of the three fractional utilizations (0 for unlimited
    /// capacities).
    pub max_fraction: f64,
    /// Whether the agent is up.
    pub available: bool,
}

/// Reusable per-worker residual-capacity buffers for the hop path (see
/// [`CapacityLedger::hop_residuals_into`]).
#[derive(Debug, Default)]
pub struct HopResiduals {
    /// Per-agent free download bandwidth (Mbps; may be negative after a
    /// forced evacuation overshoot).
    pub download: Vec<f64>,
    /// Per-agent free upload bandwidth (Mbps).
    pub upload: Vec<f64>,
    /// Per-agent free transcoding units (`+∞` for unlimited).
    pub transcode: Vec<f64>,
}

/// Aggregate residual capacity of one region — the telemetry shape
/// behind the `vc_region_*` gauges.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionResiduals {
    /// Region id (index into the name table).
    pub region: u32,
    /// Region name.
    pub name: String,
    /// Agents registered in the region.
    pub agents: usize,
    /// Of those, currently available.
    pub available_agents: usize,
    /// Residual download bandwidth summed over available agents (Mbps).
    pub download_mbps: f64,
    /// Residual upload bandwidth summed over available agents (Mbps).
    pub upload_mbps: f64,
    /// Residual transcoding units over available agents (`+∞` if any
    /// agent is unlimited).
    pub transcode_units: f64,
    /// Reserved download bandwidth summed over all agents (Mbps).
    pub reserved_download_mbps: f64,
    /// Reserved upload bandwidth summed over all agents (Mbps).
    pub reserved_upload_mbps: f64,
}

/// A prepared-but-uncommitted cross-region reservation: phase 1 of the
/// two-phase protocol. The per-region sub-holds are already debited
/// from the entries; the reservation is **not** in the holdings table
/// until [`CapacityLedger::commit_prepared`] installs it. Dropping a
/// `PreparedReserve` without committing or aborting leaks the debit
/// in-process — the fleet never does (its admit path commits
/// immediately; its journal records admissions only at commit, so a
/// crash between the phases recovers to pre-admission residuals by
/// construction).
#[derive(Debug)]
#[must_use = "a prepared reserve must be committed or aborted"]
pub struct PreparedReserve {
    session: SessionId,
    /// `(region, sub-hold)` pairs, ascending by region id, each debited.
    prepared: Vec<(u32, SessionHold)>,
}

impl PreparedReserve {
    /// The session the reservation is for.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// The region ids the reservation spans, ascending.
    pub fn regions(&self) -> Vec<u32> {
        self.prepared.iter().map(|(r, _)| *r).collect()
    }
}

/// The sharded ledger. See the module docs.
#[derive(Debug)]
pub struct CapacityLedger {
    /// Per-agent entries, indexed by agent id. Reserved totals are
    /// atomics, so residual snapshots and telemetry read them with only
    /// the entries read lock (uncontended except during registration) —
    /// a hop's capacity snapshot costs `L` relaxed loads instead of a
    /// walk over every shard mutex. The `RwLock` exists solely for
    /// append-only agent registration; entries never move or shrink.
    entries: RwLock<Vec<AgentEntry>>,
    /// `shard_locks[i]` serializes mutation of every entry whose
    /// `agent.index() % shard_locks.len() == i`. The shard count is
    /// fixed at construction so registration never remaps agents.
    shard_locks: Vec<Mutex<()>>,
    /// Session holds, sharded by session index.
    holdings: Vec<Mutex<HashMap<SessionId, SessionHold>>>,
    /// Region-name table; index = region id. Append-only.
    regions: RwLock<Vec<String>>,
    /// Cross-region prepares that succeeded (phase 1).
    cross_prepares: AtomicU64,
    /// Cross-region reservations committed (phase 2).
    cross_commits: AtomicU64,
    /// Cross-region reservations aborted (typed refusal or explicit
    /// abort), with every debit rolled back.
    cross_aborts: AtomicU64,
}

/// The region every seed agent starts in.
pub const DEFAULT_REGION: &str = "default";

impl CapacityLedger {
    /// Builds a ledger over the problem's agents, all capacity free,
    /// every agent in region 0 ([`DEFAULT_REGION`]). `num_shards` is
    /// clamped to `[1, num_agents]`.
    pub fn new(problem: &UapProblem, num_shards: usize) -> Self {
        let inst = problem.instance();
        let num_agents = inst.num_agents();
        let num_shards = num_shards.clamp(1, num_agents.max(1));
        let entries = inst
            .agent_ids()
            .map(|l| AgentEntry::fresh(inst.agent(l).capacity(), 0))
            .collect();
        Self {
            entries: RwLock::new(entries),
            shard_locks: (0..num_shards).map(|_| Mutex::new(())).collect(),
            holdings: (0..num_shards)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            regions: RwLock::new(vec![DEFAULT_REGION.to_string()]),
            cross_prepares: AtomicU64::new(0),
            cross_commits: AtomicU64::new(0),
            cross_aborts: AtomicU64::new(0),
        }
    }

    /// Number of shards (for telemetry / tests).
    pub fn num_shards(&self) -> usize {
        self.shard_locks.len()
    }

    /// Number of agents the ledger covers (grows with registration).
    pub fn num_agents(&self) -> usize {
        self.entries.read().len()
    }

    /// Appends one agent in `region`, all capacity free — the ledger
    /// half of `Fleet::register_agent`. Existing entries never move and
    /// the shard count is fixed, so no existing agent's shard changes.
    /// Returns the new agent's id (always the next dense index).
    ///
    /// Caller serializes against other coarse ops (the fleet holds its
    /// FREEZE write lock).
    pub fn register_agent(&self, capacity: Capacity, region: u32) -> AgentId {
        debug_assert!((region as usize) < self.regions.read().len());
        let mut entries = self.entries.write();
        let id = AgentId::from(entries.len());
        entries.push(AgentEntry::fresh(capacity, region));
        id
    }

    /// Returns the id of region `name`, creating it if new.
    pub fn ensure_region(&self, name: &str) -> u32 {
        let mut regions = self.regions.write();
        if let Some(i) = regions.iter().position(|r| r == name) {
            return i as u32;
        }
        regions.push(name.to_string());
        (regions.len() - 1) as u32
    }

    /// The region-name table (index = region id).
    pub fn region_names(&self) -> Vec<String> {
        self.regions.read().clone()
    }

    /// The region agent `agent` belongs to.
    pub fn region_of(&self, agent: AgentId) -> u32 {
        self.entries.read()[agent.index()]
            .region
            .load(Ordering::Relaxed)
    }

    /// Re-homes one agent (recovery re-applying a journaled region
    /// table; never part of live operation).
    pub(crate) fn assign_region(&self, agent: AgentId, region: u32) {
        debug_assert!((region as usize) < self.regions.read().len());
        self.entries.read()[agent.index()]
            .region
            .store(region, Ordering::Relaxed);
    }

    fn holding_shard(&self, s: SessionId) -> &Mutex<HashMap<SessionId, SessionHold>> {
        &self.holdings[s.index() % self.holdings.len()]
    }

    /// Locks, in ascending shard order, every shard the hold spans, and
    /// runs `f` over the entries with those agents exclusively
    /// writable. The entries read lock is taken *after* the shard locks
    /// (the module-level lock order).
    fn with_span<T>(
        &self,
        hold_agents: impl Iterator<Item = AgentId>,
        f: impl FnOnce(&[AgentEntry]) -> T,
    ) -> T {
        let mut shard_ids: Vec<usize> = hold_agents
            .map(|a| a.index() % self.shard_locks.len())
            .collect();
        shard_ids.sort_unstable();
        shard_ids.dedup();
        let _guards: Vec<parking_lot::MutexGuard<'_, ()>> = shard_ids
            .iter()
            .map(|&i| self.shard_locks[i].lock())
            .collect();
        f(&self.entries.read())
    }

    /// Visits every agent entry under the entries read lock. Each field
    /// is individually consistent; concurrent reservations may land
    /// between reads, which every caller here tolerates (residuals/
    /// utilization are advisory; the audit runs under the fleet's
    /// FREEZE write lock, which quiesces all mutators).
    fn for_each_entry(&self, mut f: impl FnMut(AgentId, &AgentEntry)) {
        for (i, entry) in self.entries.read().iter().enumerate() {
            f(AgentId::from(i), entry);
        }
    }

    /// Atomically reserves `hold` for `session`: either every agent in
    /// the hold has room (and is up) and all of it is booked, or nothing
    /// is.
    ///
    /// # Errors
    ///
    /// [`LedgerError::AlreadyHeld`] if the session holds a reservation,
    /// [`LedgerError::AgentDown`] / [`LedgerError::Insufficient`] when
    /// some agent cannot take its share.
    pub fn try_reserve(&self, session: SessionId, hold: SessionHold) -> Result<(), LedgerError> {
        let mut holdings = self.holding_shard(session).lock();
        if holdings.contains_key(&session) {
            return Err(LedgerError::AlreadyHeld(session));
        }
        self.with_span(hold.holds.iter().map(|h| h.agent), |view| {
            for h in &hold.holds {
                let entry = &view[h.agent.index()];
                if !entry.is_up() {
                    return Err(LedgerError::AgentDown(h.agent));
                }
                if let Err(resource) = entry.fits(h) {
                    return Err(LedgerError::Insufficient {
                        agent: h.agent,
                        resource,
                    });
                }
            }
            for h in &hold.holds {
                view[h.agent.index()].add(h);
            }
            Ok(())
        })?;
        holdings.insert(session, hold);
        Ok(())
    }

    /// Releases the session's reservation, returning exactly what was
    /// held.
    ///
    /// # Errors
    ///
    /// [`LedgerError::NotHeld`] if the session holds nothing.
    pub fn release(&self, session: SessionId) -> Result<SessionHold, LedgerError> {
        let mut holdings = self.holding_shard(session).lock();
        let hold = holdings
            .remove(&session)
            .ok_or(LedgerError::NotHeld(session))?;
        self.with_span(hold.holds.iter().map(|h| h.agent), |view| {
            for h in &hold.holds {
                view[h.agent.index()].remove(h);
            }
        });
        Ok(hold)
    }

    /// Atomically replaces the session's reservation with `new_hold`
    /// **iff** every agent of the new hold still has room after the old
    /// hold is released — the commit point of a *concurrent* HOP, where
    /// the ledger (not a global state lock) arbitrates capacity races
    /// between sessions. On refusal the old hold is restored exactly.
    ///
    /// Availability is deliberately not checked: agent failure is a
    /// coarse-path operation excluded (by the fleet's FREEZE write lock)
    /// while any hop is in flight.
    ///
    /// # Errors
    ///
    /// [`LedgerError::NotHeld`] if the session holds nothing,
    /// [`LedgerError::Insufficient`] when a concurrent reservation beat
    /// this one to the capacity.
    pub fn try_swap(&self, session: SessionId, new_hold: SessionHold) -> Result<(), LedgerError> {
        let mut holdings = self.holding_shard(session).lock();
        let old = holdings
            .get(&session)
            .cloned()
            .ok_or(LedgerError::NotHeld(session))?;
        self.with_span(
            old.holds
                .iter()
                .map(|h| h.agent)
                .chain(new_hold.holds.iter().map(|h| h.agent)),
            |view| {
                for h in &old.holds {
                    view[h.agent.index()].remove(h);
                }
                for h in &new_hold.holds {
                    if let Err(resource) = view[h.agent.index()].fits(h) {
                        for h2 in &old.holds {
                            view[h2.agent.index()].add(h2);
                        }
                        return Err(LedgerError::Insufficient {
                            agent: h.agent,
                            resource,
                        });
                    }
                }
                for h in &new_hold.holds {
                    view[h.agent.index()].add(h);
                }
                Ok(())
            },
        )?;
        holdings.insert(session, new_hold);
        Ok(())
    }

    /// Replaces the session's reservation with `new_hold` *uncondition-
    /// ally* (no capacity check) — the mirror operation for migrations
    /// already validated against the authoritative `SystemState` under
    /// the FREEZE lock, and for forced evacuations, which deliberately
    /// overshoot (service continuity over constraint purity; the
    /// overshoot shows up in [`utilization`](Self::utilization)).
    ///
    /// # Errors
    ///
    /// [`LedgerError::NotHeld`] if the session holds nothing.
    pub fn force_swap(&self, session: SessionId, new_hold: SessionHold) -> Result<(), LedgerError> {
        let mut holdings = self.holding_shard(session).lock();
        let old = holdings
            .get(&session)
            .cloned()
            .ok_or(LedgerError::NotHeld(session))?;
        self.with_span(
            old.holds
                .iter()
                .map(|h| h.agent)
                .chain(new_hold.holds.iter().map(|h| h.agent)),
            |view| {
                for h in &old.holds {
                    view[h.agent.index()].remove(h);
                }
                for h in &new_hold.holds {
                    view[h.agent.index()].add(h);
                }
            },
        );
        holdings.insert(session, new_hold);
        Ok(())
    }

    /// The hold currently booked for `session`, if any.
    pub fn hold_of(&self, session: SessionId) -> Option<SessionHold> {
        self.holding_shard(session).lock().get(&session).cloned()
    }

    /// Every booked reservation, ascending by session id — the ledger
    /// half of a durable snapshot. Consistent per holding shard; for a
    /// globally consistent view call under the fleet's FREEZE lock,
    /// which serializes all mutations.
    pub fn holdings(&self) -> Vec<(SessionId, SessionHold)> {
        let mut out: Vec<(SessionId, SessionHold)> = self
            .holdings
            .iter()
            .flat_map(|h| {
                h.lock()
                    .iter()
                    .map(|(s, hold)| (*s, hold.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_unstable_by_key(|(s, _)| *s);
        out
    }

    /// Books `hold` for `session` *without* re-checking capacity — the
    /// admission engine already proved the placement fits against this
    /// ledger's residuals under the exclusive FREEZE lock, so a second
    /// epsilon-sensitive check could only disagree spuriously. The
    /// engine is the authority; the ledger mirrors it.
    ///
    /// # Errors
    ///
    /// [`LedgerError::AlreadyHeld`] if the session already holds a
    /// reservation (an admit/activate invariant breach).
    pub(crate) fn book_unchecked(
        &self,
        session: SessionId,
        hold: SessionHold,
    ) -> Result<(), LedgerError> {
        self.restore_hold(session, hold)
    }

    /// Books `hold` for `session` *without* capacity or availability
    /// checks — the crash-recovery path re-installing a snapshot's
    /// holdings, which may legitimately overshoot (forced evacuations)
    /// and may sit on failed agents. Validity is established afterwards
    /// by the recovery audit, not here.
    ///
    /// # Errors
    ///
    /// [`LedgerError::AlreadyHeld`] if the session already holds a
    /// reservation.
    pub(crate) fn restore_hold(
        &self,
        session: SessionId,
        hold: SessionHold,
    ) -> Result<(), LedgerError> {
        let mut holdings = self.holding_shard(session).lock();
        if holdings.contains_key(&session) {
            return Err(LedgerError::AlreadyHeld(session));
        }
        self.with_span(hold.holds.iter().map(|h| h.agent), |view| {
            for h in &hold.holds {
                view[h.agent.index()].add(h);
            }
        });
        holdings.insert(session, hold);
        Ok(())
    }

    /// Number of sessions holding reservations.
    pub fn live_sessions(&self) -> usize {
        self.holdings.iter().map(|h| h.lock().len()).sum()
    }

    /// Marks an agent failed: new reservations touching it are refused.
    /// Existing holds stay booked until their sessions migrate or depart.
    pub fn fail_agent(&self, agent: AgentId) {
        self.entries.read()[agent.index()]
            .available
            .store(false, Ordering::Relaxed);
    }

    /// Brings a failed agent back.
    pub fn restore_agent(&self, agent: AgentId) {
        self.entries.read()[agent.index()]
            .available
            .store(true, Ordering::Relaxed);
    }

    /// Whether the agent is up.
    pub fn is_agent_available(&self, agent: AgentId) -> bool {
        self.entries.read()[agent.index()].is_up()
    }

    /// Point-in-time utilization of every agent.
    pub fn utilization(&self) -> Vec<AgentUtilization> {
        let entries = self.entries.read();
        entries
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let frac = |used: f64, cap: f64| {
                    if cap.is_finite() && cap > 0.0 {
                        used / cap
                    } else {
                        0.0
                    }
                };
                let units = e.units();
                let slot_frac = if e.capacity.transcode_slots == u32::MAX {
                    0.0
                } else if e.capacity.transcode_slots == 0 {
                    f64::from(units.min(1))
                } else {
                    f64::from(units) / f64::from(e.capacity.transcode_slots)
                };
                AgentUtilization {
                    agent: AgentId::from(i),
                    download_mbps: e.download(),
                    upload_mbps: e.upload(),
                    transcode_units: units,
                    max_fraction: frac(e.download(), e.capacity.download_mbps)
                        .max(frac(e.upload(), e.capacity.upload_mbps))
                        .max(slot_frac),
                    available: e.is_up(),
                }
            })
            .collect()
    }

    /// The worst per-agent capacity *overshoot*: how far past 1.0 the
    /// most-loaded agent's utilization sits (0.0 when every agent is
    /// within capacity). Nonzero only after forced evacuation moves —
    /// the admission and hop paths never overbook — so this gauge is
    /// the direct readout of how much un-healed displacement debt the
    /// fleet is carrying.
    pub fn max_overshoot_fraction(&self) -> f64 {
        self.utilization()
            .iter()
            .map(|u| (u.max_fraction - 1.0).max(0.0))
            .fold(0.0, f64::max)
    }

    /// Conservation audit against the authoritative state: per agent,
    /// the booked reservations must equal the state's live
    /// [`AgentTotals`] (within float slack), and the set of holding
    /// sessions must equal the active set. Returns human-readable
    /// discrepancies (empty = conserved).
    pub fn audit_against(&self, state: &SystemState) -> Vec<String> {
        let mut active: Vec<SessionId> = state.active_sessions().collect();
        active.sort_unstable();
        self.audit_against_totals(state.totals(), &active)
    }

    /// [`audit_against`](Self::audit_against) on raw totals + an
    /// ascending active-session list — the form the sharded fleet uses
    /// (it sums per-session slot loads instead of keeping a global
    /// `SystemState`).
    pub fn audit_against_totals(&self, totals: &AgentTotals, active: &[SessionId]) -> Vec<String> {
        let mut problems = Vec::new();
        self.for_each_entry(|agent, e| {
            let i = agent.index();
            if (e.download() - totals.download[i]).abs() > 1e-3 {
                problems.push(format!(
                    "agent {agent}: ledger download {:.4} != state {:.4}",
                    e.download(),
                    totals.download[i]
                ));
            }
            if (e.upload() - totals.upload[i]).abs() > 1e-3 {
                problems.push(format!(
                    "agent {agent}: ledger upload {:.4} != state {:.4}",
                    e.upload(),
                    totals.upload[i]
                ));
            }
            if e.units() != totals.transcode[i] {
                problems.push(format!(
                    "agent {agent}: ledger units {} != state {}",
                    e.units(),
                    totals.transcode[i]
                ));
            }
        });
        let mut held: Vec<SessionId> = self
            .holdings
            .iter()
            .flat_map(|h| h.lock().keys().copied().collect::<Vec<_>>())
            .collect();
        held.sort_unstable();
        if held != active {
            problems.push(format!(
                "holding sessions {held:?} != active sessions {active:?}"
            ));
        }
        problems
    }

    /// Fills `out` with availability-*blind* residual capacities
    /// (`capacity − reserved`, `+∞` for unlimited resources) — the
    /// per-hop capacity snapshot. Hops check `new − old ≤ residual`,
    /// which mirrors the closed-world `totals − old + new ≤ capacity`
    /// check; failed agents are excluded separately (only as *targets*),
    /// so load already sitting on a down agent may still be carried by
    /// moves that do not increase it. Costs `L` relaxed atomic loads
    /// under the (uncontended) entries read lock, no allocation after
    /// warm-up.
    pub fn hop_residuals_into(&self, out: &mut HopResiduals) {
        let entries = self.entries.read();
        let n = entries.len();
        out.download.clear();
        out.download.resize(n, 0.0);
        out.upload.clear();
        out.upload.resize(n, 0.0);
        out.transcode.clear();
        out.transcode.resize(n, 0.0);
        for (i, e) in entries.iter().enumerate() {
            out.download[i] = e.capacity.download_mbps - e.download();
            out.upload[i] = e.capacity.upload_mbps - e.upload();
            out.transcode[i] = if e.capacity.transcode_slots == u32::MAX {
                f64::INFINITY
            } else {
                f64::from(e.capacity.transcode_slots) - f64::from(e.units())
            };
        }
    }

    /// The booked per-agent reservation totals as [`AgentTotals`] —
    /// the live-fleet mirror of `SystemState::totals`. Lock-free (`L`
    /// relaxed loads per resource); globally consistent when called
    /// under the fleet's FREEZE write lock, which quiesces mutators.
    /// Feeding these through `Residuals::from_totals` gives the
    /// admission engine the same residual shape the offline world
    /// derives from a closed-world state.
    pub fn reserved_totals(&self) -> AgentTotals {
        let entries = self.entries.read();
        let mut totals = AgentTotals::zero(entries.len());
        for (i, e) in entries.iter().enumerate() {
            totals.download[i] = e.download();
            totals.upload[i] = e.upload();
            totals.transcode[i] = e.units();
        }
        totals
    }

    /// Residual capacities in the shape `vc-algo`'s AgRank consumes
    /// (infinite for unlimited agents; zero for failed ones so the
    /// ranking never proposes them).
    pub fn residuals(&self) -> vc_algo::agrank::Residuals {
        let entries = self.entries.read();
        let n = entries.len();
        let mut download = vec![0.0; n];
        let mut upload = vec![0.0; n];
        let mut transcode = vec![0.0; n];
        for (i, e) in entries.iter().enumerate() {
            if e.is_up() {
                download[i] = e.capacity.download_mbps - e.download();
                upload[i] = e.capacity.upload_mbps - e.upload();
                transcode[i] = if e.capacity.transcode_slots == u32::MAX {
                    f64::INFINITY
                } else {
                    f64::from(e.capacity.transcode_slots.saturating_sub(e.units()))
                };
            }
        }
        vc_algo::agrank::Residuals {
            download,
            upload,
            transcode,
        }
    }

    // ---- Two-phase cross-region reservation -------------------------

    /// Splits a hold into per-region sub-holds, ascending by region id.
    /// Agent order within each sub-hold follows the input hold.
    pub fn split_by_region(&self, hold: &SessionHold) -> Vec<(u32, SessionHold)> {
        let entries = self.entries.read();
        let mut parts: Vec<(u32, SessionHold)> = Vec::new();
        for h in &hold.holds {
            let r = entries[h.agent.index()].region.load(Ordering::Relaxed);
            match parts.iter_mut().find(|(reg, _)| *reg == r) {
                Some((_, sub)) => sub.holds.push(*h),
                None => parts.push((r, SessionHold { holds: vec![*h] })),
            }
        }
        parts.sort_unstable_by_key(|(r, _)| *r);
        parts
    }

    /// Phase 1, **checked**: debits every region's sub-hold, verifying
    /// availability and capacity region by region, ascending. On any refusal,
    /// every already-debited region is credited back before the typed
    /// error returns — the ledger is bitwise back at its pre-prepare
    /// residuals. On success the debits stand, pending
    /// [`commit_prepared`](Self::commit_prepared) or
    /// [`abort_prepared`](Self::abort_prepared).
    ///
    /// The fleet's admit path uses the unchecked twin
    /// (`prepare_booked`) because the admission engine already proved
    /// the fit; this checked form is the external/test entry point and
    /// the one that exercises the abort path.
    ///
    /// # Errors
    ///
    /// [`CrossRegionError::AlreadyHeld`] if the session already holds a
    /// reservation; [`CrossRegionError::Prepare`] naming the refusing
    /// region and the underlying [`LedgerError`].
    pub fn prepare_reserve(
        &self,
        session: SessionId,
        hold: SessionHold,
    ) -> Result<PreparedReserve, CrossRegionError> {
        if self.hold_of(session).is_some() {
            return Err(CrossRegionError::AlreadyHeld(session));
        }
        let parts = self.split_by_region(&hold);
        let mut prepared: Vec<(u32, SessionHold)> = Vec::with_capacity(parts.len());
        for (region, sub) in parts {
            let debit = self.with_span(sub.holds.iter().map(|h| h.agent), |view| {
                for h in &sub.holds {
                    let entry = &view[h.agent.index()];
                    if !entry.is_up() {
                        return Err(LedgerError::AgentDown(h.agent));
                    }
                    if let Err(resource) = entry.fits(h) {
                        return Err(LedgerError::Insufficient {
                            agent: h.agent,
                            resource,
                        });
                    }
                }
                for h in &sub.holds {
                    view[h.agent.index()].add(h);
                }
                Ok(())
            });
            match debit {
                Ok(()) => prepared.push((region, sub)),
                Err(error) => {
                    for (_, done) in &prepared {
                        self.with_span(done.holds.iter().map(|h| h.agent), |view| {
                            for h in &done.holds {
                                view[h.agent.index()].remove(h);
                            }
                        });
                    }
                    self.cross_aborts.fetch_add(1, Ordering::Relaxed);
                    return Err(CrossRegionError::Prepare { region, error });
                }
            }
        }
        self.cross_prepares.fetch_add(1, Ordering::Relaxed);
        Ok(PreparedReserve { session, prepared })
    }

    /// Phase 1, **unchecked**: debits every region's sub-hold without
    /// re-checking capacity — the admit path's twin of
    /// [`book_unchecked`](Self::book_unchecked). The admission engine
    /// already proved the placement fits against this ledger's residuals
    /// under the exclusive FREEZE lock; a second epsilon-sensitive check
    /// here could only disagree spuriously.
    pub(crate) fn prepare_booked(&self, session: SessionId, hold: SessionHold) -> PreparedReserve {
        let parts = self.split_by_region(&hold);
        for (_, sub) in &parts {
            self.with_span(sub.holds.iter().map(|h| h.agent), |view| {
                for h in &sub.holds {
                    view[h.agent.index()].add(h);
                }
            });
        }
        self.cross_prepares.fetch_add(1, Ordering::Relaxed);
        PreparedReserve {
            session,
            prepared: parts,
        }
    }

    /// Phase 2, commit: merges the prepared sub-holds back into one
    /// [`SessionHold`] (ascending by agent) and installs it in the
    /// holdings table. This is the commit point — the fleet journals the
    /// admission only after this returns, so a crash between prepare and
    /// commit replays to pre-admission residuals in every region.
    ///
    /// # Errors
    ///
    /// [`LedgerError::AlreadyHeld`] if the session booked a reservation
    /// since prepare; the prepared debits are rolled back (the commit
    /// degrades to an abort) so no capacity leaks.
    pub fn commit_prepared(&self, prepared: PreparedReserve) -> Result<(), LedgerError> {
        {
            let holdings = self.holding_shard(prepared.session).lock();
            if holdings.contains_key(&prepared.session) {
                let s = prepared.session;
                drop(holdings);
                self.abort_prepared(prepared);
                return Err(LedgerError::AlreadyHeld(s));
            }
        }
        let PreparedReserve {
            session,
            prepared: parts,
        } = prepared;
        let mut holds: Vec<AgentHold> = parts.into_iter().flat_map(|(_, s)| s.holds).collect();
        holds.sort_unstable_by_key(|h| h.agent);
        let mut holdings = self.holding_shard(session).lock();
        holdings.insert(session, SessionHold { holds });
        self.cross_commits.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Phase 2, abort: credits every prepared sub-hold back. After this
    /// the ledger is bitwise at its pre-prepare residuals in every
    /// region (debit and credit use the same adds/removes in the same
    /// per-agent order).
    pub fn abort_prepared(&self, prepared: PreparedReserve) {
        for (_, sub) in &prepared.prepared {
            self.with_span(sub.holds.iter().map(|h| h.agent), |view| {
                for h in &sub.holds {
                    view[h.agent.index()].remove(h);
                }
            });
        }
        self.cross_aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// `(prepares, commits, aborts)` counters of the two-phase protocol.
    pub fn cross_region_counters(&self) -> (u64, u64, u64) {
        (
            self.cross_prepares.load(Ordering::Relaxed),
            self.cross_commits.load(Ordering::Relaxed),
            self.cross_aborts.load(Ordering::Relaxed),
        )
    }

    /// Per-region residual/reserved aggregates — the data behind the
    /// `vc_region_*` telemetry gauges. Advisory, like
    /// [`utilization`](Self::utilization): taken without the shard
    /// locks, so a concurrent mutator may be half-reflected.
    pub fn region_residuals(&self) -> Vec<RegionResiduals> {
        let names = self.regions.read().clone();
        let entries = self.entries.read();
        let mut out: Vec<RegionResiduals> = names
            .into_iter()
            .enumerate()
            .map(|(i, name)| RegionResiduals {
                region: i as u32,
                name,
                agents: 0,
                available_agents: 0,
                download_mbps: 0.0,
                upload_mbps: 0.0,
                transcode_units: 0.0,
                reserved_download_mbps: 0.0,
                reserved_upload_mbps: 0.0,
            })
            .collect();
        for e in entries.iter() {
            let slot = &mut out[e.region.load(Ordering::Relaxed) as usize];
            slot.agents += 1;
            slot.reserved_download_mbps += e.download();
            slot.reserved_upload_mbps += e.upload();
            if e.is_up() {
                slot.available_agents += 1;
                slot.download_mbps += (e.capacity.download_mbps - e.download()).max(0.0);
                slot.upload_mbps += (e.capacity.upload_mbps - e.upload()).max(0.0);
                slot.transcode_units += if e.capacity.transcode_slots == u32::MAX {
                    f64::INFINITY
                } else {
                    f64::from(e.capacity.transcode_slots.saturating_sub(e.units()))
                };
            }
        }
        out
    }
}
