//! The sharded per-agent capacity ledger.
//!
//! A [`SystemState`](vc_core::SystemState) is a closed world: its
//! capacity checks only see the sessions of its own instance. The
//! orchestrator instead treats agent capacity as a *shared, contended*
//! resource: every live session holds an explicit reservation
//! (bandwidth + transcoding slots per agent), taken and released
//! atomically as sessions are admitted, migrated, and torn down —
//! possibly from many worker threads at once.
//!
//! Agents are partitioned into shards, each behind its own lock, so
//! concurrent reservations contend only when they touch the same shard —
//! the structure every future scaling PR (async runtime, multi-region
//! fleets) builds on. A multi-agent reservation locks the shards it
//! spans in ascending order (deadlock-free) and is all-or-nothing.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use vc_core::{AgentTotals, SystemState, UapProblem, CAPACITY_EPS};
use vc_model::{AgentId, Capacity, SessionId};

/// One agent's worth of a session's reservation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentHold {
    /// The agent held on.
    pub agent: AgentId,
    /// Reserved download bandwidth (Mbps), constraint (5).
    pub download_mbps: f64,
    /// Reserved upload bandwidth (Mbps), constraint (6).
    pub upload_mbps: f64,
    /// Reserved transcoding units, constraint (7).
    pub transcode_units: u32,
}

/// A session's complete reservation: one [`AgentHold`] per agent it
/// touches (sparse — most sessions touch a handful of agents).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SessionHold {
    /// Per-agent holds, ascending by agent id.
    pub holds: Vec<AgentHold>,
}

impl SessionHold {
    /// Extracts the reservation implied by a session's evaluated load
    /// (sparse: only the agents the load touches are scanned).
    pub fn from_load(load: &vc_core::SessionLoad) -> Self {
        let mut holds = Vec::new();
        for &a in &load.touched {
            let i = a as usize;
            let (d, u, t) = (load.download[i], load.upload[i], load.transcode_units[i]);
            if d > 0.0 || u > 0.0 || t > 0 {
                holds.push(AgentHold {
                    agent: AgentId::from(i),
                    download_mbps: d,
                    upload_mbps: u,
                    transcode_units: t,
                });
            }
        }
        Self { holds }
    }

    /// Whether the hold reserves nothing.
    pub fn is_empty(&self) -> bool {
        self.holds.is_empty()
    }
}

/// Why a reservation was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerError {
    /// An agent lacks the requested resource.
    Insufficient {
        /// The constrained agent.
        agent: AgentId,
        /// Which resource ran out: `"download"`, `"upload"` or `"transcode"`.
        resource: &'static str,
    },
    /// An agent in the request is marked failed.
    AgentDown(AgentId),
    /// The session already holds a reservation (admit without depart).
    AlreadyHeld(SessionId),
    /// The session holds nothing (release/swap without admit).
    NotHeld(SessionId),
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Insufficient { agent, resource } => {
                write!(f, "agent {agent} has insufficient {resource}")
            }
            Self::AgentDown(a) => write!(f, "agent {a} is down"),
            Self::AlreadyHeld(s) => write!(f, "session {s} already holds a reservation"),
            Self::NotHeld(s) => write!(f, "session {s} holds no reservation"),
        }
    }
}

/// One agent's booked totals. The reserved fields are atomics:
/// *mutation* happens only while the owning shard lock is held (so
/// read-modify-write needs no CAS), while *readers* — per-hop residual
/// snapshots, telemetry, the audit — load them lock-free. Each field is
/// individually consistent; cross-field consistency for mutators comes
/// from the shard lock, and the audit runs under the fleet's FREEZE
/// write lock, which quiesces all mutators.
#[derive(Debug)]
struct AgentEntry {
    capacity: Capacity,
    /// `f64` bit pattern of the reserved download bandwidth (Mbps).
    reserved_download: AtomicU64,
    /// `f64` bit pattern of the reserved upload bandwidth (Mbps).
    reserved_upload: AtomicU64,
    reserved_units: AtomicU32,
    available: AtomicBool,
}

impl AgentEntry {
    fn download(&self) -> f64 {
        f64::from_bits(self.reserved_download.load(Ordering::Relaxed))
    }

    fn upload(&self) -> f64 {
        f64::from_bits(self.reserved_upload.load(Ordering::Relaxed))
    }

    fn units(&self) -> u32 {
        self.reserved_units.load(Ordering::Relaxed)
    }

    fn is_up(&self) -> bool {
        self.available.load(Ordering::Relaxed)
    }

    fn fits(&self, hold: &AgentHold) -> Result<(), &'static str> {
        if self.download() + hold.download_mbps > self.capacity.download_mbps + CAPACITY_EPS {
            return Err("download");
        }
        if self.upload() + hold.upload_mbps > self.capacity.upload_mbps + CAPACITY_EPS {
            return Err("upload");
        }
        if self.units() + hold.transcode_units > self.capacity.transcode_slots {
            return Err("transcode");
        }
        Ok(())
    }

    /// Caller holds the owning shard lock.
    fn add(&self, hold: &AgentHold) {
        self.reserved_download.store(
            (self.download() + hold.download_mbps).to_bits(),
            Ordering::Relaxed,
        );
        self.reserved_upload.store(
            (self.upload() + hold.upload_mbps).to_bits(),
            Ordering::Relaxed,
        );
        self.reserved_units
            .store(self.units() + hold.transcode_units, Ordering::Relaxed);
    }

    /// Caller holds the owning shard lock.
    fn remove(&self, hold: &AgentHold) {
        self.reserved_download.store(
            (self.download() - hold.download_mbps).max(0.0).to_bits(),
            Ordering::Relaxed,
        );
        self.reserved_upload.store(
            (self.upload() - hold.upload_mbps).max(0.0).to_bits(),
            Ordering::Relaxed,
        );
        self.reserved_units.store(
            self.units().saturating_sub(hold.transcode_units),
            Ordering::Relaxed,
        );
    }
}

/// Point-in-time utilization of one agent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentUtilization {
    /// The agent.
    pub agent: AgentId,
    /// Reserved download bandwidth (Mbps).
    pub download_mbps: f64,
    /// Reserved upload bandwidth (Mbps).
    pub upload_mbps: f64,
    /// Reserved transcoding units.
    pub transcode_units: u32,
    /// Largest of the three fractional utilizations (0 for unlimited
    /// capacities).
    pub max_fraction: f64,
    /// Whether the agent is up.
    pub available: bool,
}

/// Reusable per-worker residual-capacity buffers for the hop path (see
/// [`CapacityLedger::hop_residuals_into`]).
#[derive(Debug, Default)]
pub struct HopResiduals {
    /// Per-agent free download bandwidth (Mbps; may be negative after a
    /// forced evacuation overshoot).
    pub download: Vec<f64>,
    /// Per-agent free upload bandwidth (Mbps).
    pub upload: Vec<f64>,
    /// Per-agent free transcoding units (`+∞` for unlimited).
    pub transcode: Vec<f64>,
}

/// The sharded ledger. See the module docs.
#[derive(Debug)]
pub struct CapacityLedger {
    /// Per-agent entries, indexed by agent id. Reserved totals are
    /// atomics, so residual snapshots and telemetry read them without
    /// taking any lock — a hop's capacity snapshot costs `L` relaxed
    /// loads instead of a walk over every shard mutex.
    entries: Vec<AgentEntry>,
    /// `shard_locks[i]` serializes mutation of every entry whose
    /// `agent.index() % shard_locks.len() == i`.
    shard_locks: Vec<Mutex<()>>,
    /// Session holds, sharded by session index.
    holdings: Vec<Mutex<HashMap<SessionId, SessionHold>>>,
    num_agents: usize,
}

impl CapacityLedger {
    /// Builds a ledger over the problem's agents, all capacity free.
    /// `num_shards` is clamped to `[1, num_agents]`.
    pub fn new(problem: &UapProblem, num_shards: usize) -> Self {
        let inst = problem.instance();
        let num_agents = inst.num_agents();
        let num_shards = num_shards.clamp(1, num_agents.max(1));
        let entries = inst
            .agent_ids()
            .map(|l| AgentEntry {
                capacity: inst.agent(l).capacity(),
                reserved_download: AtomicU64::new(0.0f64.to_bits()),
                reserved_upload: AtomicU64::new(0.0f64.to_bits()),
                reserved_units: AtomicU32::new(0),
                available: AtomicBool::new(true),
            })
            .collect();
        Self {
            entries,
            shard_locks: (0..num_shards).map(|_| Mutex::new(())).collect(),
            holdings: (0..num_shards)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            num_agents,
        }
    }

    /// Number of shards (for telemetry / tests).
    pub fn num_shards(&self) -> usize {
        self.shard_locks.len()
    }

    fn entry(&self, agent: AgentId) -> &AgentEntry {
        &self.entries[agent.index()]
    }

    fn holding_shard(&self, s: SessionId) -> &Mutex<HashMap<SessionId, SessionHold>> {
        &self.holdings[s.index() % self.holdings.len()]
    }

    /// Locks, in ascending shard order, every shard the hold spans, and
    /// runs `f` with those entries exclusively writable.
    fn with_span<T>(
        &self,
        hold_agents: impl Iterator<Item = AgentId>,
        f: impl FnOnce(&Self) -> T,
    ) -> T {
        let mut shard_ids: Vec<usize> = hold_agents
            .map(|a| a.index() % self.shard_locks.len())
            .collect();
        shard_ids.sort_unstable();
        shard_ids.dedup();
        let _guards: Vec<parking_lot::MutexGuard<'_, ()>> = shard_ids
            .iter()
            .map(|&i| self.shard_locks[i].lock())
            .collect();
        f(self)
    }

    /// Visits every agent entry, lock-free. Each field is individually
    /// consistent; concurrent reservations may land between reads,
    /// which every caller here tolerates (residuals/utilization are
    /// advisory; the audit runs under the fleet's FREEZE write lock,
    /// which quiesces all mutators).
    fn for_each_entry(&self, mut f: impl FnMut(AgentId, &AgentEntry)) {
        for (i, entry) in self.entries.iter().enumerate() {
            f(AgentId::from(i), entry);
        }
    }

    /// Atomically reserves `hold` for `session`: either every agent in
    /// the hold has room (and is up) and all of it is booked, or nothing
    /// is.
    ///
    /// # Errors
    ///
    /// [`LedgerError::AlreadyHeld`] if the session holds a reservation,
    /// [`LedgerError::AgentDown`] / [`LedgerError::Insufficient`] when
    /// some agent cannot take its share.
    pub fn try_reserve(&self, session: SessionId, hold: SessionHold) -> Result<(), LedgerError> {
        let mut holdings = self.holding_shard(session).lock();
        if holdings.contains_key(&session) {
            return Err(LedgerError::AlreadyHeld(session));
        }
        self.with_span(hold.holds.iter().map(|h| h.agent), |view| {
            for h in &hold.holds {
                let entry = view.entry(h.agent);
                if !entry.is_up() {
                    return Err(LedgerError::AgentDown(h.agent));
                }
                if let Err(resource) = entry.fits(h) {
                    return Err(LedgerError::Insufficient {
                        agent: h.agent,
                        resource,
                    });
                }
            }
            for h in &hold.holds {
                view.entry(h.agent).add(h);
            }
            Ok(())
        })?;
        holdings.insert(session, hold);
        Ok(())
    }

    /// Releases the session's reservation, returning exactly what was
    /// held.
    ///
    /// # Errors
    ///
    /// [`LedgerError::NotHeld`] if the session holds nothing.
    pub fn release(&self, session: SessionId) -> Result<SessionHold, LedgerError> {
        let mut holdings = self.holding_shard(session).lock();
        let hold = holdings
            .remove(&session)
            .ok_or(LedgerError::NotHeld(session))?;
        self.with_span(hold.holds.iter().map(|h| h.agent), |view| {
            for h in &hold.holds {
                view.entry(h.agent).remove(h);
            }
        });
        Ok(hold)
    }

    /// Atomically replaces the session's reservation with `new_hold`
    /// **iff** every agent of the new hold still has room after the old
    /// hold is released — the commit point of a *concurrent* HOP, where
    /// the ledger (not a global state lock) arbitrates capacity races
    /// between sessions. On refusal the old hold is restored exactly.
    ///
    /// Availability is deliberately not checked: agent failure is a
    /// coarse-path operation excluded (by the fleet's FREEZE write lock)
    /// while any hop is in flight.
    ///
    /// # Errors
    ///
    /// [`LedgerError::NotHeld`] if the session holds nothing,
    /// [`LedgerError::Insufficient`] when a concurrent reservation beat
    /// this one to the capacity.
    pub fn try_swap(&self, session: SessionId, new_hold: SessionHold) -> Result<(), LedgerError> {
        let mut holdings = self.holding_shard(session).lock();
        let old = holdings
            .get(&session)
            .cloned()
            .ok_or(LedgerError::NotHeld(session))?;
        self.with_span(
            old.holds
                .iter()
                .map(|h| h.agent)
                .chain(new_hold.holds.iter().map(|h| h.agent)),
            |view| {
                for h in &old.holds {
                    view.entry(h.agent).remove(h);
                }
                for h in &new_hold.holds {
                    if let Err(resource) = view.entry(h.agent).fits(h) {
                        for h2 in &old.holds {
                            view.entry(h2.agent).add(h2);
                        }
                        return Err(LedgerError::Insufficient {
                            agent: h.agent,
                            resource,
                        });
                    }
                }
                for h in &new_hold.holds {
                    view.entry(h.agent).add(h);
                }
                Ok(())
            },
        )?;
        holdings.insert(session, new_hold);
        Ok(())
    }

    /// Replaces the session's reservation with `new_hold` *uncondition-
    /// ally* (no capacity check) — the mirror operation for migrations
    /// already validated against the authoritative `SystemState` under
    /// the FREEZE lock, and for forced evacuations, which deliberately
    /// overshoot (service continuity over constraint purity; the
    /// overshoot shows up in [`utilization`](Self::utilization)).
    ///
    /// # Errors
    ///
    /// [`LedgerError::NotHeld`] if the session holds nothing.
    pub fn force_swap(&self, session: SessionId, new_hold: SessionHold) -> Result<(), LedgerError> {
        let mut holdings = self.holding_shard(session).lock();
        let old = holdings
            .get(&session)
            .cloned()
            .ok_or(LedgerError::NotHeld(session))?;
        self.with_span(
            old.holds
                .iter()
                .map(|h| h.agent)
                .chain(new_hold.holds.iter().map(|h| h.agent)),
            |view| {
                for h in &old.holds {
                    view.entry(h.agent).remove(h);
                }
                for h in &new_hold.holds {
                    view.entry(h.agent).add(h);
                }
            },
        );
        holdings.insert(session, new_hold);
        Ok(())
    }

    /// The hold currently booked for `session`, if any.
    pub fn hold_of(&self, session: SessionId) -> Option<SessionHold> {
        self.holding_shard(session).lock().get(&session).cloned()
    }

    /// Every booked reservation, ascending by session id — the ledger
    /// half of a durable snapshot. Consistent per holding shard; for a
    /// globally consistent view call under the fleet's FREEZE lock,
    /// which serializes all mutations.
    pub fn holdings(&self) -> Vec<(SessionId, SessionHold)> {
        let mut out: Vec<(SessionId, SessionHold)> = self
            .holdings
            .iter()
            .flat_map(|h| {
                h.lock()
                    .iter()
                    .map(|(s, hold)| (*s, hold.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_unstable_by_key(|(s, _)| *s);
        out
    }

    /// Books `hold` for `session` *without* re-checking capacity — the
    /// admission engine already proved the placement fits against this
    /// ledger's residuals under the exclusive FREEZE lock, so a second
    /// epsilon-sensitive check could only disagree spuriously. The
    /// engine is the authority; the ledger mirrors it.
    ///
    /// # Errors
    ///
    /// [`LedgerError::AlreadyHeld`] if the session already holds a
    /// reservation (an admit/activate invariant breach).
    pub(crate) fn book_unchecked(
        &self,
        session: SessionId,
        hold: SessionHold,
    ) -> Result<(), LedgerError> {
        self.restore_hold(session, hold)
    }

    /// Books `hold` for `session` *without* capacity or availability
    /// checks — the crash-recovery path re-installing a snapshot's
    /// holdings, which may legitimately overshoot (forced evacuations)
    /// and may sit on failed agents. Validity is established afterwards
    /// by the recovery audit, not here.
    ///
    /// # Errors
    ///
    /// [`LedgerError::AlreadyHeld`] if the session already holds a
    /// reservation.
    pub(crate) fn restore_hold(
        &self,
        session: SessionId,
        hold: SessionHold,
    ) -> Result<(), LedgerError> {
        let mut holdings = self.holding_shard(session).lock();
        if holdings.contains_key(&session) {
            return Err(LedgerError::AlreadyHeld(session));
        }
        self.with_span(hold.holds.iter().map(|h| h.agent), |view| {
            for h in &hold.holds {
                view.entry(h.agent).add(h);
            }
        });
        holdings.insert(session, hold);
        Ok(())
    }

    /// Number of sessions holding reservations.
    pub fn live_sessions(&self) -> usize {
        self.holdings.iter().map(|h| h.lock().len()).sum()
    }

    /// Marks an agent failed: new reservations touching it are refused.
    /// Existing holds stay booked until their sessions migrate or depart.
    pub fn fail_agent(&self, agent: AgentId) {
        self.entry(agent).available.store(false, Ordering::Relaxed);
    }

    /// Brings a failed agent back.
    pub fn restore_agent(&self, agent: AgentId) {
        self.entry(agent).available.store(true, Ordering::Relaxed);
    }

    /// Whether the agent is up.
    pub fn is_agent_available(&self, agent: AgentId) -> bool {
        self.entry(agent).is_up()
    }

    /// Point-in-time utilization of every agent.
    pub fn utilization(&self) -> Vec<AgentUtilization> {
        let mut out: Vec<Option<AgentUtilization>> = vec![None; self.num_agents];
        self.for_each_entry(|agent, e| {
            let frac = |used: f64, cap: f64| {
                if cap.is_finite() && cap > 0.0 {
                    used / cap
                } else {
                    0.0
                }
            };
            let units = e.units();
            let slot_frac = if e.capacity.transcode_slots == u32::MAX {
                0.0
            } else if e.capacity.transcode_slots == 0 {
                f64::from(units.min(1))
            } else {
                f64::from(units) / f64::from(e.capacity.transcode_slots)
            };
            out[agent.index()] = Some(AgentUtilization {
                agent,
                download_mbps: e.download(),
                upload_mbps: e.upload(),
                transcode_units: units,
                max_fraction: frac(e.download(), e.capacity.download_mbps)
                    .max(frac(e.upload(), e.capacity.upload_mbps))
                    .max(slot_frac),
                available: e.is_up(),
            });
        });
        out.into_iter()
            .map(|u| u.expect("every agent visited"))
            .collect()
    }

    /// The worst per-agent capacity *overshoot*: how far past 1.0 the
    /// most-loaded agent's utilization sits (0.0 when every agent is
    /// within capacity). Nonzero only after forced evacuation moves —
    /// the admission and hop paths never overbook — so this gauge is
    /// the direct readout of how much un-healed displacement debt the
    /// fleet is carrying.
    pub fn max_overshoot_fraction(&self) -> f64 {
        self.utilization()
            .iter()
            .map(|u| (u.max_fraction - 1.0).max(0.0))
            .fold(0.0, f64::max)
    }

    /// Conservation audit against the authoritative state: per agent,
    /// the booked reservations must equal the state's live
    /// [`AgentTotals`] (within float slack), and the set of holding
    /// sessions must equal the active set. Returns human-readable
    /// discrepancies (empty = conserved).
    pub fn audit_against(&self, state: &SystemState) -> Vec<String> {
        let mut active: Vec<SessionId> = state.active_sessions().collect();
        active.sort_unstable();
        self.audit_against_totals(state.totals(), &active)
    }

    /// [`audit_against`](Self::audit_against) on raw totals + an
    /// ascending active-session list — the form the sharded fleet uses
    /// (it sums per-session slot loads instead of keeping a global
    /// `SystemState`).
    pub fn audit_against_totals(&self, totals: &AgentTotals, active: &[SessionId]) -> Vec<String> {
        let mut problems = Vec::new();
        self.for_each_entry(|agent, e| {
            let i = agent.index();
            if (e.download() - totals.download[i]).abs() > 1e-3 {
                problems.push(format!(
                    "agent {agent}: ledger download {:.4} != state {:.4}",
                    e.download(),
                    totals.download[i]
                ));
            }
            if (e.upload() - totals.upload[i]).abs() > 1e-3 {
                problems.push(format!(
                    "agent {agent}: ledger upload {:.4} != state {:.4}",
                    e.upload(),
                    totals.upload[i]
                ));
            }
            if e.units() != totals.transcode[i] {
                problems.push(format!(
                    "agent {agent}: ledger units {} != state {}",
                    e.units(),
                    totals.transcode[i]
                ));
            }
        });
        let mut held: Vec<SessionId> = self
            .holdings
            .iter()
            .flat_map(|h| h.lock().keys().copied().collect::<Vec<_>>())
            .collect();
        held.sort_unstable();
        if held != active {
            problems.push(format!(
                "holding sessions {held:?} != active sessions {active:?}"
            ));
        }
        problems
    }

    /// Fills `out` with availability-*blind* residual capacities
    /// (`capacity − reserved`, `+∞` for unlimited resources) — the
    /// per-hop capacity snapshot. Hops check `new − old ≤ residual`,
    /// which mirrors the closed-world `totals − old + new ≤ capacity`
    /// check; failed agents are excluded separately (only as *targets*),
    /// so load already sitting on a down agent may still be carried by
    /// moves that do not increase it. Lock-free: `L` relaxed atomic
    /// loads, no allocation after warm-up.
    pub fn hop_residuals_into(&self, out: &mut HopResiduals) {
        out.download.clear();
        out.download.resize(self.num_agents, 0.0);
        out.upload.clear();
        out.upload.resize(self.num_agents, 0.0);
        out.transcode.clear();
        out.transcode.resize(self.num_agents, 0.0);
        self.for_each_entry(|agent, e| {
            let i = agent.index();
            out.download[i] = e.capacity.download_mbps - e.download();
            out.upload[i] = e.capacity.upload_mbps - e.upload();
            out.transcode[i] = if e.capacity.transcode_slots == u32::MAX {
                f64::INFINITY
            } else {
                f64::from(e.capacity.transcode_slots) - f64::from(e.units())
            };
        });
    }

    /// The booked per-agent reservation totals as [`AgentTotals`] —
    /// the live-fleet mirror of `SystemState::totals`. Lock-free (`L`
    /// relaxed loads per resource); globally consistent when called
    /// under the fleet's FREEZE write lock, which quiesces mutators.
    /// Feeding these through `Residuals::from_totals` gives the
    /// admission engine the same residual shape the offline world
    /// derives from a closed-world state.
    pub fn reserved_totals(&self) -> AgentTotals {
        let mut totals = AgentTotals::zero(self.num_agents);
        self.for_each_entry(|agent, e| {
            let i = agent.index();
            totals.download[i] = e.download();
            totals.upload[i] = e.upload();
            totals.transcode[i] = e.units();
        });
        totals
    }

    /// Residual capacities in the shape `vc-algo`'s AgRank consumes
    /// (infinite for unlimited agents; zero for failed ones so the
    /// ranking never proposes them).
    pub fn residuals(&self) -> vc_algo::agrank::Residuals {
        let mut download = vec![0.0; self.num_agents];
        let mut upload = vec![0.0; self.num_agents];
        let mut transcode = vec![0.0; self.num_agents];
        self.for_each_entry(|agent, e| {
            if e.is_up() {
                let i = agent.index();
                download[i] = e.capacity.download_mbps - e.download();
                upload[i] = e.capacity.upload_mbps - e.upload();
                transcode[i] = if e.capacity.transcode_slots == u32::MAX {
                    f64::INFINITY
                } else {
                    f64::from(e.capacity.transcode_slots.saturating_sub(e.units()))
                };
            }
        });
        vc_algo::agrank::Residuals {
            download,
            upload,
            transcode,
        }
    }
}
