//! Shared fixtures for the crate's unit tests.

use vc_core::UapProblem;
use vc_cost::CostModel;
use vc_model::{AgentSpec, InstanceBuilder, ReprLadder};

/// Two agents, one session (u0 720p→360p demand, u1 360p→360p), one task.
pub fn single_task_problem() -> UapProblem {
    let ladder = ReprLadder::standard_four();
    let r360 = ladder.by_name("360p").unwrap().id();
    let r720 = ladder.by_name("720p").unwrap().id();
    let mut b = InstanceBuilder::new(ladder);
    b.add_agent(AgentSpec::builder("a").build());
    b.add_agent(AgentSpec::builder("b").speed_factor(1.5).build());
    let s = b.add_session();
    b.add_user(s, r720, r360);
    b.add_user(s, r360, r360);
    b.symmetric_delays(|_, _| 40.0, |l, u| 10.0 + 15.0 * ((l + u) % 2) as f64);
    UapProblem::new(b.build().unwrap(), CostModel::paper_default())
}

/// Three agents; u0 (720p) fans out to u1 and u2, who both demand 360p —
/// two tasks sharing one (source, target) group.
pub fn fan_out_problem() -> UapProblem {
    let ladder = ReprLadder::standard_four();
    let r360 = ladder.by_name("360p").unwrap().id();
    let r720 = ladder.by_name("720p").unwrap().id();
    let mut b = InstanceBuilder::new(ladder);
    b.add_agent(AgentSpec::builder("a").build());
    b.add_agent(AgentSpec::builder("b").build());
    b.add_agent(AgentSpec::builder("c").build());
    let s = b.add_session();
    b.add_user(s, r720, r360);
    b.add_user(s, r360, r360);
    b.add_user(s, r360, r360);
    b.symmetric_delays(|_, _| 25.0, |l, u| 5.0 + 7.0 * ((l * 2 + u) % 3) as f64);
    UapProblem::new(b.build().unwrap(), CostModel::paper_default())
}

/// The Fig. 2 scenario wrapped as a problem (via `vc-net`'s measured data).
pub fn fig2_like_problem() -> UapProblem {
    UapProblem::new(vc_net::fig2::instance(), CostModel::paper_default())
}

/// The Fig. 3 example space: 1 session, 2 users, 1 transcoding task,
/// 2 agents — `2³ = 8` feasible assignments forming a cube.
pub fn fig3_like_problem() -> UapProblem {
    let ladder = ReprLadder::standard_four();
    let r360 = ladder.by_name("360p").unwrap().id();
    let r480 = ladder.by_name("480p").unwrap().id();
    let r720 = ladder.by_name("720p").unwrap().id();
    let mut b = InstanceBuilder::new(ladder);
    b.add_agent(AgentSpec::builder("l1").build());
    b.add_agent(AgentSpec::builder("l2").speed_factor(1.4).build());
    let s = b.add_session();
    b.add_user(s, r720, r360); // u0: upstream transcoded for u1
    b.add_user(s, r360, r480); // u1 demands 480p of u0's 720p → one task
    b.symmetric_delays(|_, _| 35.0, |l, u| 12.0 + 9.0 * ((l + u) % 2) as f64);
    UapProblem::new(b.build().unwrap(), CostModel::paper_default())
}

/// Three sessions of two 720p users each; three agents with last-mile
/// capacity for exactly one session each; every user is nearest to agent
/// A. Nrst piles everyone on A and fails after one session; AgRank#2
/// reaches B; AgRank#3 also reaches C and admits everything.
pub fn scarce_capacity_problem() -> UapProblem {
    let ladder = ReprLadder::standard_four();
    let r720 = ladder.by_name("720p").unwrap().id();
    let mut b = InstanceBuilder::new(ladder);
    for name in ["a", "b", "c"] {
        b.add_agent(
            AgentSpec::builder(name)
                .download_mbps(11.0)
                .upload_mbps(11.0)
                .transcode_slots(1)
                .build(),
        );
    }
    for _ in 0..3 {
        let s = b.add_session();
        b.add_user(s, r720, r720);
        b.add_user(s, r720, r720);
    }
    // Everyone is nearest to A (5 ms), then B (10 ms), then C (15 ms).
    b.symmetric_delays(
        |l, k| 20.0 * ((l as f64) - (k as f64)).abs(),
        |l, _| 5.0 + 5.0 * l as f64,
    );
    UapProblem::new(b.build().unwrap(), CostModel::paper_default())
}
