//! Assignment algorithms of the paper, plus exact baselines.
//!
//! * [`nearest`] — the **Nrst** policy (users to their lowest-latency
//!   agent), the user-placement rule of Airlift and vSkyConf and the
//!   paper's comparison baseline;
//! * [`placement`] — the transcoding-task rule of thumb of Sec. IV-B
//!   (shared-target groups at the source agent, singletons at the
//!   destination agent);
//! * [`agrank`] — **Alg. 2, AgRank**: proximity- and resource-aware agent
//!   ranking by random walk over the normalized inter-agent delay matrix;
//! * [`admission`] — sequential session admission under capacity limits
//!   (the success-rate experiments of Fig. 9);
//! * [`markov`] — **Alg. 1**: the Markov-approximation assignment
//!   algorithm (per-session WAIT/HOP with Gibbs-weighted migration);
//! * [`churn`] — agent-failure evacuation: immediate relocation of the
//!   users/tasks of a failed agent, feasibility-aware with forced
//!   fallback;
//! * [`brute_force`] — exact enumeration of the feasible set `F`, the true
//!   optimum, and a bridge to `vc-markov`'s exact chain analysis;
//! * [`local_search`] — greedy steepest-descent baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod agrank;
pub mod brute_force;
pub mod churn;
pub mod local_search;
pub mod markov;
pub mod min_delay;
pub mod nearest;
pub mod placement;

pub use admission::{
    admit_all, AdmissionConfig, AdmissionDecision, AdmissionDiagnostics, AdmissionEngine,
    AdmissionFailure, AdmissionOutcome, AdmissionPolicy, AdmissionStats, AdmissionTier,
};
pub use agrank::{AgRankConfig, AgentRanking};
pub use brute_force::Enumeration;
pub use markov::{Alg1Config, Alg1Engine};

#[cfg(test)]
pub(crate) mod test_fixtures;
