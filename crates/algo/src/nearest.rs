//! The Nrst baseline: nearest-agent user assignment.
//!
//! Airlift \[11\] and vSkyConf \[21\] subscribe every user to the agent
//! with the lowest measured user-to-agent delay, obliviously to where the
//! other session participants are. Transcoding tasks are then placed by
//! the same rule of thumb AgRank uses, so comparisons against AgRank and
//! Alg. 1 isolate the effect of *user* placement.

use crate::placement;
use vc_core::{Assignment, UapProblem};
use vc_model::AgentId;

/// Builds the nearest-agent assignment for all users (and rule-of-thumb
/// transcoding placement).
pub fn nearest_assignment(problem: &UapProblem) -> Assignment {
    let inst = problem.instance();
    let user_agent: Vec<AgentId> = inst
        .user_ids()
        .map(|u| inst.delays().nearest_agent(u))
        .collect();
    let task_agent = placement::rule_of_thumb(problem, &user_agent);
    Assignment::new(problem, user_agent, task_agent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::fig2_like_problem;
    use vc_model::UserId;

    #[test]
    fn users_go_to_their_nearest_agents() {
        let p = fig2_like_problem();
        let asg = nearest_assignment(&p);
        let inst = p.instance();
        for u in inst.user_ids() {
            let assigned = asg.agent_of_user(u);
            for l in inst.agent_ids() {
                assert!(
                    inst.h_ms(assigned, u) <= inst.h_ms(l, u) + 1e-12,
                    "user {u}: {assigned} not nearest"
                );
            }
        }
    }

    #[test]
    fn fig2_nearest_sends_user4_to_singapore() {
        // The paper's motivating observation: Nrst puts user 4 [HK] on SG.
        let p = fig2_like_problem();
        let asg = nearest_assignment(&p);
        assert_eq!(asg.agent_of_user(UserId::new(3)), AgentId::new(2));
    }
}
