//! Alg. 1: the Markov approximation-based parallel assignment algorithm.
//!
//! Each session runs an independent WAIT/HOP loop at its initiator's
//! agent:
//!
//! * **WAIT** — draw an exponentially distributed countdown with mean
//!   `1/τ` (10 s in the prototype); FREEZE/UNFREEZE messages pause the
//!   countdown while another session migrates, serializing hops;
//! * **HOP** — fetch residual capacities, enumerate the feasible
//!   assignments differing in exactly one decision, and migrate to `f'`
//!   with probability proportional to `exp(½β(Φ_{s,f} − Φ_{s,f'}))`
//!   (the current assignment keeps weight `exp(0) = 1`).
//!
//! Only the session's *local* objective enters the transition weight, so
//! the algorithm parallelizes across sessions (the paper's key design
//! point). With noisy objective measurements the weights use perturbed
//! values `Φ + ε`, ε drawn from the Theorem-1 quantized noise model.

use rand::Rng;
use vc_core::{Decision, EvalScratch, SystemState};
use vc_markov::perturb::NoiseSpec;
use vc_model::{AgentId, SessionId};

/// Exponent clamp for the Gibbs weights (β·ΔΦ can overflow `exp`).
const MAX_EXPONENT: f64 = 600.0;

/// Configuration of Alg. 1.
#[derive(Debug, Clone)]
pub struct Alg1Config {
    /// Inverse temperature β. The paper uses 400, "proportional to the
    /// logarithm of the problem state space".
    pub beta: f64,
    /// Mean countdown (seconds) between HOPs of one session; τ = 1/mean.
    pub mean_countdown_s: f64,
    /// Optional measurement noise applied to every observed `Φ_s` value.
    pub noise: Option<NoiseSpec>,
}

impl Alg1Config {
    /// The prototype configuration: β as given, 10-second mean countdown,
    /// no measurement noise.
    pub fn paper(beta: f64) -> Self {
        Self {
            beta,
            mean_countdown_s: 10.0,
            noise: None,
        }
    }

    /// Chooses β "proportional to the logarithm of the problem state
    /// space" — `scale · (U+θ_sum)·log L` — as the paper prescribes.
    pub fn beta_for_state_space(problem: &vc_core::UapProblem, scale: f64) -> f64 {
        scale * problem.log_state_space().max(1.0)
    }
}

impl Default for Alg1Config {
    fn default() -> Self {
        Self::paper(400.0)
    }
}

/// The outcome of one HOP invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HopOutcome {
    /// The session migrated by one decision.
    Migrated(Decision),
    /// The session kept its current assignment (self-transition).
    Stayed,
    /// No feasible alternative assignment existed.
    NoFeasibleMove,
}

/// Reusable per-worker buffers for the allocation-free HOP path: the
/// evaluation scratch plus the feasible-candidate and Gibbs-weight
/// vectors. One per worker thread; steady-state hops allocate nothing.
#[derive(Debug, Default)]
pub struct HopScratch {
    /// Candidate evaluation buffers (shared with the caller's own
    /// evaluation needs, e.g. the orchestrator's slot-based hop).
    pub eval: EvalScratch,
    /// Feasible decisions of the current neighborhood, in enumeration
    /// order.
    pub decisions: Vec<Decision>,
    /// The (possibly noise-observed) `Φ_s` of each feasible decision.
    pub phis: Vec<f64>,
    /// Gibbs exponents (`exponents[0]` is the stay option).
    pub exponents: Vec<f64>,
}

impl HopScratch {
    /// An empty scratch; buffers size themselves on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The per-session Markov hopping engine.
#[derive(Debug, Clone)]
pub struct Alg1Engine {
    config: Alg1Config,
}

impl Alg1Engine {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if `β < 0` or the mean countdown is not positive.
    pub fn new(config: Alg1Config) -> Self {
        assert!(config.beta >= 0.0, "beta must be non-negative");
        assert!(
            config.mean_countdown_s > 0.0,
            "mean countdown must be positive"
        );
        Self { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &Alg1Config {
        &self.config
    }

    /// Draws the next WAIT countdown (exponential, mean `1/τ`).
    pub fn next_countdown<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -rng.gen::<f64>().max(1e-300).ln() * self.config.mean_countdown_s
    }

    /// Executes one HOP for session `s` (Lines 9–15 of Alg. 1): samples a
    /// target assignment among the feasible single-decision neighbors
    /// (plus staying put) with Gibbs weights on the session's local
    /// objective, and applies it.
    pub fn hop<R: Rng + ?Sized>(
        &self,
        state: &mut SystemState,
        s: SessionId,
        rng: &mut R,
    ) -> HopOutcome {
        self.hop_with_beta(state, s, self.config.beta, rng)
    }

    /// [`hop`](Self::hop) with an explicit β — the primitive behind
    /// annealed schedules, where β grows over time to tighten the
    /// optimality gap (Eq. 12) after the chain has explored.
    pub fn hop_with_beta<R: Rng + ?Sized>(
        &self,
        state: &mut SystemState,
        s: SessionId,
        beta: f64,
        rng: &mut R,
    ) -> HopOutcome {
        let mut scratch = HopScratch::new();
        self.hop_with_beta_scratch(state, s, beta, rng, &mut scratch)
    }

    /// [`hop`](Self::hop) reusing caller-owned buffers — the
    /// allocation-free form worker pools drive.
    pub fn hop_scratch<R: Rng + ?Sized>(
        &self,
        state: &mut SystemState,
        s: SessionId,
        rng: &mut R,
        scratch: &mut HopScratch,
    ) -> HopOutcome {
        self.hop_with_beta_scratch(state, s, self.config.beta, rng, scratch)
    }

    /// The HOP primitive: enumerates the feasible single-decision
    /// neighbors through `scratch` (overlay evaluation, no assignment
    /// clone, no per-candidate allocation), Gibbs-samples over
    /// {stay} ∪ neighbors, and commits the chosen move by swapping the
    /// evaluated load into the state.
    pub fn hop_with_beta_scratch<R: Rng + ?Sized>(
        &self,
        state: &mut SystemState,
        s: SessionId,
        beta: f64,
        rng: &mut R,
        scratch: &mut HopScratch,
    ) -> HopOutcome {
        scratch.decisions.clear();
        scratch.phis.clear();
        {
            let problem = state.problem().clone();
            let inst = problem.instance();
            let nl = inst.num_agents();
            let consider = |decision: Decision, scratch: &mut HopScratch| {
                if state.candidate_into(decision, &mut scratch.eval).is_ok() {
                    scratch.decisions.push(decision);
                    scratch.phis.push(scratch.eval.load().phi);
                }
            };
            for &u in inst.session(s).users() {
                let current = state.assignment().agent_of_user(u);
                for l in 0..nl {
                    let l = AgentId::from(l);
                    if l != current {
                        consider(Decision::User(u, l), scratch);
                    }
                }
            }
            for &t in problem.tasks().of_session(s) {
                let current = state.assignment().agent_of_task(t);
                for l in 0..nl {
                    let l = AgentId::from(l);
                    if l != current {
                        consider(Decision::Task(t, l), scratch);
                    }
                }
            }
        }
        if scratch.decisions.is_empty() {
            return HopOutcome::NoFeasibleMove;
        }
        let phi_now = self.observe(state.session_objective(s), rng);
        for phi in &mut scratch.phis {
            *phi = self.observe(*phi, rng);
        }
        let chosen = self.gibbs_select(beta, phi_now, &scratch.phis, &mut scratch.exponents, rng);
        if chosen == 0 {
            return HopOutcome::Stayed;
        }
        let decision = scratch.decisions[chosen - 1];
        match state.candidate_into(decision, &mut scratch.eval) {
            Ok(()) => {
                state.commit_scratch(decision, &mut scratch.eval);
                HopOutcome::Migrated(decision)
            }
            // Cannot happen single-threaded (the candidate was feasible a
            // moment ago), but stay put rather than corrupt the state.
            Err(_) => HopOutcome::Stayed,
        }
    }

    /// Applies the configured measurement-noise model to one observed
    /// `Φ` value (identity — and no RNG consumption — without noise).
    pub fn observe<R: Rng + ?Sized>(&self, phi: f64, rng: &mut R) -> f64 {
        match &self.config.noise {
            Some(noise) => phi + noise.sample_offset(rng),
            None => phi,
        }
    }

    /// Stable Gibbs sampling over {stay} ∪ candidates: exponent_i =
    /// ½β(Φ_now − Φ_i), stay has exponent 0. Returns the chosen index
    /// (0 = stay, `i > 0` = `phis[i − 1]`). `exponents` is a reusable
    /// buffer; one `rng.gen::<f64>()` is consumed.
    pub fn gibbs_select<R: Rng + ?Sized>(
        &self,
        beta: f64,
        phi_now: f64,
        phis: &[f64],
        exponents: &mut Vec<f64>,
        rng: &mut R,
    ) -> usize {
        exponents.clear();
        exponents.push(0.0);
        for &phi_m in phis {
            exponents.push((0.5 * beta * (phi_now - phi_m)).clamp(-MAX_EXPONENT, MAX_EXPONENT));
        }
        let max_e = exponents.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // Exponents become weights in place: one `exp` per candidate.
        let mut total = 0.0;
        for e in exponents.iter_mut() {
            *e = (*e - max_e).exp();
            total += *e;
        }
        let mut x = rng.gen::<f64>() * total;
        for (i, w) in exponents.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        0
    }

    /// Runs the full asynchronous algorithm over all active sessions for
    /// `duration_s` simulated seconds: every session waits an exponential
    /// countdown and hops, hops being serialized (the FREEZE semantics).
    /// Returns the hop log as `(time, session, outcome)`.
    pub fn run<R: Rng + ?Sized>(
        &self,
        state: &mut SystemState,
        duration_s: f64,
        rng: &mut R,
    ) -> Vec<(f64, SessionId, HopOutcome)> {
        self.run_with_schedule(state, duration_s, rng, |_| self.config.beta)
    }

    /// [`run`](Self::run) with a linearly annealed β: starts exploratory
    /// at `beta_from` and tightens to `beta_to` by the end of the run —
    /// the simulated-annealing-style schedule the Markov approximation
    /// literature suggests for faster convergence at the same final gap.
    pub fn run_annealed<R: Rng + ?Sized>(
        &self,
        state: &mut SystemState,
        duration_s: f64,
        beta_from: f64,
        beta_to: f64,
        rng: &mut R,
    ) -> Vec<(f64, SessionId, HopOutcome)> {
        self.run_with_schedule(state, duration_s, rng, |t| {
            beta_from + (beta_to - beta_from) * (t / duration_s).clamp(0.0, 1.0)
        })
    }

    fn run_with_schedule<R: Rng + ?Sized>(
        &self,
        state: &mut SystemState,
        duration_s: f64,
        rng: &mut R,
        beta_at: impl Fn(f64) -> f64,
    ) -> Vec<(f64, SessionId, HopOutcome)> {
        let sessions: Vec<SessionId> = state.active_sessions().collect();
        let mut wakes: Vec<(f64, SessionId)> = sessions
            .iter()
            .map(|&s| (self.next_countdown(rng), s))
            .collect();
        let mut log = Vec::new();
        let mut scratch = HopScratch::new();
        while let Some((idx, &(t, s))) = wakes
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("finite times"))
        {
            if t > duration_s {
                break;
            }
            let outcome = self.hop_with_beta_scratch(state, s, beta_at(t), rng, &mut scratch);
            log.push((t, s, outcome));
            wakes[idx] = (t + self.next_countdown(rng), s);
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{fig2_like_problem, single_task_problem};
    use rand::{rngs::StdRng, SeedableRng};
    use std::sync::Arc;
    use vc_core::Assignment;
    use vc_model::AgentId;

    fn fig2_state() -> SystemState {
        let p = Arc::new(fig2_like_problem());
        let asg = crate::nearest::nearest_assignment(&p);
        SystemState::new(p, asg)
    }

    #[test]
    fn hop_preserves_feasibility() {
        let mut st = fig2_state();
        let engine = Alg1Engine::new(Alg1Config::paper(50.0));
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            engine.hop(&mut st, SessionId::new(0), &mut rng);
            assert!(st.is_feasible());
        }
    }

    #[test]
    fn high_beta_descends_objective() {
        let mut st = fig2_state();
        let start = st.objective();
        let engine = Alg1Engine::new(Alg1Config::paper(2000.0));
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..300 {
            engine.hop(&mut st, SessionId::new(0), &mut rng);
        }
        assert!(
            st.objective() < start,
            "objective did not improve: {start} → {}",
            st.objective()
        );
    }

    #[test]
    fn beta_zero_hops_uniformly() {
        // With β = 0 every neighbor (and staying) has equal weight; the
        // chain must migrate sometimes and stay sometimes.
        let p = Arc::new(single_task_problem());
        let asg = Assignment::all_to_agent(&p, AgentId::new(0));
        let mut st = SystemState::new(p, asg);
        let engine = Alg1Engine::new(Alg1Config {
            beta: 0.0,
            mean_countdown_s: 1.0,
            noise: None,
        });
        let mut rng = StdRng::seed_from_u64(11);
        let mut migrated = 0;
        let mut stayed = 0;
        for _ in 0..300 {
            match engine.hop(&mut st, SessionId::new(0), &mut rng) {
                HopOutcome::Migrated(_) => migrated += 1,
                HopOutcome::Stayed => stayed += 1,
                HopOutcome::NoFeasibleMove => {}
            }
        }
        assert!(migrated > 50, "migrated only {migrated}");
        assert!(stayed > 20, "stayed only {stayed}");
    }

    #[test]
    fn countdowns_are_exponential_with_requested_mean() {
        let engine = Alg1Engine::new(Alg1Config::paper(400.0));
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| engine.next_countdown(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean countdown {mean}");
    }

    #[test]
    fn run_serializes_hops_in_time_order() {
        let mut st = fig2_state();
        let engine = Alg1Engine::new(Alg1Config::paper(400.0));
        let mut rng = StdRng::seed_from_u64(13);
        let log = engine.run(&mut st, 120.0, &mut rng);
        assert!(!log.is_empty());
        for w in log.windows(2) {
            assert!(w[0].0 <= w[1].0, "log out of order");
        }
        assert!(log.iter().all(|(t, _, _)| *t <= 120.0));
        assert!(st.is_feasible());
    }

    #[test]
    fn annealed_run_reaches_low_objective() {
        let mut st = fig2_state();
        let engine = Alg1Engine::new(Alg1Config::paper(400.0));
        let mut rng = StdRng::seed_from_u64(21);
        let start = st.objective();
        let log = engine.run_annealed(&mut st, 300.0, 10.0, 2000.0, &mut rng);
        assert!(!log.is_empty());
        assert!(st.objective() < start);
        assert!(st.is_feasible());
    }

    #[test]
    fn hop_with_beta_zero_equals_uniform_weights() {
        // hop() with config β must equal hop_with_beta(config.beta).
        let engine = Alg1Engine::new(Alg1Config::paper(700.0));
        let mut a = fig2_state();
        let mut b = fig2_state();
        let mut rng_a = StdRng::seed_from_u64(33);
        let mut rng_b = StdRng::seed_from_u64(33);
        for _ in 0..50 {
            let oa = engine.hop(&mut a, SessionId::new(0), &mut rng_a);
            let ob = engine.hop_with_beta(&mut b, SessionId::new(0), 700.0, &mut rng_b);
            assert_eq!(oa, ob);
        }
        assert_eq!(a.assignment(), b.assignment());
    }

    #[test]
    fn noisy_hops_still_converge_reasonably() {
        let mut st = fig2_state();
        let start = st.objective();
        let engine = Alg1Engine::new(Alg1Config {
            beta: 2000.0,
            mean_countdown_s: 10.0,
            noise: Some(NoiseSpec::uniform(0.5, 2)),
        });
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..300 {
            engine.hop(&mut st, SessionId::new(0), &mut rng);
        }
        assert!(st.objective() < start);
    }
}
