//! Latency-only baseline (the related-work comparator of Zhang et al.,
//! NOSSDAV'14 — reference \[24\] of the paper): server selection that
//! minimizes conferencing delay *without considering the provider's
//! cost*. Realized as greedy descent on the delay-only objective from
//! the nearest assignment.

use crate::local_search;
use crate::nearest::nearest_assignment;
use std::sync::Arc;
use vc_core::{Assignment, SystemState, UapProblem};
use vc_cost::{CostModel, ObjectiveWeights};

/// Builds the minimum-delay assignment: users and tasks placed to
/// minimize `F(d_s)` alone (α2 = α3 = 0), ignoring traffic and
/// transcoding costs.
pub fn min_delay_assignment(problem: &Arc<UapProblem>) -> Assignment {
    let delay_problem = Arc::new(
        problem.with_cost(CostModel::paper_default().with_weights(ObjectiveWeights::delay_only())),
    );
    let mut state = SystemState::new(delay_problem, nearest_assignment(problem));
    local_search::greedy_descent(&mut state, 100_000);
    state.assignment().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::fig2_like_problem;

    #[test]
    fn min_delay_beats_nearest_on_delay() {
        let p = Arc::new(fig2_like_problem());
        let nrst = SystemState::new(p.clone(), nearest_assignment(&p));
        let md = SystemState::new(p.clone(), min_delay_assignment(&p));
        assert!(
            md.mean_delay_ms() <= nrst.mean_delay_ms() + 1e-9,
            "min-delay {} vs nearest {}",
            md.mean_delay_ms(),
            nrst.mean_delay_ms()
        );
    }

    #[test]
    fn min_delay_ignores_cost() {
        // On fig2 the delay-optimal placement may carry more traffic than
        // the cost-aware optimum — the baseline is oblivious by design.
        // We only assert it produces a valid feasible assignment.
        let p = Arc::new(fig2_like_problem());
        let md = SystemState::new(p.clone(), min_delay_assignment(&p));
        assert!(md.is_feasible());
    }
}
