//! Sequential session admission under capacity limits.
//!
//! The Fig. 9 experiment measures the *success rate* of initial
//! assignment policies: a scenario "successfully initializes" when every
//! user can subscribe to an agent and every transcoding task can be
//! placed without violating constraints (5)–(8). Sessions are admitted
//! in arrival (id) order:
//!
//! 1. users pick agents from their candidate list (Nrst has exactly one
//!    candidate; AgRank has `n_ngbr`, tried in descending rank order),
//!    skipping agents whose residual last-mile capacity cannot carry
//!    them;
//! 2. transcoding groups follow the rule of thumb, falling back through
//!    the rank order when the preferred agent has no free slot (AgRank
//!    only — Nrst is resource-oblivious and simply fails);
//! 3. the fully placed session is activated and the *global* state
//!    (including inter-agent traffic) is checked; any violation
//!    de-activates the session and fails the scenario.

use crate::agrank::{self, AgRankConfig, Residuals};
use crate::placement;
use std::collections::HashSet;
use std::sync::Arc;
use vc_core::{Assignment, SystemState, TaskId, UapProblem};
use vc_model::{AgentId, ReprId, SessionId, UserId};

/// Which initial-assignment policy admits the sessions.
#[derive(Debug, Clone)]
pub enum AdmissionPolicy {
    /// The nearest-agent policy (one candidate per user, no fallback).
    Nearest,
    /// AgRank with the given configuration (`n_ngbr` candidates, ranked).
    AgRank(AgRankConfig),
}

/// Why a session could not be admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionFailure {
    /// No candidate agent could carry a user's last-mile traffic.
    UserFit,
    /// No agent with a free slot could take a transcoding group.
    TaskFit,
    /// The fully placed session violated a global constraint
    /// (typically inter-agent traffic exceeding a capacity).
    GlobalCheck,
}

/// Per-stage failure counters across all sessions of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionDiagnostics {
    /// Sessions rejected at the user-placement stage.
    pub user_fit: usize,
    /// Sessions rejected at the transcoding-placement stage.
    pub task_fit: usize,
    /// Sessions rejected by the global feasibility check.
    pub global_check: usize,
}

/// The result of admitting all sessions of an instance.
#[derive(Debug, Clone)]
pub struct AdmissionOutcome {
    /// The system state after admission (failed sessions left inactive).
    pub state: SystemState,
    /// Whether *every* session was admitted feasibly.
    pub success: bool,
    /// Number of sessions admitted.
    pub admitted: usize,
    /// The first session that could not be admitted.
    pub first_failure: Option<SessionId>,
    /// Which stage rejected each failed session.
    pub diagnostics: AdmissionDiagnostics,
}

/// Admits every session of the problem in id order under the policy.
pub fn admit_all(problem: Arc<UapProblem>, policy: &AdmissionPolicy) -> AdmissionOutcome {
    let inst = problem.instance();
    let num_sessions = inst.num_sessions();
    let initial = Assignment::all_to_agent(&problem, AgentId::new(0));
    let mut state = SystemState::with_active(problem.clone(), initial, vec![false; num_sessions]);

    let mut admitted = 0;
    let mut first_failure = None;
    let mut success = true;
    let mut diagnostics = AdmissionDiagnostics::default();
    for s in inst.session_ids() {
        match admit_session(&problem, &mut state, s, policy) {
            Ok(()) => admitted += 1,
            Err(stage) => {
                success = false;
                if first_failure.is_none() {
                    first_failure = Some(s);
                }
                match stage {
                    AdmissionFailure::UserFit => diagnostics.user_fit += 1,
                    AdmissionFailure::TaskFit => diagnostics.task_fit += 1,
                    AdmissionFailure::GlobalCheck => diagnostics.global_check += 1,
                }
            }
        }
    }
    AdmissionOutcome {
        state,
        success,
        admitted,
        first_failure,
        diagnostics,
    }
}

/// Attempts to admit one session; returns the rejection stage on failure.
fn admit_session(
    problem: &Arc<UapProblem>,
    state: &mut SystemState,
    s: SessionId,
    policy: &AdmissionPolicy,
) -> Result<(), AdmissionFailure> {
    let inst = problem.instance();
    let session = inst.session(s);
    let residuals = Residuals::from_state(state);

    // Candidate agents per user, best first.
    let user_candidates: Vec<(UserId, Vec<AgentId>)> = match policy {
        AdmissionPolicy::Nearest => session
            .users()
            .iter()
            .map(|&u| (u, vec![inst.delays().nearest_agent(u)]))
            .collect(),
        AdmissionPolicy::AgRank(config) => {
            let ranking = agrank::rank_agents(problem, s, &residuals, config);
            ranking.user_candidates
        }
    };

    // User placement. The paper's Fig. 9 argument — "picking among a
    // larger number of potential agents provides a larger feasible set" —
    // holds when the admission *searches* the candidate space, so when
    // the combination count is modest we enumerate user→candidate combos
    // in rank order (shallowest fallback first) and accept the first one
    // that passes all checks; bigger candidate sets then strictly extend
    // the search space. Oversized spaces fall back to a greedy pass with
    // violation-driven repair.
    const COMBO_CAP: usize = 1024;
    let combo_count: usize = user_candidates
        .iter()
        .map(|(_, c)| c.len())
        .try_fold(1usize, |acc, n| acc.checked_mul(n))
        .unwrap_or(usize::MAX);
    if combo_count <= COMBO_CAP {
        return admit_by_enumeration(problem, state, s, &user_candidates, &residuals, policy);
    }

    // Greedy user placement with tentative last-mile accounting.
    let nl = inst.num_agents();
    let mut tent_down = vec![0.0; nl];
    let mut tent_up = vec![0.0; nl];
    let mut users: Vec<(UserId, AgentId)> = Vec::with_capacity(session.len());
    for (u, candidates) in &user_candidates {
        let need_down = inst.kappa(inst.user(*u).upstream());
        let need_up: f64 = inst
            .participants(*u)
            .map(|v| inst.kappa(inst.user(*u).downstream_from(v)))
            .sum();
        let slot = candidates.iter().copied().find(|l| {
            let i = l.index();
            residuals.download[i] - tent_down[i] >= need_down - 1e-9
                && residuals.upload[i] - tent_up[i] >= need_up - 1e-9
        });
        match slot {
            Some(l) => {
                tent_down[l.index()] += need_down;
                tent_up[l.index()] += need_up;
                users.push((*u, l));
            }
            None => return Err(AdmissionFailure::UserFit),
        }
    }

    // Transcoding groups: rule of thumb with rank-ordered fallback.
    let fallback_order = fallback_order_for(problem, s, &residuals, policy);
    let tasks = place_tasks(problem, s, &users, &residuals, &fallback_order)
        .ok_or(AdmissionFailure::TaskFit)?;

    // Commit tentatively, then verify the global state: the per-user
    // check ignores inter-agent traffic, which the full evaluation may
    // reveal to overflow an agent. When it does, repair by walking
    // offenders down their candidate lists (Nrst has no alternatives and
    // fails immediately — it is resource-oblivious by definition).
    state.reassign_session(s, &users, &tasks);
    state.activate(s);
    if state.is_feasible() {
        return Ok(());
    }
    let repair_budget = 3 * session.len() + tasks.len();
    let mut attempts = 0;
    while !state.is_feasible() && attempts < repair_budget {
        attempts += 1;
        let Some(violation) = state.violations().into_iter().next() else {
            break;
        };
        if !repair_step(state, s, &user_candidates, &fallback_order, violation) {
            break;
        }
    }
    if state.is_feasible() {
        Ok(())
    } else {
        state.deactivate(s);
        Err(AdmissionFailure::GlobalCheck)
    }
}

/// The session's candidate agents in descending rank order (empty for
/// the resource-oblivious Nrst policy).
fn fallback_order_for(
    problem: &Arc<UapProblem>,
    s: SessionId,
    residuals: &Residuals,
    policy: &AdmissionPolicy,
) -> Vec<AgentId> {
    match policy {
        AdmissionPolicy::Nearest => Vec::new(),
        AdmissionPolicy::AgRank(config) => {
            let ranking = agrank::rank_agents(problem, s, residuals, config);
            let mut order = ranking.candidates.clone();
            order.sort_by(|a, b| {
                ranking
                    .score_of(*b)
                    .partial_cmp(&ranking.score_of(*a))
                    .expect("finite scores")
                    .then(a.cmp(b))
            });
            order
        }
    }
}

/// Places the session's transcoding groups: rule of thumb first, then
/// fallback through the rank order while respecting residual slots.
/// `None` when some group fits nowhere.
fn place_tasks(
    problem: &Arc<UapProblem>,
    s: SessionId,
    users: &[(UserId, AgentId)],
    residuals: &Residuals,
    fallback_order: &[AgentId],
) -> Option<Vec<(TaskId, AgentId)>> {
    let inst = problem.instance();
    let nl = inst.num_agents();
    let mut user_agent = vec![AgentId::new(0); inst.num_users()];
    for &(u, a) in users {
        user_agent[u.index()] = a;
    }
    let preferred = placement::rule_of_thumb(problem, &user_agent);
    let mut tent_units: Vec<u32> = vec![0; nl];
    let mut unit_set: HashSet<(AgentId, UserId, ReprId)> = HashSet::new();
    let mut tasks: Vec<(TaskId, AgentId)> = Vec::new();
    for &t in problem.tasks().of_session(s) {
        let task = problem.tasks().task(t);
        let mut placed = false;
        let preferred_agent = preferred[t.index()];
        for &l in std::iter::once(&preferred_agent).chain(fallback_order.iter()) {
            let key = (l, task.src, task.target);
            let new_unit = !unit_set.contains(&key);
            let used = f64::from(tent_units[l.index()]) + if new_unit { 1.0 } else { 0.0 };
            if used <= residuals.transcode[l.index()] + 1e-9 {
                if new_unit {
                    unit_set.insert(key);
                    tent_units[l.index()] += 1;
                }
                tasks.push((t, l));
                placed = true;
                break;
            }
        }
        if !placed {
            return None;
        }
    }
    Some(tasks)
}

/// Rank-ordered exhaustive admission: tries every user→candidate combo
/// (shallowest total fallback depth first) until one passes the
/// last-mile, transcoding and global checks. Guarantees the Fig. 9
/// monotonicity — a larger candidate set can only enlarge the searched
/// feasible set.
fn admit_by_enumeration(
    problem: &Arc<UapProblem>,
    state: &mut SystemState,
    s: SessionId,
    user_candidates: &[(UserId, Vec<AgentId>)],
    residuals: &Residuals,
    policy: &AdmissionPolicy,
) -> Result<(), AdmissionFailure> {
    let inst = problem.instance();
    let nl = inst.num_agents();
    let needs: Vec<(f64, f64)> = user_candidates
        .iter()
        .map(|(u, _)| {
            let down = inst.kappa(inst.user(*u).upstream());
            let up: f64 = inst
                .participants(*u)
                .map(|v| inst.kappa(inst.user(*u).downstream_from(v)))
                .sum();
            (down, up)
        })
        .collect();
    let lens: Vec<usize> = user_candidates.iter().map(|(_, c)| c.len()).collect();

    // All combos, ordered by total fallback depth (all-first-choice first).
    let mut combos: Vec<Vec<usize>> = vec![vec![]];
    for &len in &lens {
        combos = combos
            .into_iter()
            .flat_map(|prefix| {
                (0..len).map(move |i| {
                    let mut c = prefix.clone();
                    c.push(i);
                    c
                })
            })
            .collect();
    }
    combos.sort_by_key(|c| c.iter().sum::<usize>());

    let fallback_order = fallback_order_for(problem, s, residuals, policy);
    let mut passed_last_mile = false;
    let mut passed_tasks = false;
    for combo in &combos {
        // Tentative last-mile check.
        let mut tent_down = vec![0.0; nl];
        let mut tent_up = vec![0.0; nl];
        let mut fits = true;
        for (k, &choice) in combo.iter().enumerate() {
            let l = user_candidates[k].1[choice];
            let i = l.index();
            if residuals.download[i] - tent_down[i] < needs[k].0 - 1e-9
                || residuals.upload[i] - tent_up[i] < needs[k].1 - 1e-9
            {
                fits = false;
                break;
            }
            tent_down[i] += needs[k].0;
            tent_up[i] += needs[k].1;
        }
        if !fits {
            continue;
        }
        passed_last_mile = true;
        let users: Vec<(UserId, AgentId)> = combo
            .iter()
            .enumerate()
            .map(|(k, &choice)| (user_candidates[k].0, user_candidates[k].1[choice]))
            .collect();
        let Some(tasks) = place_tasks(problem, s, &users, residuals, &fallback_order) else {
            continue;
        };
        passed_tasks = true;
        state.reassign_session(s, &users, &tasks);
        state.activate(s);
        if state.is_feasible() {
            return Ok(());
        }
        state.deactivate(s);
    }
    Err(if !passed_last_mile {
        AdmissionFailure::UserFit
    } else if !passed_tasks {
        AdmissionFailure::TaskFit
    } else {
        AdmissionFailure::GlobalCheck
    })
}

/// One repair move: shift a user or task of session `s` away from the
/// agent named in `violation`, to its next-ranked alternative. Returns
/// whether any move was applied.
fn repair_step(
    state: &mut SystemState,
    s: SessionId,
    user_candidates: &[(UserId, Vec<AgentId>)],
    fallback_order: &[AgentId],
    violation: vc_core::Violation,
) -> bool {
    use vc_core::{Decision, Violation};
    let overloaded = match violation {
        Violation::Download { agent, .. } | Violation::Upload { agent, .. } => agent,
        Violation::Transcode { agent, .. } => {
            // Move one of this session's tasks off the agent.
            let problem = state.problem().clone();
            for &t in problem.tasks().of_session(s) {
                if state.assignment().agent_of_task(t) == agent {
                    for &l in fallback_order {
                        if l != agent {
                            state.apply_unchecked(Decision::Task(t, l));
                            return true;
                        }
                    }
                }
            }
            return false;
        }
        // Delay violations are not repairable by shuffling; unavailable
        // agents are handled by churn evacuation, not admission.
        Violation::Delay { .. } | Violation::Unavailable { .. } => return false,
    };
    // Move the first of this session's users on the overloaded agent that
    // has an alternative candidate.
    for (u, candidates) in user_candidates {
        if state.assignment().agent_of_user(*u) != overloaded {
            continue;
        }
        if let Some(&l) = candidates.iter().find(|&&l| l != overloaded) {
            state.apply_unchecked(Decision::User(*u, l));
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{fig2_like_problem, scarce_capacity_problem};

    #[test]
    fn unlimited_capacity_admits_everything() {
        let p = Arc::new(fig2_like_problem());
        for policy in [
            AdmissionPolicy::Nearest,
            AdmissionPolicy::AgRank(AgRankConfig::paper(2)),
        ] {
            let out = admit_all(p.clone(), &policy);
            assert!(out.success, "policy {policy:?} failed");
            assert_eq!(out.admitted, p.instance().num_sessions());
            assert!(out.first_failure.is_none());
            assert!(out.state.is_feasible());
        }
    }

    #[test]
    fn nearest_piles_up_and_fails_under_scarcity() {
        // All users are nearest to agent A, whose capacity carries only
        // one session: Nrst must fail from the second session on.
        let p = Arc::new(scarce_capacity_problem());
        let out = admit_all(p, &AdmissionPolicy::Nearest);
        assert!(!out.success);
        assert_eq!(out.admitted, 1);
        assert_eq!(out.first_failure, Some(SessionId::new(1)));
    }

    #[test]
    fn wider_candidate_sets_admit_more() {
        // The Fig. 9 ordering: AgRank#3 ≥ AgRank#2 ≥ Nrst.
        let p = Arc::new(scarce_capacity_problem());
        let nrst = admit_all(p.clone(), &AdmissionPolicy::Nearest);
        let ag2 = admit_all(p.clone(), &AdmissionPolicy::AgRank(AgRankConfig::paper(2)));
        let ag3 = admit_all(p.clone(), &AdmissionPolicy::AgRank(AgRankConfig::paper(3)));
        assert!(ag2.admitted >= nrst.admitted);
        assert!(ag3.admitted >= ag2.admitted);
        assert!(ag3.success, "AgRank#3 should place all three sessions");
    }

    #[test]
    fn admitted_state_is_always_feasible() {
        let p = Arc::new(scarce_capacity_problem());
        for policy in [
            AdmissionPolicy::Nearest,
            AdmissionPolicy::AgRank(AgRankConfig::paper(2)),
            AdmissionPolicy::AgRank(AgRankConfig::paper(3)),
        ] {
            let out = admit_all(p.clone(), &policy);
            assert!(
                out.state.is_feasible(),
                "state infeasible after {policy:?}: {:?}",
                out.state.violations()
            );
        }
    }
}
