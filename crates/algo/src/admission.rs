//! Sequential session admission under capacity limits — one engine for
//! the offline Fig. 9 experiments **and** the live control plane.
//!
//! The Fig. 9 experiment measures the *success rate* of initial
//! assignment policies: a scenario "successfully initializes" when every
//! user can subscribe to an agent and every transcoding task can be
//! placed without violating constraints (5)–(8). Sessions are admitted
//! in arrival (id) order:
//!
//! 1. users pick agents from their candidate list (Nrst has exactly one
//!    candidate; AgRank has `n_ngbr`, tried in descending rank order),
//!    skipping agents whose residual last-mile capacity cannot carry
//!    them;
//! 2. transcoding groups follow the rule of thumb, falling back through
//!    the rank order when the preferred agent has no free slot (AgRank
//!    only — Nrst is resource-oblivious and simply fails);
//! 3. the fully placed session is checked *globally* (inter-agent
//!    traffic included); any violation triggers repair or rejection.
//!
//! ## The shared engine
//!
//! [`AdmissionEngine::place_session`] is **pure**: it searches the
//! candidate space against a residual-capacity snapshot and returns the
//! chosen placement without mutating anything. Both worlds drive it:
//!
//! * the offline [`admit_all`] (Fig. 9) derives residuals from a
//!   closed-world [`SystemState`] and commits accepted placements into
//!   it;
//! * the fleet's `Fleet::admit` (vc-orchestrator) derives residuals
//!   from the live capacity ledger and commits through the session
//!   slots + ledger holds.
//!
//! Because the search consumes only `(problem, residuals, availability)`
//! and both worlds feed it bitwise-identical residuals (capacity minus
//! the sum of live session loads, accumulated in admission order), the
//! two admit **identical** session sets — the parity
//! `tests/admission_parity.rs` proptests.
//!
//! ## Tiers
//!
//! The engine searches in up to three tiers, reported in
//! [`AdmissionStats::tier`]:
//!
//! 1. **Enumeration** — when the user→candidate combination count is at
//!    most [`AdmissionConfig::combo_cap`], every combo is tried in
//!    ascending total-fallback-depth order (the Fig. 9 monotonicity: a
//!    larger candidate set strictly enlarges the searched space);
//! 2. **Repair** — oversized spaces fall back to a greedy pass with
//!    violation-driven repair (bounded by `3·|U(s)| + |tasks|` moves);
//! 3. **RankedFallback** — the control plane's historical
//!    walk-each-user-one-step-down-its-ranked-list search, retained as
//!    the engine's final tier when repair fails.

use crate::agrank::{self, AgRankConfig, Residuals};
use crate::placement;
use std::collections::HashSet;
use std::sync::Arc;
use vc_core::{
    Assignment, AssignmentView, EvalScratch, SystemState, TaskId, UapProblem, CAPACITY_EPS,
};
use vc_model::{AgentId, ReprId, SessionId, UserId};

/// Which initial-assignment policy admits the sessions.
#[derive(Debug, Clone)]
pub enum AdmissionPolicy {
    /// The nearest-agent policy (one candidate per user, no fallback).
    Nearest,
    /// AgRank with the given configuration (`n_ngbr` candidates, ranked).
    AgRank(AgRankConfig),
}

/// Why a session could not be admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionFailure {
    /// No candidate agent could carry a user's last-mile traffic.
    UserFit,
    /// No agent with a free slot could take a transcoding group.
    TaskFit,
    /// The fully placed session violated a global constraint
    /// (typically inter-agent traffic exceeding a capacity).
    GlobalCheck,
}

/// Which search tier produced an accepted placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionTier {
    /// Rank-ordered exhaustive combination search (small sessions).
    Enumeration,
    /// Greedy placement plus violation-driven repair.
    Repair,
    /// Single-user ranked-fallback walk (the engine's final tier; also
    /// the label of the control plane's legacy admission path).
    RankedFallback,
}

/// Search-effort accounting for one accepted placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionStats {
    /// The tier that produced the placement.
    pub tier: AdmissionTier,
    /// Violation-driven repair moves applied (tier 2 only).
    pub repair_steps: usize,
    /// Fully-evaluated candidate placements (global checks run).
    pub candidates_evaluated: usize,
}

/// An accepted placement: every user and every transcoding task of the
/// session mapped to an agent, plus how the search found it.
#[derive(Debug, Clone)]
pub struct AdmissionDecision {
    /// Chosen agent per session user (instance order).
    pub users: Vec<(UserId, AgentId)>,
    /// Chosen agent per session task (instance order).
    pub tasks: Vec<(TaskId, AgentId)>,
    /// Search-effort accounting.
    pub stats: AdmissionStats,
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Upper bound on the user→candidate combination count the
    /// enumeration tier will exhaust; larger spaces use greedy+repair.
    pub combo_cap: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self { combo_cap: 1024 }
    }
}

/// The shared admission search. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct AdmissionEngine {
    /// Tuning knobs.
    pub config: AdmissionConfig,
}

/// A full-session placement as an [`AssignmentView`]: every lookup must
/// be covered by the pairs (the engine always places the whole session).
/// Lookups are linear scans — conferences are small (the workloads cap
/// sessions at 5 users), so an index map would cost more than it saves;
/// revisit if a workload ever grows sessions past a few dozen users.
struct PlacementView<'a> {
    users: &'a [(UserId, AgentId)],
    tasks: &'a [(TaskId, AgentId)],
}

impl AssignmentView for PlacementView<'_> {
    fn agent_of_user(&self, u: UserId) -> AgentId {
        self.users
            .iter()
            .find(|(w, _)| *w == u)
            .expect("admission placements cover every session user")
            .1
    }
    fn agent_of_task(&self, t: TaskId) -> AgentId {
        self.tasks
            .iter()
            .find(|(w, _)| *w == t)
            .expect("admission placements cover every session task")
            .1
    }
}

/// The first global violation of a fully-placed candidate, in the same
/// order `SystemState::violations` reports them (agents ascending:
/// download, upload, transcode; then the delay bound).
#[derive(Debug, Clone, Copy)]
enum GlobalViolation {
    Download(AgentId),
    Upload(AgentId),
    Transcode(AgentId),
    Delay,
    /// A target agent is down — unreachable via the normal choosers
    /// (all filter on availability); the final check still refuses it
    /// so no tier can ever emit a placement on a failed agent.
    Unavailable,
}

impl AdmissionEngine {
    /// An engine with the given knobs.
    pub fn new(config: AdmissionConfig) -> Self {
        Self { config }
    }

    /// Searches for a feasible placement of session `s` against the
    /// residual capacities, without committing anything. On success the
    /// accepted placement's evaluated load is left in `scratch` (the
    /// caller's commit can reuse it bit-for-bit).
    ///
    /// `residuals` must be availability-blind capacity-minus-live-load
    /// (see [`Residuals::from_totals`]); `available` masks failed
    /// agents, which are never chosen as targets.
    ///
    /// # Errors
    ///
    /// The furthest stage the search reached without success.
    pub fn place_session(
        &self,
        problem: &UapProblem,
        s: SessionId,
        policy: &AdmissionPolicy,
        residuals: &Residuals,
        available: &[bool],
        scratch: &mut EvalScratch,
    ) -> Result<AdmissionDecision, AdmissionFailure> {
        let inst = problem.instance();
        let session = inst.session(s);

        // Candidate agents per user, best first.
        let user_candidates: Vec<(UserId, Vec<AgentId>)> = match policy {
            AdmissionPolicy::Nearest => session
                .users()
                .iter()
                .map(|&u| (u, vec![inst.delays().nearest_agent(u)]))
                .collect(),
            AdmissionPolicy::AgRank(config) => {
                let ranking = agrank::rank_agents(problem, s, residuals, config);
                ranking.user_candidates
            }
        };

        // Tier 1: when the combination count is modest, enumerate
        // user→candidate combos in rank order (shallowest fallback
        // first) — "picking among a larger number of potential agents
        // provides a larger feasible set" holds when the admission
        // *searches* the candidate space.
        let combo_count: usize = user_candidates
            .iter()
            .map(|(_, c)| c.len())
            .try_fold(1usize, |acc, n| acc.checked_mul(n))
            .unwrap_or(usize::MAX);
        if combo_count <= self.config.combo_cap {
            return self.admit_by_enumeration(
                problem,
                s,
                policy,
                &user_candidates,
                residuals,
                available,
                scratch,
            );
        }

        // Tier 2: greedy user placement with tentative last-mile
        // accounting, then violation-driven repair.
        let nl = inst.num_agents();
        let mut tent_down = vec![0.0; nl];
        let mut tent_up = vec![0.0; nl];
        let mut users: Vec<(UserId, AgentId)> = Vec::with_capacity(session.len());
        let mut greedy_fit = true;
        for (u, candidates) in &user_candidates {
            let (need_down, need_up) = user_needs(problem, *u);
            let slot = candidates.iter().copied().find(|l| {
                let i = l.index();
                available[i]
                    && residuals.download[i] - tent_down[i] >= need_down - 1e-9
                    && residuals.upload[i] - tent_up[i] >= need_up - 1e-9
            });
            match slot {
                Some(l) => {
                    tent_down[l.index()] += need_down;
                    tent_up[l.index()] += need_up;
                    users.push((*u, l));
                }
                None => {
                    greedy_fit = false;
                    break;
                }
            }
        }
        let fallback_order = fallback_order_for(problem, s, residuals, policy, available);
        let mut furthest = AdmissionFailure::UserFit;
        let mut candidates_evaluated = 0usize;
        if greedy_fit {
            furthest = AdmissionFailure::TaskFit;
            if let Some(mut tasks) =
                place_tasks(problem, s, &users, residuals, &fallback_order, available)
            {
                furthest = AdmissionFailure::GlobalCheck;
                // Violation-driven repair: walk offenders down their
                // candidate lists (Nrst has no alternatives and fails
                // immediately — it is resource-oblivious by definition).
                let repair_budget = 3 * session.len() + tasks.len();
                let mut steps = 0usize;
                loop {
                    candidates_evaluated += 1;
                    match self.check_full(problem, s, &users, &tasks, residuals, available, scratch)
                    {
                        None => {
                            return Ok(AdmissionDecision {
                                users,
                                tasks,
                                stats: AdmissionStats {
                                    tier: AdmissionTier::Repair,
                                    repair_steps: steps,
                                    candidates_evaluated,
                                },
                            });
                        }
                        Some(violation) => {
                            if steps >= repair_budget
                                || !repair_step(
                                    &mut users,
                                    &mut tasks,
                                    &user_candidates,
                                    &fallback_order,
                                    violation,
                                    available,
                                )
                            {
                                break;
                            }
                            steps += 1;
                        }
                    }
                }
            }
        }

        // Tier 3: the ranked-fallback walk — first choices, then each
        // user one step at a time down its ranked candidate list.
        let first_choice: Vec<(UserId, AgentId)> = user_candidates
            .iter()
            .filter(|(_, c)| !c.is_empty())
            .map(|(u, c)| (*u, c[0]))
            .collect();
        if first_choice.len() == user_candidates.len() {
            let mut trials: Vec<Vec<(UserId, AgentId)>> = vec![first_choice.clone()];
            for (i, (_, candidates)) in user_candidates.iter().enumerate() {
                for &alt in candidates.iter().skip(1) {
                    let mut t = first_choice.clone();
                    t[i].1 = alt;
                    trials.push(t);
                }
            }
            for trial in trials {
                if trial.iter().any(|&(_, l)| !available[l.index()]) {
                    continue;
                }
                let Some(tasks) =
                    place_tasks(problem, s, &trial, residuals, &fallback_order, available)
                else {
                    if matches!(furthest, AdmissionFailure::UserFit) {
                        furthest = AdmissionFailure::TaskFit;
                    }
                    continue;
                };
                candidates_evaluated += 1;
                if self
                    .check_full(problem, s, &trial, &tasks, residuals, available, scratch)
                    .is_none()
                {
                    return Ok(AdmissionDecision {
                        users: trial,
                        tasks,
                        stats: AdmissionStats {
                            tier: AdmissionTier::RankedFallback,
                            repair_steps: 0,
                            candidates_evaluated,
                        },
                    });
                }
                furthest = AdmissionFailure::GlobalCheck;
            }
        }
        Err(furthest)
    }

    /// Rank-ordered exhaustive admission: tries every user→candidate
    /// combo (shallowest total fallback depth first) until one passes
    /// the last-mile, transcoding and global checks. Guarantees the
    /// Fig. 9 monotonicity — a larger candidate set can only enlarge
    /// the searched feasible set.
    #[allow(clippy::too_many_arguments)]
    fn admit_by_enumeration(
        &self,
        problem: &UapProblem,
        s: SessionId,
        policy: &AdmissionPolicy,
        user_candidates: &[(UserId, Vec<AgentId>)],
        residuals: &Residuals,
        available: &[bool],
        scratch: &mut EvalScratch,
    ) -> Result<AdmissionDecision, AdmissionFailure> {
        let inst = problem.instance();
        let nl = inst.num_agents();
        let needs: Vec<(f64, f64)> = user_candidates
            .iter()
            .map(|(u, _)| user_needs(problem, *u))
            .collect();
        let lens: Vec<usize> = user_candidates.iter().map(|(_, c)| c.len()).collect();

        // All combos, ordered by total fallback depth (all-first-choice
        // first).
        let mut combos: Vec<Vec<usize>> = vec![vec![]];
        for &len in &lens {
            combos = combos
                .into_iter()
                .flat_map(|prefix| {
                    (0..len).map(move |i| {
                        let mut c = prefix.clone();
                        c.push(i);
                        c
                    })
                })
                .collect();
        }
        combos.sort_by_key(|c| c.iter().sum::<usize>());

        let fallback_order = fallback_order_for(problem, s, residuals, policy, available);
        let mut passed_last_mile = false;
        let mut passed_tasks = false;
        let mut candidates_evaluated = 0usize;
        // Tentative last-mile accumulators, hoisted out of the combo
        // loop (up to `combo_cap` iterations under the exclusive FREEZE
        // lock) and reset sparsely — only the agents the combo wrote.
        let mut tent_down = vec![0.0; nl];
        let mut tent_up = vec![0.0; nl];
        for combo in &combos {
            // Tentative last-mile check.
            let mut fits = true;
            for (k, &choice) in combo.iter().enumerate() {
                let l = user_candidates[k].1[choice];
                let i = l.index();
                if !available[i]
                    || residuals.download[i] - tent_down[i] < needs[k].0 - 1e-9
                    || residuals.upload[i] - tent_up[i] < needs[k].1 - 1e-9
                {
                    fits = false;
                    break;
                }
                tent_down[i] += needs[k].0;
                tent_up[i] += needs[k].1;
            }
            // Sparse reset: zeroing an agent the (possibly truncated)
            // accumulation never wrote is a harmless no-op.
            for (k, &choice) in combo.iter().enumerate() {
                let i = user_candidates[k].1[choice].index();
                tent_down[i] = 0.0;
                tent_up[i] = 0.0;
            }
            if !fits {
                continue;
            }
            passed_last_mile = true;
            let users: Vec<(UserId, AgentId)> = combo
                .iter()
                .enumerate()
                .map(|(k, &choice)| (user_candidates[k].0, user_candidates[k].1[choice]))
                .collect();
            let Some(tasks) =
                place_tasks(problem, s, &users, residuals, &fallback_order, available)
            else {
                continue;
            };
            passed_tasks = true;
            candidates_evaluated += 1;
            if self
                .check_full(problem, s, &users, &tasks, residuals, available, scratch)
                .is_none()
            {
                return Ok(AdmissionDecision {
                    users,
                    tasks,
                    stats: AdmissionStats {
                        tier: AdmissionTier::Enumeration,
                        repair_steps: 0,
                        candidates_evaluated,
                    },
                });
            }
        }
        Err(if !passed_last_mile {
            AdmissionFailure::UserFit
        } else if !passed_tasks {
            AdmissionFailure::TaskFit
        } else {
            AdmissionFailure::GlobalCheck
        })
    }

    /// Evaluates the fully-placed session into `scratch` and checks it
    /// globally against the residuals: per *touched* agent (ascending),
    /// `load ≤ residual` — the sparse mirror of the closed-world
    /// `totals + load ≤ capacity` check (the prior state is feasible,
    /// so only touched agents can newly violate) — then the delay
    /// bound. Availability of every target is re-checked first, so no
    /// tier can emit a placement on a failed agent. Returns the first
    /// violation, `None` when feasible.
    #[allow(clippy::too_many_arguments)]
    fn check_full(
        &self,
        problem: &UapProblem,
        s: SessionId,
        users: &[(UserId, AgentId)],
        tasks: &[(TaskId, AgentId)],
        residuals: &Residuals,
        available: &[bool],
        scratch: &mut EvalScratch,
    ) -> Option<GlobalViolation> {
        for &(_, l) in users {
            if !available[l.index()] {
                return Some(GlobalViolation::Unavailable);
            }
        }
        for &(_, l) in tasks {
            if !available[l.index()] {
                return Some(GlobalViolation::Unavailable);
            }
        }
        {
            let view = PlacementView { users, tasks };
            scratch.evaluate(problem, &view, s);
        }
        let load = scratch.load();
        // `load.touched` is ascending, mirroring the dense agent scan of
        // `SystemState::violations`.
        for &a in &load.touched {
            let i = a as usize;
            if load.download[i] > residuals.download[i] + CAPACITY_EPS {
                return Some(GlobalViolation::Download(AgentId::from(i)));
            }
            if load.upload[i] > residuals.upload[i] + CAPACITY_EPS {
                return Some(GlobalViolation::Upload(AgentId::from(i)));
            }
            if f64::from(load.transcode_units[i]) > residuals.transcode[i] {
                return Some(GlobalViolation::Transcode(AgentId::from(i)));
            }
        }
        if load.max_flow_delay > problem.instance().d_max_ms() + CAPACITY_EPS {
            return Some(GlobalViolation::Delay);
        }
        None
    }
}

/// `(agent download, agent upload)` the user's last mile demands.
fn user_needs(problem: &UapProblem, u: UserId) -> (f64, f64) {
    let inst = problem.instance();
    let down = inst.kappa(inst.user(u).upstream());
    let up: f64 = inst
        .participants(u)
        .map(|v| inst.kappa(inst.user(u).downstream_from(v)))
        .sum();
    (down, up)
}

/// The session's candidate agents in descending rank order (empty for
/// the resource-oblivious Nrst policy), failed agents excluded.
fn fallback_order_for(
    problem: &UapProblem,
    s: SessionId,
    residuals: &Residuals,
    policy: &AdmissionPolicy,
    available: &[bool],
) -> Vec<AgentId> {
    match policy {
        AdmissionPolicy::Nearest => Vec::new(),
        AdmissionPolicy::AgRank(config) => {
            let ranking = agrank::rank_agents(problem, s, residuals, config);
            let mut order = ranking.candidates.clone();
            order.retain(|l| available[l.index()]);
            order.sort_by(|a, b| {
                ranking
                    .score_of(*b)
                    .partial_cmp(&ranking.score_of(*a))
                    .expect("finite scores")
                    .then(a.cmp(b))
            });
            order
        }
    }
}

/// Places the session's transcoding groups: rule of thumb first, then
/// fallback through the rank order while respecting residual slots.
/// `None` when some group fits nowhere.
fn place_tasks(
    problem: &UapProblem,
    s: SessionId,
    users: &[(UserId, AgentId)],
    residuals: &Residuals,
    fallback_order: &[AgentId],
    available: &[bool],
) -> Option<Vec<(TaskId, AgentId)>> {
    let inst = problem.instance();
    let nl = inst.num_agents();
    let preferred = placement::rule_of_thumb_session(problem, s, users);
    let mut tent_units: Vec<u32> = vec![0; nl];
    let mut unit_set: HashSet<(AgentId, UserId, ReprId)> = HashSet::new();
    let mut tasks: Vec<(TaskId, AgentId)> = Vec::new();
    for &(t, preferred_agent) in &preferred {
        let task = problem.tasks().task(t);
        let mut placed = false;
        for &l in std::iter::once(&preferred_agent).chain(fallback_order.iter()) {
            if !available[l.index()] {
                continue;
            }
            let key = (l, task.src, task.target);
            let new_unit = !unit_set.contains(&key);
            let used = f64::from(tent_units[l.index()]) + if new_unit { 1.0 } else { 0.0 };
            if used <= residuals.transcode[l.index()] + 1e-9 {
                if new_unit {
                    unit_set.insert(key);
                    tent_units[l.index()] += 1;
                }
                tasks.push((t, l));
                placed = true;
                break;
            }
        }
        if !placed {
            return None;
        }
    }
    Some(tasks)
}

/// One repair move over the candidate placement: shift a user or task
/// of the session away from the agent named in `violation`, to its
/// next-ranked *available* alternative. Returns whether any move was
/// applied.
fn repair_step(
    users: &mut [(UserId, AgentId)],
    tasks: &mut [(TaskId, AgentId)],
    user_candidates: &[(UserId, Vec<AgentId>)],
    fallback_order: &[AgentId],
    violation: GlobalViolation,
    available: &[bool],
) -> bool {
    let overloaded = match violation {
        GlobalViolation::Download(agent) | GlobalViolation::Upload(agent) => agent,
        GlobalViolation::Transcode(agent) => {
            // Move one of this session's tasks off the agent (the
            // fallback order is pre-filtered to available agents).
            for slot in tasks.iter_mut() {
                if slot.1 == agent {
                    for &l in fallback_order {
                        if l != agent {
                            slot.1 = l;
                            return true;
                        }
                    }
                }
            }
            return false;
        }
        // Delay violations are not repairable by shuffling, and an
        // unavailable target means a bug upstream (every chooser
        // filters on availability) — give up rather than shuffle.
        GlobalViolation::Delay | GlobalViolation::Unavailable => return false,
    };
    // Move the first of this session's users on the overloaded agent
    // that has an available alternative candidate.
    for (u, candidates) in user_candidates {
        let Some(slot) = users.iter_mut().find(|(w, a)| w == u && *a == overloaded) else {
            continue;
        };
        if let Some(&l) = candidates
            .iter()
            .find(|&&l| l != overloaded && available[l.index()])
        {
            slot.1 = l;
            return true;
        }
    }
    false
}

/// Per-stage failure counters across all sessions of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionDiagnostics {
    /// Sessions rejected at the user-placement stage.
    pub user_fit: usize,
    /// Sessions rejected at the transcoding-placement stage.
    pub task_fit: usize,
    /// Sessions rejected by the global feasibility check.
    pub global_check: usize,
}

/// The result of admitting all sessions of an instance.
#[derive(Debug, Clone)]
pub struct AdmissionOutcome {
    /// The system state after admission (failed sessions left inactive).
    pub state: SystemState,
    /// Whether *every* session was admitted feasibly.
    pub success: bool,
    /// Number of sessions admitted.
    pub admitted: usize,
    /// The first session that could not be admitted.
    pub first_failure: Option<SessionId>,
    /// Which stage rejected each failed session.
    pub diagnostics: AdmissionDiagnostics,
}

/// Admits every session of the problem in id order under the policy —
/// the offline (Fig. 9) driver of the shared [`AdmissionEngine`].
pub fn admit_all(problem: Arc<UapProblem>, policy: &AdmissionPolicy) -> AdmissionOutcome {
    let engine = AdmissionEngine::default();
    let inst = problem.instance();
    let num_sessions = inst.num_sessions();
    let initial = Assignment::all_to_agent(&problem, AgentId::new(0));
    let mut state = SystemState::with_active(problem.clone(), initial, vec![false; num_sessions]);
    let mut scratch = EvalScratch::new();

    let mut admitted = 0;
    let mut first_failure = None;
    let mut success = true;
    let mut diagnostics = AdmissionDiagnostics::default();
    for s in problem.instance().session_ids() {
        let residuals = Residuals::from_state(&state);
        let available: Vec<bool> = problem
            .instance()
            .agent_ids()
            .map(|l| state.is_agent_available(l))
            .collect();
        match engine.place_session(&problem, s, policy, &residuals, &available, &mut scratch) {
            Ok(decision) => {
                state.reassign_session(s, &decision.users, &decision.tasks);
                state.activate(s);
                admitted += 1;
            }
            Err(stage) => {
                success = false;
                if first_failure.is_none() {
                    first_failure = Some(s);
                }
                match stage {
                    AdmissionFailure::UserFit => diagnostics.user_fit += 1,
                    AdmissionFailure::TaskFit => diagnostics.task_fit += 1,
                    AdmissionFailure::GlobalCheck => diagnostics.global_check += 1,
                }
            }
        }
    }
    AdmissionOutcome {
        state,
        success,
        admitted,
        first_failure,
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{fig2_like_problem, scarce_capacity_problem};

    #[test]
    fn unlimited_capacity_admits_everything() {
        let p = Arc::new(fig2_like_problem());
        for policy in [
            AdmissionPolicy::Nearest,
            AdmissionPolicy::AgRank(AgRankConfig::paper(2)),
        ] {
            let out = admit_all(p.clone(), &policy);
            assert!(out.success, "policy {policy:?} failed");
            assert_eq!(out.admitted, p.instance().num_sessions());
            assert!(out.first_failure.is_none());
            assert!(out.state.is_feasible());
        }
    }

    #[test]
    fn nearest_piles_up_and_fails_under_scarcity() {
        // All users are nearest to agent A, whose capacity carries only
        // one session: Nrst must fail from the second session on.
        let p = Arc::new(scarce_capacity_problem());
        let out = admit_all(p, &AdmissionPolicy::Nearest);
        assert!(!out.success);
        assert_eq!(out.admitted, 1);
        assert_eq!(out.first_failure, Some(SessionId::new(1)));
    }

    #[test]
    fn wider_candidate_sets_admit_more() {
        // The Fig. 9 ordering: AgRank#3 ≥ AgRank#2 ≥ Nrst.
        let p = Arc::new(scarce_capacity_problem());
        let nrst = admit_all(p.clone(), &AdmissionPolicy::Nearest);
        let ag2 = admit_all(p.clone(), &AdmissionPolicy::AgRank(AgRankConfig::paper(2)));
        let ag3 = admit_all(p.clone(), &AdmissionPolicy::AgRank(AgRankConfig::paper(3)));
        assert!(ag2.admitted >= nrst.admitted);
        assert!(ag3.admitted >= ag2.admitted);
        assert!(ag3.success, "AgRank#3 should place all three sessions");
    }

    #[test]
    fn admitted_state_is_always_feasible() {
        let p = Arc::new(scarce_capacity_problem());
        for policy in [
            AdmissionPolicy::Nearest,
            AdmissionPolicy::AgRank(AgRankConfig::paper(2)),
            AdmissionPolicy::AgRank(AgRankConfig::paper(3)),
        ] {
            let out = admit_all(p.clone(), &policy);
            assert!(
                out.state.is_feasible(),
                "state infeasible after {policy:?}: {:?}",
                out.state.violations()
            );
        }
    }

    #[test]
    fn engine_reports_the_enumeration_tier_for_small_sessions() {
        let p = Arc::new(fig2_like_problem());
        let engine = AdmissionEngine::default();
        let residuals = Residuals::full(&p);
        let available = vec![true; p.instance().num_agents()];
        let mut scratch = EvalScratch::new();
        let decision = engine
            .place_session(
                &p,
                SessionId::new(0),
                &AdmissionPolicy::AgRank(AgRankConfig::paper(2)),
                &residuals,
                &available,
                &mut scratch,
            )
            .expect("roomy instance admits");
        assert_eq!(decision.stats.tier, AdmissionTier::Enumeration);
        assert_eq!(decision.stats.repair_steps, 0);
        assert_eq!(
            decision.users.len(),
            p.instance().session(SessionId::new(0)).len()
        );
        assert_eq!(
            decision.tasks.len(),
            p.tasks().of_session(SessionId::new(0)).len()
        );
    }

    #[test]
    fn tiny_combo_cap_exercises_the_repair_and_fallback_tiers() {
        // Forcing the cap to 0 pushes every session through greedy +
        // repair (and, failing that, the ranked fallback) — the result
        // must still be a feasible full placement.
        let p = Arc::new(fig2_like_problem());
        let engine = AdmissionEngine::new(AdmissionConfig { combo_cap: 0 });
        let residuals = Residuals::full(&p);
        let available = vec![true; p.instance().num_agents()];
        let mut scratch = EvalScratch::new();
        let decision = engine
            .place_session(
                &p,
                SessionId::new(0),
                &AdmissionPolicy::AgRank(AgRankConfig::paper(2)),
                &residuals,
                &available,
                &mut scratch,
            )
            .expect("roomy instance admits through repair");
        assert!(matches!(
            decision.stats.tier,
            AdmissionTier::Repair | AdmissionTier::RankedFallback
        ));
    }

    #[test]
    fn unavailable_agents_are_never_targets() {
        let p = Arc::new(fig2_like_problem());
        let engine = AdmissionEngine::default();
        let residuals = Residuals::full(&p);
        let mut available = vec![true; p.instance().num_agents()];
        // Fail the agent every user would otherwise pick first.
        let down = p.instance().delays().nearest_agent(UserId::new(0));
        available[down.index()] = false;
        let mut scratch = EvalScratch::new();
        // Exercise every tier: the default cap (enumeration) and a zero
        // cap (greedy + repair, then ranked fallback) — repair in
        // particular must never move a user onto the failed agent.
        for engine in [
            engine,
            AdmissionEngine::new(AdmissionConfig { combo_cap: 0 }),
        ] {
            if let Ok(decision) = engine.place_session(
                &p,
                SessionId::new(0),
                &AdmissionPolicy::AgRank(AgRankConfig::paper(3)),
                &residuals,
                &available,
                &mut scratch,
            ) {
                for &(_, l) in decision.users.iter() {
                    assert_ne!(l, down, "placed a user on a failed agent");
                }
                for &(_, l) in decision.tasks.iter() {
                    assert_ne!(l, down, "placed a task on a failed agent");
                }
            }
        }
    }
}
