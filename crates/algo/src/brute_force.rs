//! Exact enumeration of the assignment space.
//!
//! The decision space has `L^(U+θ_sum)` points; for the small instances
//! used in verification (e.g. Fig. 3's 8-state example) we can enumerate
//! it outright, find the true optimum `Φ_min`, and build the exact
//! feasible-solution graph whose CTMC `vc-markov` analyzes.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use vc_core::{Assignment, SystemState, UapProblem};
use vc_markov::StateGraph;
use vc_model::AgentId;

/// Refusal to enumerate a space larger than the configured limit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TooLargeError {
    /// Number of assignments the instance implies.
    pub states: u128,
    /// The configured cap.
    pub limit: usize,
}

impl fmt::Display for TooLargeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "state space has {} assignments, exceeding the limit {}",
            self.states, self.limit
        )
    }
}

impl Error for TooLargeError {}

/// A fully enumerated assignment space.
#[derive(Debug, Clone)]
pub struct Enumeration {
    /// Every assignment (feasible and infeasible), in mixed-radix order.
    pub assignments: Vec<Assignment>,
    /// Global objective `Φ` of each assignment.
    pub objectives: Vec<f64>,
    /// Whether each assignment satisfies constraints (5)–(8).
    pub feasible: Vec<bool>,
}

impl Enumeration {
    /// Index and objective of the best *feasible* assignment.
    pub fn optimum(&self) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.assignments.len() {
            if self.feasible[i] {
                match best {
                    Some((_, phi)) if phi <= self.objectives[i] => {}
                    _ => best = Some((i, self.objectives[i])),
                }
            }
        }
        best
    }

    /// Number of feasible assignments `|F|`.
    pub fn feasible_count(&self) -> usize {
        self.feasible.iter().filter(|f| **f).count()
    }
}

/// Enumerates every assignment of the problem.
///
/// # Errors
///
/// Returns [`TooLargeError`] if `L^(U+θ_sum)` exceeds `limit`.
pub fn enumerate_all(
    problem: &Arc<UapProblem>,
    limit: usize,
) -> Result<Enumeration, TooLargeError> {
    let nl = problem.instance().num_agents();
    let (nu, nt) = problem.decision_dims();
    let digits = nu + nt;
    let states = (nl as u128).checked_pow(digits as u32).unwrap_or(u128::MAX);
    if states > limit as u128 {
        return Err(TooLargeError { states, limit });
    }
    let states = states as usize;
    let mut assignments = Vec::with_capacity(states);
    let mut objectives = Vec::with_capacity(states);
    let mut feasible = Vec::with_capacity(states);
    let mut counter = vec![0usize; digits];
    for _ in 0..states {
        let user_agent: Vec<AgentId> = counter[..nu].iter().map(|&d| AgentId::from(d)).collect();
        let task_agent: Vec<AgentId> = counter[nu..].iter().map(|&d| AgentId::from(d)).collect();
        let asg = Assignment::new(problem, user_agent, task_agent);
        let state = SystemState::new(problem.clone(), asg.clone());
        objectives.push(state.objective());
        feasible.push(state.is_feasible());
        assignments.push(asg);
        // Mixed-radix increment (least-significant digit first).
        for d in counter.iter_mut() {
            *d += 1;
            if *d < nl {
                break;
            }
            *d = 0;
        }
    }
    Ok(Enumeration {
        assignments,
        objectives,
        feasible,
    })
}

/// The exact optimal feasible assignment and its objective.
///
/// # Errors
///
/// Returns [`TooLargeError`] if the space exceeds `limit`.
pub fn optimal(
    problem: &Arc<UapProblem>,
    limit: usize,
) -> Result<Option<(Assignment, f64)>, TooLargeError> {
    let e = enumerate_all(problem, limit)?;
    Ok(e.optimum().map(|(i, phi)| (e.assignments[i].clone(), phi)))
}

/// Builds the exact feasible-solution graph: states are feasible
/// assignments, edges connect pairs differing in exactly one decision —
/// the Markov chain of Fig. 3. Returns the graph and the assignment
/// behind each node.
///
/// # Errors
///
/// Returns [`TooLargeError`] if the space exceeds `limit`.
pub fn feasible_graph(
    problem: &Arc<UapProblem>,
    limit: usize,
) -> Result<(StateGraph, Vec<Assignment>), TooLargeError> {
    let e = enumerate_all(problem, limit)?;
    let nl = problem.instance().num_agents();
    let (nu, nt) = problem.decision_dims();

    let mut nodes: Vec<Assignment> = Vec::with_capacity(e.feasible_count());
    let mut energies = Vec::with_capacity(e.feasible_count());
    let mut index: HashMap<Assignment, usize> = HashMap::new();
    for i in 0..e.assignments.len() {
        if e.feasible[i] {
            index.insert(e.assignments[i].clone(), nodes.len());
            nodes.push(e.assignments[i].clone());
            energies.push(e.objectives[i]);
        }
    }
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, asg) in nodes.iter().enumerate() {
        // Generate all single-decision variants and look them up.
        for u in 0..nu {
            for l in 0..nl {
                let l = AgentId::from(l);
                if asg.user_agents()[u] != l {
                    let mut v = asg.clone();
                    v.set_user(vc_model::UserId::from(u), l);
                    if let Some(&j) = index.get(&v) {
                        adjacency[i].push(j);
                    }
                }
            }
        }
        for t in 0..nt {
            for l in 0..nl {
                let l = AgentId::from(l);
                if asg.task_agents()[t] != l {
                    let mut v = asg.clone();
                    v.set_task(vc_core::TaskId::from(t), l);
                    if let Some(&j) = index.get(&v) {
                        adjacency[i].push(j);
                    }
                }
            }
        }
    }
    let graph = StateGraph::new(energies, adjacency).expect("constructed graph is symmetric");
    Ok((graph, nodes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{fig3_like_problem, single_task_problem};

    #[test]
    fn fig3_scenario_has_eight_states() {
        // 1 session, 2 users, 1 task, 2 agents → 2³ = 8 assignments, all
        // feasible with unlimited capacities — exactly Fig. 3(a).
        let p = Arc::new(fig3_like_problem());
        let e = enumerate_all(&p, 100).unwrap();
        assert_eq!(e.assignments.len(), 8);
        assert_eq!(e.feasible_count(), 8);
    }

    #[test]
    fn fig3_graph_is_a_cube() {
        // Each state differs from exactly 3 neighbors by one decision:
        // the 3-dimensional hypercube of Fig. 3(b).
        let p = Arc::new(fig3_like_problem());
        let (g, nodes) = feasible_graph(&p, 100).unwrap();
        assert_eq!(g.len(), 8);
        assert_eq!(nodes.len(), 8);
        for i in 0..8 {
            assert_eq!(g.neighbors(i).len(), 3, "state {i} degree");
        }
        assert!(g.is_connected());
    }

    #[test]
    fn optimum_is_true_minimum() {
        let p = Arc::new(single_task_problem());
        let e = enumerate_all(&p, 100).unwrap();
        let (i, phi) = e.optimum().unwrap();
        for j in 0..e.assignments.len() {
            if e.feasible[j] {
                assert!(phi <= e.objectives[j] + 1e-12);
            }
        }
        assert!(e.feasible[i]);
        // And the convenience wrapper agrees.
        let (asg, phi2) = optimal(&p, 100).unwrap().unwrap();
        assert_eq!(&asg, &e.assignments[i]);
        assert_eq!(phi, phi2);
    }

    #[test]
    fn refuses_oversized_spaces() {
        let p = Arc::new(fig3_like_problem());
        let err = enumerate_all(&p, 4).unwrap_err();
        assert_eq!(err.states, 8);
        assert!(err.to_string().contains("8"));
    }

    #[test]
    fn graph_energies_match_enumeration() {
        let p = Arc::new(single_task_problem());
        let e = enumerate_all(&p, 100).unwrap();
        let (g, nodes) = feasible_graph(&p, 100).unwrap();
        for (i, asg) in nodes.iter().enumerate() {
            let j = e.assignments.iter().position(|a| a == asg).unwrap();
            assert!((g.energy(i) - e.objectives[j]).abs() < 1e-12);
        }
    }
}
