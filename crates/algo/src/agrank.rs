//! AgRank (Alg. 2): proximity- and resource-aware agent ranking.
//!
//! Upon session start, a potential-agent set `N(s)` is formed from each
//! user's `n_ngbr` nearest agents. Agents are then ranked by a random
//! walk over the normalized inter-agent delay matrix
//! `D̂_lk = min(D)/D_lk`, with the walk's *personalization* given by each
//! agent's normalized residual quadruple `(û, d̂, t̂, σ̂)` — this is what
//! makes the ranking resource-aware. Each user subscribes to the
//! highest-ranked agent among its own `N(u)`; transcoding tasks follow
//! the rule of thumb of [`crate::placement`].
//!
//! ## Interpretation notes (see DESIGN.md)
//!
//! The paper's pseudocode iterates `πᵀ[t+1] = πᵀ[t]·D̂` from the
//! residual-quadruple initialization. A pure power iteration converges to
//! the principal eigenvector *regardless of initialization*, which would
//! discard resource-awareness; since the design is "motivated by the idea
//! of Google's PageRank", we keep the residual quadruple in the fixed
//! point the way PageRank does — as a teleport (personalization) vector
//! with damping `α` (default 0.85). Setting `damping = 1.0` recovers the
//! paper's literal iteration.

use crate::placement;
use vc_core::{SystemState, TaskId, UapProblem};
use vc_model::{AgentId, SessionId, UserId};

/// Tuning knobs of AgRank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgRankConfig {
    /// `n_ngbr ∈ [1, L]`: nearest agents per user considered as candidates.
    /// 1 reproduces Nrst; `L` subscribes the session to one agent.
    pub n_ngbr: usize,
    /// PageRank damping `α ∈ [0, 1]`; `1.0` is the paper's literal
    /// resource-oblivious power iteration.
    pub damping: f64,
    /// Convergence threshold ε on `‖π[t+1] − π[t]‖₁`.
    pub epsilon: f64,
    /// Iteration cap (the scheme converges in `O(−log ε)` iterations).
    pub max_iters: usize,
}

impl AgRankConfig {
    /// The paper's configuration with the given `n_ngbr`.
    ///
    /// **Footgun under elastic capacity**: a fixed `n_ngbr` smaller than
    /// the live agent count silently hides every farther agent from the
    /// candidate set — including agents registered *after* the config
    /// was chosen, which tend to be exactly the free ones. Growing
    /// fleets should use [`live`](Self::live) (the default), or check
    /// [`excludes_agents`](Self::excludes_agents) when a paper-faithful
    /// fixed neighborhood is intended.
    pub fn paper(n_ngbr: usize) -> Self {
        assert!(n_ngbr >= 1, "n_ngbr must be at least 1");
        Self {
            n_ngbr,
            damping: 0.85,
            epsilon: 1e-10,
            max_iters: 500,
        }
    }

    /// The paper's configuration with the neighborhood following the
    /// *live* agent count: `n_ngbr` is the `usize::MAX` sentinel, which
    /// the ranking clamps to the instance's current agent count at every
    /// call — agents registered online are candidates immediately.
    pub fn live() -> Self {
        Self::paper(usize::MAX)
    }

    /// Whether this config's fixed neighborhood hides registered agents:
    /// true iff `n_ngbr < num_agents`. [`live`](Self::live) configs
    /// never exclude.
    pub fn excludes_agents(&self, num_agents: usize) -> bool {
        self.n_ngbr < num_agents
    }
}

impl Default for AgRankConfig {
    fn default() -> Self {
        Self::live()
    }
}

/// Residual agent capacities, the `(û, d̂, t̂)` part of the ranking
/// quadruple.
#[derive(Debug, Clone, PartialEq)]
pub struct Residuals {
    /// Remaining upload capacity per agent (Mbps).
    pub upload: Vec<f64>,
    /// Remaining download capacity per agent (Mbps).
    pub download: Vec<f64>,
    /// Remaining transcoding slots per agent.
    pub transcode: Vec<f64>,
}

impl Residuals {
    /// Full capacities (nothing consumed yet).
    pub fn full(problem: &UapProblem) -> Self {
        let inst = problem.instance();
        Self {
            upload: inst
                .agents()
                .iter()
                .map(|a| a.capacity().upload_mbps)
                .collect(),
            download: inst
                .agents()
                .iter()
                .map(|a| a.capacity().download_mbps)
                .collect(),
            transcode: inst
                .agents()
                .iter()
                .map(|a| f64::from(a.capacity().transcode_slots))
                .collect(),
        }
    }

    /// Capacities minus the loads of a live system state (clamped at 0).
    pub fn from_state(state: &SystemState) -> Self {
        Self::from_totals(state.problem(), state.totals())
    }

    /// Capacities minus explicit per-agent load totals (clamped at 0) —
    /// the **shared** residual derivation of the admission engine. The
    /// offline [`from_state`](Self::from_state) and the fleet's
    /// ledger-backed admission both route through here, so two worlds
    /// whose live loads are bitwise equal see bitwise-equal residuals
    /// (and hence make identical admission decisions).
    pub fn from_totals(problem: &UapProblem, totals: &vc_core::AgentTotals) -> Self {
        let inst = problem.instance();
        let mut r = Self::full(problem);
        for l in inst.agent_ids() {
            let i = l.index();
            r.upload[i] = (r.upload[i] - totals.upload[i]).max(0.0);
            r.download[i] = (r.download[i] - totals.download[i]).max(0.0);
            r.transcode[i] = (r.transcode[i] - f64::from(totals.transcode[i])).max(0.0);
        }
        r
    }
}

/// The outcome of ranking a session's potential agents.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentRanking {
    /// `N(s)`: the session's potential agents (ascending id order).
    pub candidates: Vec<AgentId>,
    /// Rank scores `π_l`, parallel to `candidates`, summing to 1.
    pub scores: Vec<f64>,
    /// `N(u)` per session user, each sorted by descending rank score.
    pub user_candidates: Vec<(UserId, Vec<AgentId>)>,
    /// Power-iteration rounds until `‖Δπ‖₁ < ε`.
    pub iterations: usize,
}

impl AgentRanking {
    /// The rank score of agent `l`, if it is a candidate.
    pub fn score_of(&self, l: AgentId) -> Option<f64> {
        self.candidates
            .iter()
            .position(|&c| c == l)
            .map(|i| self.scores[i])
    }

    /// The ranked candidate list of user `u` (best first).
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a member of the ranked session.
    pub fn candidates_of(&self, u: UserId) -> &[AgentId] {
        &self
            .user_candidates
            .iter()
            .find(|(w, _)| *w == u)
            .expect("user belongs to the ranked session")
            .1
    }

    /// The best-ranked agent for user `u` (Line 16 of Alg. 2).
    pub fn best_for(&self, u: UserId) -> AgentId {
        self.candidates_of(u)[0]
    }
}

/// Normalizes a component vector to `[0, 1]` by its maximum; infinite
/// entries score 1 (abundant resource), and an all-zero vector stays zero.
fn normalize_component(values: &[f64]) -> Vec<f64> {
    let max_finite = values
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .fold(0.0f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                1.0
            } else if max_finite > 0.0 {
                v / max_finite
            } else {
                0.0
            }
        })
        .collect()
}

/// Ranks the potential agents of session `s` (Lines 1–14 of Alg. 2).
pub fn rank_agents(
    problem: &UapProblem,
    s: SessionId,
    residuals: &Residuals,
    config: &AgRankConfig,
) -> AgentRanking {
    let inst = problem.instance();
    let session = inst.session(s);
    let n_ngbr = config.n_ngbr.min(inst.num_agents()).max(1);

    // N(u): top n_ngbr nearest agents per user; N(s): their union.
    let mut user_near: Vec<(UserId, Vec<AgentId>)> = Vec::with_capacity(session.len());
    let mut candidates: Vec<AgentId> = Vec::new();
    for &u in session.users() {
        let near: Vec<AgentId> = inst
            .delays()
            .agents_by_proximity(u)
            .into_iter()
            .take(n_ngbr)
            .collect();
        for &l in &near {
            if !candidates.contains(&l) {
                candidates.push(l);
            }
        }
        user_near.push((u, near));
    }
    candidates.sort();
    let n = candidates.len();

    // Personalization π₀: normalized residual quadruple (û + d̂ + t̂ + σ̂).
    let up = normalize_component(
        &candidates
            .iter()
            .map(|l| residuals.upload[l.index()])
            .collect::<Vec<_>>(),
    );
    let down = normalize_component(
        &candidates
            .iter()
            .map(|l| residuals.download[l.index()])
            .collect::<Vec<_>>(),
    );
    let slots = normalize_component(
        &candidates
            .iter()
            .map(|l| residuals.transcode[l.index()])
            .collect::<Vec<_>>(),
    );
    // σ̂: transcoding speed score — inverse of the agent's latency factor.
    let speed = normalize_component(
        &candidates
            .iter()
            .map(|l| 1.0 / inst.agent(*l).speed_factor())
            .collect::<Vec<_>>(),
    );
    let mut pi0: Vec<f64> = (0..n)
        .map(|i| up[i] + down[i] + slots[i] + speed[i])
        .collect();
    let z: f64 = pi0.iter().sum();
    if z > 0.0 {
        for x in &mut pi0 {
            *x /= z;
        }
    } else {
        pi0 = vec![1.0 / n as f64; n];
    }

    let (scores, iterations) = if n == 1 {
        (vec![1.0], 0)
    } else {
        power_iterate(inst, &candidates, &pi0, config)
    };

    // Order each user's candidates by descending rank (ties: nearer first).
    let mut user_candidates = user_near;
    for (_, near) in &mut user_candidates {
        let score = |l: AgentId| {
            candidates
                .iter()
                .position(|&c| c == l)
                .map(|i| scores[i])
                .unwrap_or(0.0)
        };
        near.sort_by(|a, b| {
            score(*b)
                .partial_cmp(&score(*a))
                .expect("scores are finite")
                .then(a.cmp(b))
        });
    }

    AgentRanking {
        candidates,
        scores,
        user_candidates,
        iterations,
    }
}

/// The damped random walk over the normalized delay matrix.
fn power_iterate(
    inst: &vc_model::Instance,
    candidates: &[AgentId],
    pi0: &[f64],
    config: &AgRankConfig,
) -> (Vec<f64>, usize) {
    let n = candidates.len();
    // D̂_lk = min positive delay / D_lk; diagonal handled as self-affinity 1.
    let mut min_pos = f64::INFINITY;
    for (i, &l) in candidates.iter().enumerate() {
        for &k in &candidates[i + 1..] {
            let d = inst.d_ms(l, k);
            if d > 0.0 {
                min_pos = min_pos.min(d);
            }
        }
    }
    if !min_pos.is_finite() {
        min_pos = 1.0; // all candidate pairs have zero delay: uniform affinity
    }
    let mut w = vec![0.0; n * n];
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..n {
            let affinity = if i == j {
                1.0
            } else {
                let d = inst.d_ms(candidates[i], candidates[j]);
                if d > 0.0 {
                    min_pos / d
                } else {
                    1.0
                }
            };
            w[i * n + j] = affinity;
            row_sum += affinity;
        }
        for j in 0..n {
            w[i * n + j] /= row_sum;
        }
    }

    let alpha = config.damping;
    let mut pi = pi0.to_vec();
    let mut iterations = 0;
    for _ in 0..config.max_iters {
        iterations += 1;
        let mut next = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                next[j] += pi[i] * w[i * n + j];
            }
        }
        for j in 0..n {
            next[j] = alpha * next[j] + (1.0 - alpha) * pi0[j];
        }
        // Renormalize (guards drift; walk is stochastic so sum is ~1).
        let z: f64 = next.iter().sum();
        for x in &mut next {
            *x /= z;
        }
        let delta: f64 = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        pi = next;
        if delta < config.epsilon {
            break;
        }
    }
    (pi, iterations)
}

/// Complete AgRank output for one session: user and task placements
/// (Lines 15–17 of Alg. 2 plus the transcoding rule of thumb).
#[derive(Debug, Clone)]
pub struct SessionAssignment {
    /// Chosen agent per session user.
    pub users: Vec<(UserId, AgentId)>,
    /// Chosen agent per session task.
    pub tasks: Vec<(TaskId, AgentId)>,
    /// The ranking that produced the placement.
    pub ranking: AgentRanking,
}

/// Runs AgRank for one session against the given residuals.
pub fn assign_session(
    problem: &UapProblem,
    s: SessionId,
    residuals: &Residuals,
    config: &AgRankConfig,
) -> SessionAssignment {
    let ranking = rank_agents(problem, s, residuals, config);
    let users: Vec<(UserId, AgentId)> = ranking
        .user_candidates
        .iter()
        .map(|(u, cands)| (*u, cands[0]))
        .collect();
    let tasks = placement::rule_of_thumb_session(problem, s, &users);
    SessionAssignment {
        users,
        tasks,
        ranking,
    }
}

/// Builds a complete initial assignment by running AgRank on every
/// session independently against full capacities (the static bootstrap
/// used by the Table II experiments; capacity-aware sequential admission
/// lives in [`crate::admission`]).
pub fn agrank_assignment(problem: &UapProblem, config: &AgRankConfig) -> vc_core::Assignment {
    let residuals = Residuals::full(problem);
    let mut user_agent = vec![AgentId::new(0); problem.instance().num_users()];
    let mut task_agent = vec![AgentId::new(0); problem.tasks().len()];
    for s in problem.instance().session_ids() {
        let sa = assign_session(problem, s, &residuals, config);
        for (u, a) in sa.users {
            user_agent[u.index()] = a;
        }
        for (t, a) in sa.tasks {
            task_agent[t.index()] = a;
        }
    }
    vc_core::Assignment::new(problem, user_agent, task_agent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nearest::nearest_assignment;
    use crate::test_fixtures::fig2_like_problem;

    #[test]
    fn nngbr_one_reproduces_nearest_assignment() {
        let p = fig2_like_problem();
        let cfg = AgRankConfig::paper(1);
        let ours = agrank_assignment(&p, &cfg);
        let nrst = nearest_assignment(&p);
        assert_eq!(ours.user_agents(), nrst.user_agents());
    }

    #[test]
    fn nngbr_l_collapses_session_to_one_agent() {
        let p = fig2_like_problem();
        let cfg = AgRankConfig::paper(p.instance().num_agents());
        let asg = agrank_assignment(&p, &cfg);
        let first = asg.agent_of_user(UserId::new(0));
        for u in p.instance().user_ids() {
            assert_eq!(asg.agent_of_user(u), first);
        }
    }

    #[test]
    fn scores_form_a_distribution() {
        let p = fig2_like_problem();
        let r = Residuals::full(&p);
        let ranking = rank_agents(&p, SessionId::new(0), &r, &AgRankConfig::paper(3));
        let sum: f64 = ranking.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(ranking.scores.iter().all(|s| *s >= 0.0));
        assert!(ranking.iterations >= 1);
    }

    #[test]
    fn well_connected_agents_rank_higher() {
        // With nngbr = L every agent is a candidate; Tokyo (well connected
        // to OR and SG in the fig2 matrix) should outrank São Paulo
        // (distant from everyone).
        let p = fig2_like_problem();
        let r = Residuals::full(&p);
        let ranking = rank_agents(
            &p,
            SessionId::new(0),
            &r,
            &AgRankConfig::paper(p.instance().num_agents()),
        );
        let to = ranking.score_of(AgentId::new(1)).unwrap();
        let sp = ranking.score_of(AgentId::new(3)).unwrap();
        assert!(to > sp, "tokyo {to} vs sao paulo {sp}");
    }

    #[test]
    fn depleted_agents_rank_lower() {
        let p = fig2_like_problem();
        let mut r = Residuals::full(&p);
        let full = rank_agents(&p, SessionId::new(0), &r, &AgRankConfig::paper(4));
        // Deplete Tokyo entirely.
        r.upload[1] = 0.0;
        r.download[1] = 0.0;
        r.transcode[1] = 0.0;
        let depleted = rank_agents(&p, SessionId::new(0), &r, &AgRankConfig::paper(4));
        assert!(
            depleted.score_of(AgentId::new(1)).unwrap() < full.score_of(AgentId::new(1)).unwrap(),
            "depletion must reduce the rank"
        );
    }

    #[test]
    fn damping_one_ignores_resources() {
        // The paper's literal power iteration: residuals must not matter.
        let p = fig2_like_problem();
        let mut cfg = AgRankConfig::paper(4);
        cfg.damping = 1.0;
        let full = rank_agents(&p, SessionId::new(0), &Residuals::full(&p), &cfg);
        let mut r = Residuals::full(&p);
        r.upload[1] = 0.0;
        r.transcode[1] = 0.0;
        let depleted = rank_agents(&p, SessionId::new(0), &r, &cfg);
        for (a, b) in full.scores.iter().zip(&depleted.scores) {
            assert!((a - b).abs() < 1e-6, "pure power iteration forgot init");
        }
    }

    #[test]
    fn live_config_follows_the_agent_count() {
        let p = fig2_like_problem();
        let nl = p.instance().num_agents();
        let live = AgRankConfig::live();
        assert!(!live.excludes_agents(nl));
        assert!(!live.excludes_agents(nl + 1000));
        assert!(AgRankConfig::paper(2).excludes_agents(nl));
        // The sentinel clamps to "all agents": every agent is a candidate
        // for every user.
        let ranking = rank_agents(&p, SessionId::new(0), &Residuals::full(&p), &live);
        for (_, cands) in &ranking.user_candidates {
            assert_eq!(cands.len(), nl, "live neighborhood must cover all agents");
        }
    }

    #[test]
    fn user_candidates_sorted_by_rank() {
        let p = fig2_like_problem();
        let r = Residuals::full(&p);
        let ranking = rank_agents(&p, SessionId::new(0), &r, &AgRankConfig::paper(3));
        for (_, cands) in &ranking.user_candidates {
            let scores: Vec<f64> = cands
                .iter()
                .map(|l| ranking.score_of(*l).unwrap_or(0.0))
                .collect();
            for w in scores.windows(2) {
                assert!(w[0] >= w[1] - 1e-12, "candidates not rank-sorted");
            }
        }
    }
}
