//! Greedy steepest-descent baseline.
//!
//! Repeatedly applies the feasible single-decision move with the largest
//! objective improvement until none improves. Deterministic, hence a
//! useful yardstick for Alg. 1: Markov hopping should approach (and, by
//! escaping local minima, sometimes beat) greedy descent.

use vc_core::{neighborhood, SystemState};

/// Result of a greedy descent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DescentResult {
    /// Moves applied before reaching a local minimum.
    pub steps: usize,
    /// Final global objective.
    pub objective: f64,
}

/// Runs steepest descent in place, up to `max_steps` moves.
pub fn greedy_descent(state: &mut SystemState, max_steps: usize) -> DescentResult {
    let mut steps = 0;
    while steps < max_steps {
        let mut best: Option<(vc_core::Decision, f64)> = None;
        for s in state.active_sessions().collect::<Vec<_>>() {
            let phi_now = state.session_objective(s);
            for m in neighborhood::feasible_moves(state, s) {
                let delta = m.new_phi - phi_now;
                if delta < -1e-9 {
                    match best {
                        Some((_, d)) if d <= delta => {}
                        _ => best = Some((m.decision, delta)),
                    }
                }
            }
        }
        match best {
            Some((decision, _)) => {
                state
                    .try_apply(decision)
                    .expect("feasible move stays feasible single-threaded");
                steps += 1;
            }
            None => break,
        }
    }
    DescentResult {
        steps,
        objective: state.objective(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force;
    use crate::nearest::nearest_assignment;
    use crate::test_fixtures::{fig2_like_problem, single_task_problem};
    use std::sync::Arc;
    use vc_core::{Assignment, SystemState};
    use vc_model::AgentId;

    #[test]
    fn descent_never_increases_objective() {
        let p = Arc::new(fig2_like_problem());
        let mut st = SystemState::new(p.clone(), nearest_assignment(&p));
        let start = st.objective();
        let result = greedy_descent(&mut st, 1000);
        assert!(result.objective <= start + 1e-12);
        assert_eq!(result.objective, st.objective());
        assert!(st.is_feasible());
    }

    #[test]
    fn descent_reaches_global_optimum_on_tiny_instance() {
        // On a single-session instance with a small space, greedy descent
        // from any corner should land on (or very near) the true optimum.
        let p = Arc::new(single_task_problem());
        let (_, phi_opt) = brute_force::optimal(&p, 1000).unwrap().unwrap();
        let mut st = SystemState::new(p.clone(), Assignment::all_to_agent(&p, AgentId::new(0)));
        let result = greedy_descent(&mut st, 1000);
        assert!(
            result.objective <= phi_opt + 1e-9,
            "greedy {} vs optimal {phi_opt}",
            result.objective
        );
    }

    #[test]
    fn zero_budget_is_a_no_op() {
        let p = Arc::new(fig2_like_problem());
        let mut st = SystemState::new(p.clone(), nearest_assignment(&p));
        let before = st.objective();
        let result = greedy_descent(&mut st, 0);
        assert_eq!(result.steps, 0);
        assert_eq!(st.objective(), before);
    }
}
