//! Transcoding-task placement: the rule of thumb of Sec. IV-B.
//!
//! "When there are at least two destinations with the same downstream
//! representation for the outgoing flow of a particular user, assigning
//! the respective transcoding task at the source agent is a good
//! solution, whose transcoded stream can be served to more than one
//! destination." Singleton tasks go to the destination's agent (the
//! transcoded — usually lower — bitrate then crosses the inter-agent
//! link instead of the raw stream crossing it twice).

use std::collections::HashMap;
use vc_core::{TaskId, UapProblem};
use vc_model::{AgentId, ReprId, SessionId, UserId};

/// Places every transcoding task given a user→agent map, following the
/// rule of thumb. Returns one agent per task, indexed by [`TaskId`].
///
/// # Panics
///
/// Panics if `user_agent.len()` differs from the instance's user count.
pub fn rule_of_thumb(problem: &UapProblem, user_agent: &[AgentId]) -> Vec<AgentId> {
    assert_eq!(
        user_agent.len(),
        problem.instance().num_users(),
        "user→agent map must cover all users"
    );
    let mut placement = vec![AgentId::new(0); problem.tasks().len()];
    apply_rule(
        problem,
        problem.tasks().iter().map(|(t, _)| t),
        |u| user_agent[u.index()],
        |t, a| placement[t.index()] = a,
    );
    placement
}

/// The rule proper, shared by the whole-instance and session-scoped
/// entry points: group tasks by (source, target representation) — the
/// destinations of the same transcoded stream — then transcode shared
/// streams once at the source agent and singletons at the destination
/// agent.
fn apply_rule(
    problem: &UapProblem,
    task_ids: impl Iterator<Item = TaskId>,
    agent_of: impl Fn(UserId) -> AgentId,
    mut assign: impl FnMut(TaskId, AgentId),
) {
    let mut groups: HashMap<(UserId, ReprId), Vec<TaskId>> = HashMap::new();
    for t in task_ids {
        let task = problem.tasks().task(t);
        groups.entry((task.src, task.target)).or_default().push(t);
    }
    for ((src, _), tasks) in groups {
        if tasks.len() >= 2 {
            // Shared stream: transcode once at the source agent.
            let agent = agent_of(src);
            for t in tasks {
                assign(t, agent);
            }
        } else {
            // Single destination: transcode at the destination agent.
            let t = tasks[0];
            assign(t, agent_of(problem.tasks().task(t).dst));
        }
    }
}

/// [`rule_of_thumb`] restricted to one session: places only that
/// session's tasks given its members' agents, at O(|session tasks|)
/// cost instead of a pass over the whole instance — the admission
/// hot path of the orchestrator control plane.
///
/// # Panics
///
/// Panics if a task endpoint of session `s` is missing from `users`.
pub fn rule_of_thumb_session(
    problem: &UapProblem,
    s: SessionId,
    users: &[(UserId, AgentId)],
) -> Vec<(TaskId, AgentId)> {
    let session_tasks = problem.tasks().of_session(s);
    let mut out = Vec::with_capacity(session_tasks.len());
    apply_rule(
        problem,
        session_tasks.iter().copied(),
        |u| {
            users
                .iter()
                .find(|&&(v, _)| v == u)
                .map(|&(_, a)| a)
                .expect("session user present in placement")
        },
        |t, a| out.push((t, a)),
    );
    // HashMap grouping is unordered; pin the output order.
    out.sort_unstable_by_key(|&(t, _)| t);
    out
}

/// Ablation variant: every transcoding task at the *source* user's agent.
///
/// # Panics
///
/// Panics if `user_agent.len()` differs from the instance's user count.
pub fn always_source(problem: &UapProblem, user_agent: &[AgentId]) -> Vec<AgentId> {
    assert_eq!(user_agent.len(), problem.instance().num_users());
    problem
        .tasks()
        .iter()
        .map(|(_, task)| user_agent[task.src.index()])
        .collect()
}

/// Ablation variant: every transcoding task at the *destination* user's
/// agent.
///
/// # Panics
///
/// Panics if `user_agent.len()` differs from the instance's user count.
pub fn always_destination(problem: &UapProblem, user_agent: &[AgentId]) -> Vec<AgentId> {
    assert_eq!(user_agent.len(), problem.instance().num_users());
    problem
        .tasks()
        .iter()
        .map(|(_, task)| user_agent[task.dst.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{fan_out_problem, single_task_problem};

    #[test]
    fn singleton_goes_to_destination_agent() {
        let p = single_task_problem();
        // u0 on agent 0, u1 on agent 1; the only task is u0→u1.
        let user_agent = vec![AgentId::new(0), AgentId::new(1)];
        let placement = rule_of_thumb(&p, &user_agent);
        assert_eq!(placement, vec![AgentId::new(1)]);
    }

    #[test]
    fn shared_group_goes_to_source_agent() {
        let p = fan_out_problem();
        // u0 (source) on agent 2; destinations u1, u2 elsewhere. Both
        // tasks demand the same 360p target → place at source agent 2.
        let user_agent = vec![AgentId::new(2), AgentId::new(0), AgentId::new(1)];
        let placement = rule_of_thumb(&p, &user_agent);
        for (t, task) in p.tasks().iter() {
            assert_eq!(task.src, vc_model::UserId::new(0));
            assert_eq!(placement[t.index()], AgentId::new(2));
        }
    }

    #[test]
    fn session_scoped_matches_whole_instance() {
        for p in [single_task_problem(), fan_out_problem()] {
            let nl = 3u32;
            let user_agent: Vec<AgentId> = (0..p.instance().num_users())
                .map(|u| AgentId::new(u as u32 % nl))
                .collect();
            let full = rule_of_thumb(&p, &user_agent);
            for s in p.instance().session_ids() {
                let users: Vec<(vc_model::UserId, AgentId)> = p
                    .instance()
                    .session(s)
                    .users()
                    .iter()
                    .map(|&u| (u, user_agent[u.index()]))
                    .collect();
                for (t, a) in rule_of_thumb_session(&p, s, &users) {
                    assert_eq!(a, full[t.index()], "task {t:?} diverged");
                }
            }
        }
    }

    #[test]
    fn placement_follows_user_moves() {
        let p = single_task_problem();
        let a = rule_of_thumb(&p, &[AgentId::new(0), AgentId::new(0)]);
        assert_eq!(a, vec![AgentId::new(0)]);
        let b = rule_of_thumb(&p, &[AgentId::new(1), AgentId::new(0)]);
        assert_eq!(b, vec![AgentId::new(0)]);
    }
}
