//! Agent churn: evacuating a failed or drained agent.
//!
//! The paper's system leases agents "in advance", but VMs fail and cloud
//! sites drain for maintenance. When an agent goes down, every user and
//! transcoding task assigned to it must move *immediately* — Alg. 1's
//! eventual re-optimization is too slow for service continuity. The
//! evacuation picks, for each stranded user/task, the feasible
//! alternative minimizing the session's local objective; when no
//! alternative is feasible it still force-moves to the least-bad agent
//! (service continuity over constraint purity) and reports it.

use vc_core::{Decision, SystemState};
use vc_model::AgentId;

/// What an evacuation did.
#[derive(Debug, Clone, PartialEq)]
pub struct EvacuationReport {
    /// Applied decisions, in order.
    pub moves: Vec<Decision>,
    /// How many of them were *forced* (no feasible alternative existed;
    /// the least-objective target was used unchecked).
    pub forced: usize,
}

impl EvacuationReport {
    /// Number of migrations performed.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Whether nothing had to move.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// Marks `agent` unavailable and moves all its users and tasks elsewhere.
///
/// Users and tasks of *active* sessions are relocated; inactive sessions
/// keep their (inert) assignments and are repaired by their own
/// bootstrap when they arrive.
pub fn evacuate_agent(state: &mut SystemState, agent: AgentId) -> EvacuationReport {
    state.set_agent_available(agent, false);
    let problem = state.problem().clone();
    let inst = problem.instance();

    // Collect stranded decisions first (iteration order: users then tasks,
    // session by session) — the state mutates as we go.
    let mut stranded: Vec<Decision> = Vec::new();
    for s in state.active_sessions().collect::<Vec<_>>() {
        for &u in inst.session(s).users() {
            if state.assignment().agent_of_user(u) == agent {
                stranded.push(Decision::User(u, agent));
            }
        }
        for &t in problem.tasks().of_session(s) {
            if state.assignment().agent_of_task(t) == agent {
                stranded.push(Decision::Task(t, agent));
            }
        }
    }

    let mut moves = Vec::new();
    let mut forced = 0;
    for d in stranded {
        let alternatives = inst
            .agent_ids()
            .filter(|&l| l != agent && state.is_agent_available(l));
        let mut best_feasible: Option<(Decision, f64)> = None;
        let mut best_any: Option<(Decision, f64)> = None;
        for l in alternatives {
            let candidate = match d {
                Decision::User(u, _) => Decision::User(u, l),
                Decision::Task(t, _) => Decision::Task(t, l),
            };
            let (load, verdict) = state.candidate(candidate);
            let entry = (candidate, load.phi);
            if best_any.as_ref().is_none_or(|(_, phi)| load.phi < *phi) {
                best_any = Some(entry);
            }
            if verdict.is_ok()
                && best_feasible
                    .as_ref()
                    .is_none_or(|(_, phi)| load.phi < *phi)
            {
                best_feasible = Some(entry);
            }
        }
        match (best_feasible, best_any) {
            (Some((decision, _)), _) => {
                state
                    .try_apply(decision)
                    .expect("feasible candidate stays feasible single-threaded");
                moves.push(decision);
            }
            (None, Some((decision, _))) => {
                state.apply_unchecked(decision);
                moves.push(decision);
                forced += 1;
            }
            (None, None) => {
                // No other agent exists at all; nothing we can do.
                forced += 1;
            }
        }
    }
    EvacuationReport { moves, forced }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nearest::nearest_assignment;
    use crate::test_fixtures::{fig2_like_problem, scarce_capacity_problem};
    use std::sync::Arc;
    use vc_core::{SystemState, Violation};
    use vc_model::UserId;

    #[test]
    fn evacuation_clears_the_failed_agent() {
        let p = Arc::new(fig2_like_problem());
        let mut st = SystemState::new(p.clone(), nearest_assignment(&p));
        // Singapore (agent 2) hosts user 4 under Nrst.
        let sg = AgentId::new(2);
        assert!(p
            .instance()
            .user_ids()
            .any(|u| st.assignment().agent_of_user(u) == sg));
        let report = evacuate_agent(&mut st, sg);
        assert!(!report.is_empty());
        assert_eq!(report.forced, 0, "unlimited-capacity evacuation is clean");
        for u in p.instance().user_ids() {
            assert_ne!(st.assignment().agent_of_user(u), sg);
        }
        for (t, _) in p.tasks().iter() {
            assert_ne!(st.assignment().agent_of_task(t), sg);
        }
        assert!(st.is_feasible(), "violations: {:?}", st.violations());
    }

    #[test]
    fn evacuation_picks_objective_minimizing_targets() {
        let p = Arc::new(fig2_like_problem());
        let mut st = SystemState::new(p.clone(), nearest_assignment(&p));
        let before = st.objective();
        let report = evacuate_agent(&mut st, AgentId::new(2));
        // Each move chose the best feasible alternative, so the objective
        // should not explode (it may even improve — Nrst was suboptimal).
        assert!(
            st.objective() < before * 1.5 + 100.0,
            "objective exploded: {before} → {}",
            st.objective()
        );
        assert!(!report.moves.is_empty());
    }

    #[test]
    fn forced_moves_are_reported_under_scarcity() {
        let p = Arc::new(scarce_capacity_problem());
        // All six users piled on agent a (capacity 11 Mbps: infeasible,
        // but that is Nrst's problem). Fail agent a: everyone must leave
        // even though b and c cannot legally hold them all.
        let mut st = SystemState::new(p.clone(), nearest_assignment(&p));
        let report = evacuate_agent(&mut st, AgentId::new(0));
        for u in p.instance().user_ids() {
            assert_ne!(st.assignment().agent_of_user(u), AgentId::new(0));
        }
        assert!(report.forced > 0, "scarcity must force some moves");
        // The unavailable-agent violation is gone even if capacity ones remain.
        assert!(!st
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::Unavailable { .. })));
    }

    #[test]
    fn alg1_keeps_avoiding_the_failed_agent() {
        use crate::markov::{Alg1Config, Alg1Engine};
        use rand::{rngs::StdRng, SeedableRng};
        let p = Arc::new(fig2_like_problem());
        let mut st = SystemState::new(p.clone(), nearest_assignment(&p));
        let sg = AgentId::new(2);
        evacuate_agent(&mut st, sg);
        let engine = Alg1Engine::new(Alg1Config::paper(50.0));
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..300 {
            engine.hop(
                &mut st,
                p.instance().user(UserId::new(0)).session(),
                &mut rng,
            );
            for u in p.instance().user_ids() {
                assert_ne!(
                    st.assignment().agent_of_user(u),
                    sg,
                    "hop used a down agent"
                );
            }
        }
    }
}
